//! Workspace-level re-exports for the ADARNet reproduction.
//!
//! The actual functionality lives in the member crates:
//! [`adarnet_tensor`], [`adarnet_nn`], [`adarnet_amr`], [`adarnet_cfd`],
//! [`adarnet_dataset`], and [`adarnet_core`]. This crate exists to own the
//! workspace-level `examples/` and `tests/` directories and re-exports the
//! member crates for convenience.

pub use adarnet_amr as amr;
pub use adarnet_cfd as cfd;
pub use adarnet_core as core;
pub use adarnet_dataset as dataset;
pub use adarnet_nn as nn;
pub use adarnet_tensor as tensor;
