//! Figure 1 bench: uniform-SR inference cost growth with target
//! resolution. The harness binary `fig1` prints the table; this bench
//! measures the actual per-inference wall time of the uniform conv stack
//! as the target side doubles, demonstrating the same 4x-per-doubling
//! scaling that caps the batch size on fixed memory.

use adarnet_core::memory::{uniform_max_batch, V100_BYTES};
use adarnet_core::SurfNet;
use adarnet_tensor::{Shape, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_uniform_sr_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_uniform_sr_inference");
    group.sample_size(10);
    // LR 8x8 upscaled by 2/4/8 per side: output 16^2 / 32^2 / 64^2.
    for scale in [2usize, 4, 8] {
        let mut net = SurfNet::new(scale, 0);
        let lr = Tensor::<f32>::full(Shape::d3(4, 8, 8), 0.4);
        group.bench_with_input(BenchmarkId::new("surfnet_scale", scale), &scale, |b, _| {
            b.iter(|| black_box(net.predict(black_box(&lr))))
        });
    }
    group.finish();

    // Print the Figure 1 capacity table alongside the timings.
    eprintln!("\nFigure 1 capacity model (16 GB budget):");
    for side in [128usize, 256, 512, 1024] {
        eprintln!(
            "  {side:>4}^2 -> max batch {}",
            uniform_max_batch(side * side, V100_BYTES)
        );
    }
}

criterion_group!(
    name = fig1;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_uniform_sr_scaling
);
criterion_main!(fig1);
