//! Ablation benches for the design choices the paper motivates in §3.1
//! and §5.1 (indexed in DESIGN.md §7):
//!
//! * **Shared vs per-resolution decoder** — one decoder shared across all
//!   bins (the paper's choice) vs four separate decoders: 4x the
//!   parameters and a cold cache per bin.
//! * **Max vs average scorer pooling** — the paper argues max pooling is
//!   the conservative choice (a patch takes the resolution its *most*
//!   demanding cell needs); the ablation reports how many patches would
//!   drop a level under average pooling.
//! * **Bin count b** — inference cost at b = 2, 3, 4 bins.
//! * **Lambda balance** — the data/PDE loss split at lambda around the
//!   paper's 0.03.

use adarnet_core::{hybrid_loss_and_grad, AdarNet, AdarNetConfig, LossConfig, NormStats, Ranker};
use adarnet_nn::{Layer, MaxPool2d};
use adarnet_tensor::{Shape, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn lr_input() -> Tensor<f32> {
    Tensor::from_vec(
        Shape::d3(4, 16, 32),
        (0..4 * 16 * 32)
            .map(|i| ((i as f32) * 0.013).sin() * 0.4 + 0.5)
            .collect(),
    )
}

/// Shared decoder (paper) vs simulated per-resolution decoders: the
/// per-resolution variant re-instantiates (cold) weights per bin, which is
/// what a 4-decoder design pays in parameters and cache traffic.
fn bench_decoder_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_decoder_sharing");
    group.sample_size(10);
    let lr = lr_input();

    let mut shared = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed: 3,
        ..AdarNetConfig::default()
    });
    eprintln!(
        "[ablation] shared decoder params: {} | 4 separate decoders would hold {}",
        shared.decoder.num_params(),
        4 * shared.decoder.num_params()
    );
    group.bench_function("shared_decoder_predict", |b| {
        b.iter(|| black_box(shared.predict(black_box(&lr))))
    });

    // Per-resolution: one decoder instance per bin.
    let mut per_bin: Vec<adarnet_core::Decoder> = (0..4)
        .map(|k| adarnet_core::Decoder::new(7, 1000 + k))
        .collect();
    let mut model = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed: 3,
        ..AdarNetConfig::default()
    });
    group.bench_function("per_resolution_decoders_predict", |b| {
        b.iter(|| {
            let plan = model.plan(&lr);
            let mut cells = 0usize;
            for bin in 0..4u8 {
                let group_idx = plan.binning.groups[bin as usize].clone();
                if group_idx.is_empty() {
                    continue;
                }
                let inputs: Vec<Tensor<f32>> = group_idx
                    .iter()
                    .map(|&i| model.decoder_input(&plan, i))
                    .collect();
                let batch = Tensor::stack(&inputs);
                let out = per_bin[bin as usize].forward(&batch);
                cells += out.len();
            }
            black_box(cells)
        })
    });
    group.finish();
}

/// Max vs average pooling on the scorer's latent image.
fn bench_pooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scorer_pooling");
    group.sample_size(20);
    let latent = Tensor::from_vec(
        Shape::d4(1, 1, 64, 256),
        (0..64 * 256).map(|i| ((i as f32) * 0.37).sin()).collect(),
    );
    let mut maxpool = MaxPool2d::new(16, 16);

    let avg_pool = |x: &Tensor<f32>| -> Tensor<f32> {
        let (h, w) = (x.dim(2), x.dim(3));
        let (oh, ow) = (h / 16, w / 16);
        let mut out = Tensor::<f32>::zeros(Shape::d4(1, 1, oh, ow));
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for py in 0..16 {
                    for px in 0..16 {
                        acc += x.get4(0, 0, oy * 16 + py, ox * 16 + px);
                    }
                }
                out.set4(0, 0, oy, ox, acc / 256.0);
            }
        }
        out
    };

    // Report the conservativeness gap: how many patches bin lower under
    // average pooling (they would be under-refined).
    let ranker = Ranker::paper();
    let max_bins = ranker.bin_tensor(&maxpool.forward(&latent));
    let avg_bins = ranker.bin_tensor(&avg_pool(&latent));
    let dropped = max_bins
        .bin_of_patch
        .iter()
        .zip(&avg_bins.bin_of_patch)
        .filter(|(m, a)| a < m)
        .count();
    eprintln!(
        "[ablation] avg pooling under-refines {dropped}/{} patches vs max pooling",
        max_bins.bin_of_patch.len()
    );

    group.bench_function("max_pooling", |b| {
        b.iter(|| black_box(maxpool.forward(black_box(&latent))))
    });
    group.bench_function("avg_pooling", |b| {
        b.iter(|| black_box(avg_pool(black_box(&latent))))
    });
    group.finish();
}

/// Inference cost vs bin count.
fn bench_bin_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bin_count");
    group.sample_size(10);
    let lr = lr_input();
    for bins in [2u8, 3, 4] {
        let mut model = AdarNet::new(AdarNetConfig {
            ph: 8,
            pw: 8,
            bins,
            seed: 9,
            ..AdarNetConfig::default()
        });
        let pred = model.predict(&lr);
        eprintln!(
            "[ablation] b={bins}: active cells {} (max level {})",
            pred.active_cells(),
            bins - 1
        );
        group.bench_with_input(BenchmarkId::new("bins", bins), &bins, |b, _| {
            b.iter(|| black_box(model.predict(black_box(&lr))))
        });
    }
    group.finish();
}

/// Loss-balance report and cost at lambda near the paper's 0.03.
fn bench_lambda(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lambda");
    group.sample_size(20);
    let pred = Tensor::from_vec(
        Shape::d3(4, 8, 8),
        (0..256)
            .map(|i| ((i as f32) * 0.07).cos() * 0.3 + 0.4)
            .collect(),
    );
    let label = Tensor::from_vec(
        Shape::d3(4, 8, 8),
        (0..256)
            .map(|i| ((i as f32) * 0.07).cos() * 0.3 + 0.45)
            .collect(),
    );
    let norm = NormStats::identity();
    for lambda in [0.003f64, 0.03, 0.3] {
        let cfg = LossConfig {
            lambda,
            ..LossConfig::paper(0.05, 0.05)
        };
        let (pl, _) = hybrid_loss_and_grad(&pred, &label, 0, &norm, &cfg);
        eprintln!(
            "[ablation] lambda={lambda}: data {:.3e} vs lambda*pde {:.3e} (ratio {:.2})",
            pl.data,
            lambda * pl.pde,
            pl.data / (lambda * pl.pde).max(1e-300)
        );
        group.bench_with_input(
            BenchmarkId::new("lambda", format!("{lambda}")),
            &lambda,
            |b, _| b.iter(|| black_box(hybrid_loss_and_grad(&pred, &label, 0, &norm, &cfg))),
        );
    }
    group.finish();
}

/// Convection-scheme ablation: pure upwind vs hybrid blend. The scheme
/// changes the discrete steady state (less numerical diffusion at higher
/// blend) at roughly equal per-iteration cost.
fn bench_convection_scheme(c: &mut Criterion) {
    use adarnet_amr::{PatchLayout, RefinementMap};
    use adarnet_cfd::{CaseConfig, CaseMesh, RansSolver, SolverConfig};
    let mut group = c.benchmark_group("ablation_convection_scheme");
    group.sample_size(10);
    for blend in [0.0f64, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("blend", format!("{blend}")),
            &blend,
            |b, &blend| {
                b.iter_with_setup(
                    || {
                        let mut case = CaseConfig::channel(2.5e3);
                        case.lx = 0.5;
                        let mesh = CaseMesh::new(
                            case,
                            RefinementMap::uniform(PatchLayout::new(2, 4, 4, 4), 0, 3),
                        );
                        RansSolver::new(
                            mesh,
                            SolverConfig {
                                conv_blend: blend,
                                max_iters: 50,
                                tol: 1e-12,
                                ..SolverConfig::default()
                            },
                        )
                    },
                    |mut solver| black_box(solver.solve_to_convergence()),
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_decoder_sharing, bench_pooling, bench_bin_count, bench_lambda, bench_convection_scheme
);
criterion_main!(ablations);
