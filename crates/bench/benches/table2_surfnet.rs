//! Table 2 bench: inference cost of ADARNet's non-uniform SR vs SURFNet's
//! uniform SR on the same LR input. The memory side and the full 7-case
//! table come from the `table2` harness binary; here criterion measures
//! the wall-clock gap that produces the paper's 7-28.5x end-to-end
//! speedups.

use adarnet_core::{AdarNet, AdarNetConfig, SurfNet};
use adarnet_tensor::{Shape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn lr_input() -> Tensor<f32> {
    Tensor::from_vec(
        Shape::d3(4, 16, 32),
        (0..4 * 16 * 32)
            .map(|i| ((i as f32) * 0.011).sin() * 0.4 + 0.5)
            .collect(),
    )
}

fn bench_adarnet_inference(c: &mut Criterion) {
    let mut model = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed: 1,
        ..AdarNetConfig::default()
    });
    let lr = lr_input();
    c.bench_function("table2_adarnet_nonuniform_sr", |b| {
        b.iter(|| black_box(model.predict(black_box(&lr))))
    });
}

fn bench_surfnet_inference(c: &mut Criterion) {
    let mut net = SurfNet::new(8, 2); // 64x uniform SR
    let lr = lr_input();
    c.bench_function("table2_surfnet_uniform_sr_64x", |b| {
        b.iter(|| black_box(net.predict(black_box(&lr))))
    });
}

criterion_group!(
    name = table2;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_adarnet_inference, bench_surfnet_inference
);
criterion_main!(table2);
