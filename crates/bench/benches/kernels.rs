//! Microbenchmarks of the computational kernels underneath every
//! experiment: convolution forward/backward, bicubic resampling, one
//! solver pseudo-time step, and composite-mesh ghost exchange.

use adarnet_amr::{CompositeField, PatchLayout, RefinementMap, Side};
use adarnet_cfd::{CaseConfig, CaseMesh, RansSolver, SolverConfig};
use adarnet_nn::kernels::{conv2d_forward, conv2d_forward_gemm};
use adarnet_nn::{bicubic_resize3, he_normal};
use adarnet_tensor::{Shape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_conv(c: &mut Criterion) {
    let x = Tensor::<f32>::full(Shape::d4(1, 8, 64, 64), 0.5);
    let w = he_normal(Shape::d4(16, 8, 3, 3), 72, 0);
    let b = Tensor::<f32>::zeros(Shape::d1(16));
    c.bench_function("conv2d_direct_8to16_64x64", |bench| {
        bench.iter(|| black_box(conv2d_forward(black_box(&x), &w, &b, 1)))
    });
    c.bench_function("conv2d_gemm_8to16_64x64", |bench| {
        bench.iter(|| black_box(conv2d_forward_gemm(black_box(&x), &w, &b, 1)))
    });
}

fn bench_bicubic(c: &mut Criterion) {
    let x = Tensor::<f32>::full(Shape::d3(5, 16, 16), 0.3);
    c.bench_function("bicubic_16to128_5ch", |bench| {
        bench.iter(|| black_box(bicubic_resize3(black_box(&x), 128, 128)))
    });
}

fn bench_solver_step(c: &mut Criterion) {
    let mut case = CaseConfig::channel(2.5e3);
    case.lx = 1.0;
    let layout = PatchLayout::new(2, 8, 8, 8);
    let mesh = CaseMesh::new(case, RefinementMap::uniform(layout, 0, 3));
    let mut solver = RansSolver::new(mesh, SolverConfig::default());
    c.bench_function("rans_step_16x64_uniform", |bench| {
        bench.iter(|| black_box(solver.step()))
    });

    // Mixed-refinement step (the composite-mesh overhead).
    let mut case = CaseConfig::channel(2.5e3);
    case.lx = 1.0;
    let mut levels = vec![0u8; 16];
    for l in levels.iter_mut().take(8) {
        *l = 1;
    }
    let map = RefinementMap::from_levels(layout, levels, 3);
    let mesh = CaseMesh::new(case, map);
    let mut solver = RansSolver::new(mesh, SolverConfig::default());
    c.bench_function("rans_step_16x64_mixed_levels", |bench| {
        bench.iter(|| black_box(solver.step()))
    });
}

fn bench_ghost_exchange(c: &mut Criterion) {
    let layout = PatchLayout::new(4, 4, 16, 16);
    let map = RefinementMap::from_levels(layout, (0..16).map(|i| (i % 4) as u8).collect(), 3);
    let field = CompositeField::constant(&map, 1.0);
    c.bench_function("ghost_lines_16_patches_mixed", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for py in 0..4 {
                for px in 0..4 {
                    for side in Side::ALL {
                        if let Some(g) = field.ghost_line(py, px, side) {
                            acc += g[0];
                        }
                    }
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_conv, bench_bicubic, bench_solver_step, bench_ghost_exchange
);
criterion_main!(kernels);
