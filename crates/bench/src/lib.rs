//! Shared support for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Every harness binary (`fig1`, `fig9`, `fig10`, `fig11`, `table1`,
//! `table2`) runs at one of two scales:
//! * `quick` (default) — reduced grids and iteration caps so the full
//!   suite completes in minutes on one CPU core;
//! * `full` — the paper-shaped configuration (64x256 LR, 64 patches of
//!   16x16, 64x max SR), selected with `ADARNET_BENCH_SCALE=full`.
//!
//! Both scales preserve the quantities the reproduction targets: who wins,
//! by roughly what factor, and where the trends cross (EXPERIMENTS.md).

use adarnet_amr::PatchLayout;
use adarnet_cfd::{CaseConfig, SolverConfig};
use adarnet_core::{AdarNet, AdarNetConfig, NormStats, Trainer, TrainerConfig};
use adarnet_dataset::{Family, Sample, SampleMeta, TestCase};

/// Harness scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-on-one-core configuration.
    Quick,
    /// Paper-shaped configuration.
    Full,
}

impl Scale {
    /// Read `ADARNET_BENCH_SCALE` (`quick`/`full`; default quick).
    pub fn from_env() -> Scale {
        match std::env::var("ADARNET_BENCH_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// LR field extent `(h, w)`.
    pub fn lr_extent(self) -> (usize, usize) {
        match self {
            Scale::Quick => (32, 64),
            Scale::Full => (64, 256),
        }
    }

    /// Patch extent (paper: 16).
    pub fn patch(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Full => 16,
        }
    }

    /// Patch layout for this scale.
    pub fn layout(self) -> PatchLayout {
        let (h, w) = self.lr_extent();
        let p = self.patch();
        PatchLayout::for_field(h, w, p, p)
    }

    /// Solver configuration (iteration caps sized to the scale).
    pub fn solver_cfg(self) -> SolverConfig {
        match self {
            Scale::Quick => SolverConfig {
                max_iters: 3000,
                tol: 2.5e-3,
                ..SolverConfig::default()
            },
            Scale::Full => SolverConfig {
                max_iters: 20_000,
                tol: 2e-3,
                ..SolverConfig::default()
            },
        }
    }

    /// Training configuration `(samples per family, epochs)`.
    pub fn training(self) -> (usize, usize) {
        match self {
            Scale::Quick => (4, 5),
            Scale::Full => (24, 8),
        }
    }

    /// Learning rate for the bench training runs. The paper's 1e-4 is
    /// matched to 350 epochs over 27 000 samples; at the bench's
    /// miniature step budget we scale it up so the scorer actually leaves
    /// initialization (documented deviation, EXPERIMENTS.md).
    pub fn learning_rate(self) -> f64 {
        match self {
            Scale::Quick => 2e-3,
            Scale::Full => 5e-4,
        }
    }
}

/// The evaluation case configs, with wall-bounded domains shortened at
/// quick scale so the flow develops within the iteration budget (the
/// Reynolds number and boundary conditions are unchanged; see
/// EXPERIMENTS.md).
pub fn bench_case(tc: TestCase, scale: Scale) -> CaseConfig {
    let mut case = tc.config();
    if scale == Scale::Quick {
        match tc {
            TestCase::ChannelInt | TestCase::ChannelExt => case.lx = 1.0,
            TestCase::FlatPlateInt | TestCase::FlatPlateExt => case.lx = 2.5,
            _ => {}
        }
    }
    case
}

/// Synthesize the training set matched to a scale's LR extent.
pub fn training_set(scale: Scale) -> Vec<Sample> {
    let (h, w) = scale.lr_extent();
    let (per_family, _) = scale.training();
    let cfg = adarnet_dataset::DatasetConfig {
        per_family,
        h,
        w,
        seed: 0,
        val_fraction: 0.0,
    };
    adarnet_dataset::generate(&cfg)
}

/// Train the bench model once (shared by harnesses). The trained weights
/// are cached on disk per scale, so the six harness binaries train once
/// between them; delete the cache file (path printed on save) or set
/// `ADARNET_BENCH_RETRAIN=1` to force retraining.
pub fn trained_model(scale: Scale) -> Trainer {
    let cache = std::env::temp_dir().join(format!(
        "adarnet_bench_model_{}.json",
        if scale == Scale::Quick {
            "quick"
        } else {
            "full"
        }
    ));
    let retrain = std::env::var("ADARNET_BENCH_RETRAIN").is_ok();
    if !retrain {
        if let Ok((model, norm)) = adarnet_core::checkpoint::load_file(&cache) {
            if model.cfg.ph == scale.patch() {
                eprintln!("[bench] loaded cached model from {}", cache.display());
                return Trainer::new(model, norm, TrainerConfig::default());
            }
        }
    }

    let train = training_set(scale);
    let (_, epochs) = scale.training();
    let norm = NormStats::from_samples(train.iter().map(|s| &s.field));
    let p = scale.patch();
    let model = AdarNet::new(AdarNetConfig {
        ph: p,
        pw: p,
        bins: 4,
        seed: 42,
        ..AdarNetConfig::default()
    });
    let mut trainer = Trainer::new(
        model,
        norm,
        TrainerConfig {
            lr: scale.learning_rate(),
            // Stronger score supervision at the miniature step budget so
            // the refinement decisions track the residual distribution.
            mu: 25.0,
            ..TrainerConfig::default()
        },
    );
    eprintln!(
        "[bench] training ADARNet: {} samples x {} epochs at lr {:.0e}...",
        train.len(),
        epochs,
        scale.learning_rate()
    );
    for e in 0..epochs {
        let st = trainer.train_epoch(&train);
        eprintln!("[bench]   epoch {e}: total {:.3e}", st.total);
    }
    if let Err(e) = adarnet_core::checkpoint::save_file(&trainer.model, &trainer.norm, &cache) {
        eprintln!("[bench] warning: could not cache model: {e}");
    } else {
        eprintln!("[bench] cached model at {}", cache.display());
    }
    trainer
}

/// A sample for a single evaluation case at a scale's LR extent.
pub fn case_lr_sample(tc: TestCase, scale: Scale) -> Sample {
    let case = bench_case(tc, scale);
    let (h, w) = scale.lr_extent();
    Sample {
        field: adarnet_dataset::synthesize(&case, h, w),
        meta: SampleMeta {
            family: Family::Channel, // metadata only; spacing fields matter
            reynolds: case.reynolds,
            name: case.name.clone(),
            lx: case.lx,
            ly: case.ly,
        },
    }
}

/// Format a ratio as the paper does (`3.0x`).
pub fn fmt_x(v: f64) -> String {
    format!("{v:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_produce_valid_layouts() {
        for scale in [Scale::Quick, Scale::Full] {
            let l = scale.layout();
            assert!(l.num_patches() > 0);
            let (h, w) = scale.lr_extent();
            assert_eq!(l.coarse_h(), h);
            assert_eq!(l.coarse_w(), w);
        }
        // Full scale matches the paper's 64-patch configuration.
        assert_eq!(Scale::Full.layout().num_patches(), 64);
    }

    #[test]
    fn quick_shortens_wall_bounded_domains_only() {
        let c = bench_case(TestCase::ChannelInt, Scale::Quick);
        assert_eq!(c.lx, 1.0);
        assert_eq!(c.reynolds, 2.5e3);
        let cyl = bench_case(TestCase::Cylinder, Scale::Quick);
        assert_eq!(cyl.lx, 8.0);
        let full = bench_case(TestCase::ChannelInt, Scale::Full);
        assert_eq!(full.lx, 6.0);
    }

    #[test]
    fn case_lr_sample_matches_extent() {
        let s = case_lr_sample(TestCase::Cylinder, Scale::Quick);
        assert_eq!(s.field.dim(1), 32);
        assert_eq!(s.field.dim(2), 64);
        assert_eq!(s.meta.lx, 8.0);
    }
}
