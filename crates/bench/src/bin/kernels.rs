//! Convolution kernel throughput sweep over the paper's shapes.
//!
//! Benchmarks the four forward paths — direct (`conv2d_forward`),
//! im2col + row GEMM (`conv2d_forward_gemm`), the register-tiled,
//! cache-blocked micro-kernel (`conv2d_forward_blocked`), and the
//! pre-packed-weights variant (`conv2d_forward_packed`, panels packed
//! once outside the timed region as a frozen model would) — across the
//! patch extents the decoder actually sees (16/32/64/128 per side:
//! 16x16 patches refined to bins 0–3) and the decoder/scorer channel
//! widths (8/16/64), plus the scorer's full 64x256 LR field.
//!
//! The sweep is what `GEMM_THRESHOLD` in `adarnet_nn::kernels` is
//! calibrated from: the `sub0_*` probe rows bracket the crossover where
//! the blocked path overtakes the direct loop nest (between 4 and 16
//! output pixels — far below the smallest paper shape, so every bin
//! routes blocked).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p adarnet-bench --bin kernels                # full sweep -> BENCH_kernels.json
//! cargo run --release -p adarnet-bench --bin kernels -- --smoke     # CI budget, no file written
//! cargo run --release -p adarnet-bench --bin kernels -- --smoke \
//!     --check-against BENCH_kernels.json                            # regression gate (>1.5x fails)
//! cargo run --release -p adarnet-bench --bin kernels -- --out path  # explicit output path
//! ```
//!
//! The `--check-against` gate compares the blocked path's measured
//! throughput per configuration against the committed baseline and
//! exits non-zero if any config runs more than 1.5x slower — a guard
//! against silent micro-kernel regressions, sized loosely enough to
//! tolerate machine-to-machine variance in CI.

use std::hint::black_box;
use std::time::Instant;

use adarnet_nn::he_normal;
use adarnet_nn::kernels::{
    conv2d_forward, conv2d_forward_blocked, conv2d_forward_gemm, conv2d_forward_packed,
    pack_weight_panels, packed_panels_len, PackedPanels, GEMM_THRESHOLD,
};
use adarnet_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// One benchmarked (extent, channels) configuration.
#[derive(Debug, Serialize, Deserialize)]
struct ConfigResult {
    /// Square spatial extent per side (bin n of a 16x16 patch -> 16 << n),
    /// except the scorer row which is 64x256.
    label: String,
    /// Input spatial extent.
    h: usize,
    w: usize,
    /// Channel width (input == output channels, 3x3 same-padded).
    channels: usize,
    /// Output pixels per image (`h * w` with same padding) — the quantity
    /// `GEMM_THRESHOLD` dispatches on.
    o_len: usize,
    /// Seconds per iteration, per path.
    naive_secs: f64,
    gemm_secs: f64,
    blocked_secs: f64,
    /// Pre-packed-weights path: panels packed once outside the timed
    /// region, so this isolates the per-call packing overhead the
    /// frozen model eliminates.
    packed_secs: f64,
    /// Blocked-path throughput in GFLOP/s (2 * oc * k_len * o_len flops).
    blocked_gflops: f64,
    /// Speedup of the blocked path over the row-GEMM reference.
    blocked_vs_gemm: f64,
    /// Speedup of the pre-packed path over per-call-packing blocked.
    packed_vs_blocked: f64,
}

/// The committed benchmark artifact.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    /// `full` or `smoke` — smoke numbers are for the regression gate
    /// only and are never written over a full baseline.
    mode: String,
    /// The threshold compiled into `adarnet_nn::kernels` when this
    /// report was produced.
    gemm_threshold: usize,
    configs: Vec<ConfigResult>,
}

/// Time `f` adaptively: one probe iteration sizes a batch that targets
/// `budget` seconds, then the batch is timed. Returns secs per iteration.
fn time_secs(budget: f64, mut f: impl FnMut()) -> f64 {
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64().max(1e-7);
    let reps = ((budget / once).ceil() as usize).clamp(1, 10_000);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn bench_config(label: &str, h: usize, w: usize, ch: usize, budget: f64) -> ConfigResult {
    let x = Tensor::<f32>::from_vec(
        Shape::d4(1, ch, h, w),
        (0..ch * h * w)
            .map(|i| ((i as f32) * 0.013).sin())
            .collect(),
    );
    let wt = he_normal(Shape::d4(ch, ch, 3, 3), ch * 9, 7);
    let b = Tensor::<f32>::zeros(Shape::d1(ch));
    let o_len = h * w;
    let k_len = ch * 9;

    let naive_secs = time_secs(budget, || {
        black_box(conv2d_forward(black_box(&x), &wt, &b, 1)).recycle();
    });
    let gemm_secs = time_secs(budget, || {
        black_box(conv2d_forward_gemm(black_box(&x), &wt, &b, 1)).recycle();
    });
    let blocked_secs = time_secs(budget, || {
        black_box(conv2d_forward_blocked(black_box(&x), &wt, &b, 1)).recycle();
    });

    // Pack once, outside the timed region — exactly what a frozen
    // model does at construction — then time the packed forward alone.
    let mut panels = vec![0.0f32; packed_panels_len(ch, k_len)];
    pack_weight_panels(wt.as_slice(), ch, k_len, &mut panels);
    let packed = PackedPanels {
        data: &panels,
        oc: ch,
        ic: ch,
        kh: 3,
        kw: 3,
    };
    let packed_secs = time_secs(budget, || {
        black_box(conv2d_forward_packed(black_box(&x), packed, &b, 1)).recycle();
    });

    let flops = 2.0 * ch as f64 * k_len as f64 * o_len as f64;
    ConfigResult {
        label: label.to_string(),
        h,
        w,
        channels: ch,
        o_len,
        naive_secs,
        gemm_secs,
        blocked_secs,
        packed_secs,
        blocked_gflops: flops / blocked_secs / 1e9,
        blocked_vs_gemm: gemm_secs / blocked_secs,
        packed_vs_blocked: blocked_secs / packed_secs,
    }
}

fn run_sweep(smoke: bool) -> BenchReport {
    // Per-path, per-config measurement budget. Smoke keeps the whole
    // sweep under a few seconds for CI; full targets stable numbers.
    let budget = if smoke { 0.03 } else { 0.25 };
    let mut configs = Vec::new();
    // Crossover probe below the smallest paper shape: where the direct
    // path still beats the blocked path's im2col + dispatch overhead.
    // `GEMM_THRESHOLD` is read off these rows.
    for &e in &[2usize, 4, 8] {
        let label = format!("sub0_{e}x{e}_8ch");
        eprintln!("  running {label} ...");
        configs.push(bench_config(&label, e, e, 8, budget));
    }
    // 16x16 patches at bins 0..=3 -> 16/32/64/128 per side.
    for bin in 0..4usize {
        let e = 16 << bin;
        for &ch in &[8usize, 16, 64] {
            let label = format!("bin{bin}_{e}x{e}_{ch}ch");
            eprintln!("  running {label} ...");
            configs.push(bench_config(&label, e, e, ch, budget));
        }
    }
    // The scorer runs on the full LR field, not a patch.
    eprintln!("  running scorer_64x256_16ch ...");
    configs.push(bench_config("scorer_64x256_16ch", 64, 256, 16, budget));

    BenchReport {
        schema: "adarnet-bench-kernels-v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        gemm_threshold: GEMM_THRESHOLD,
        configs,
    }
}

/// Compare `current` against a committed baseline; returns the labels
/// whose blocked path regressed by more than `max_ratio`.
fn regressions(current: &BenchReport, baseline: &BenchReport, max_ratio: f64) -> Vec<String> {
    let mut bad = Vec::new();
    for cur in &current.configs {
        if let Some(base) = baseline.configs.iter().find(|c| c.label == cur.label) {
            let ratio = cur.blocked_secs / base.blocked_secs;
            if ratio > max_ratio {
                bad.push(format!(
                    "{}: blocked path {:.2}x slower than baseline ({:.3e}s vs {:.3e}s)",
                    cur.label, ratio, cur.blocked_secs, base.blocked_secs
                ));
            }
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_against = args
        .iter()
        .position(|a| a == "--check-against")
        .map(|i| args[i + 1].clone());
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone());

    eprintln!(
        "kernel sweep ({}): naive vs gemm vs blocked, GEMM_THRESHOLD={}",
        if smoke { "smoke" } else { "full" },
        GEMM_THRESHOLD
    );
    let report = run_sweep(smoke);

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>9} {:>10}",
        "config",
        "o_len",
        "naive s",
        "gemm s",
        "blocked s",
        "packed s",
        "GFLOP/s",
        "vs gemm",
        "vs packed"
    );
    for c in &report.configs {
        println!(
            "{:<22} {:>8} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>10.2} {:>8.2}x {:>9.2}x",
            c.label,
            c.o_len,
            c.naive_secs,
            c.gemm_secs,
            c.blocked_secs,
            c.packed_secs,
            c.blocked_gflops,
            c.blocked_vs_gemm,
            c.packed_vs_blocked
        );
    }

    if let Some(path) = &check_against {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: BenchReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let bad = regressions(&report, &baseline, 1.5);
        if bad.is_empty() {
            println!(
                "regression gate: OK ({} configs within 1.5x of baseline)",
                report.configs.len()
            );
        } else {
            eprintln!("regression gate FAILED:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
        return; // gate runs never overwrite the committed baseline
    }

    let path = out.unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}
