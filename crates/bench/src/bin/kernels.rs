//! Convolution kernel throughput sweep over the paper's shapes, per
//! compute backend.
//!
//! Benchmarks the four forward paths — direct (`Device::conv2d_forward`),
//! im2col + row GEMM (`conv2d_forward_gemm`), the register-tiled,
//! cache-blocked micro-kernel (`conv2d_forward_blocked`), and the
//! pre-packed-weights variant as the layers actually dispatch it
//! (packed above `PACKED_MIN_OLEN`, blocked-unpacked in the
//! `[GEMM_THRESHOLD, PACKED_MIN_OLEN)` band, direct below; panels
//! packed once outside the timed region as a frozen model would) —
//! across the patch extents the decoder actually sees (16/32/64/128
//! per side: 16x16 patches refined to bins 0–3) and the decoder/scorer
//! channel widths (8/16/64), plus the scorer's full 64x256 LR field.
//! Every configuration runs on **both** backends: the scalar reference
//! plane and the AVX2+FMA vectorized plane.
//!
//! The sweep is what `GEMM_THRESHOLD` and `PACKED_MIN_OLEN` in
//! `adarnet_nn::kernels` are calibrated from: the `sub0_*` probe rows
//! bracket the direct/blocked crossover (between 4 and 16 output
//! pixels) and the packed path's break-even against blocked (packing
//! pays for itself from ~64 output pixels; below that the v1 baseline
//! showed packed 0.65–0.94x blocked, which is why the layers now route
//! that band to blocked-unpacked).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p adarnet-bench --bin kernels                # full sweep -> BENCH_kernels.json
//! cargo run --release -p adarnet-bench --bin kernels -- --smoke     # CI budget, no file written
//! cargo run --release -p adarnet-bench --bin kernels -- --smoke \
//!     --check-against BENCH_kernels.json                            # regression gate (>1.5x fails)
//! cargo run --release -p adarnet-bench --bin kernels -- --gate-simd # SIMD >= 1.5x scalar at bin 3
//! cargo run --release -p adarnet-bench --bin kernels -- --gate-bf16 # bf16 >= 0.95x f32 dispatched
//! cargo run --release -p adarnet-bench --bin kernels -- --out path  # explicit output path
//! ```
//!
//! Four gates, all ratio-based so they hold on noisy shared machines:
//!
//! * **Packed floor** (always on): the *dispatched* packed path must
//!   reach at least 0.95x blocked throughput on every row in full
//!   mode (0.75x under `--smoke` budgets) — the regression the
//!   `PACKED_MIN_OLEN` routing exists to prevent.
//! * **`--check-against`**: per `(label, backend)` row, the blocked
//!   path must run within 1.5x of the committed baseline.
//! * **`--gate-simd`**: same-run comparison — the SIMD backend's
//!   blocked GFLOP/s must be >= 1.5x scalar on the bin-3 rows (skipped
//!   with a note on hardware without AVX2/FMA, where both planes run
//!   the same scalar micro-kernels).
//! * **`--gate-bf16`**: same-run comparison — the bf16 packed path
//!   (half-size panels, widened once per forward call into pooled
//!   scratch ahead of the shared f32 FMA tiles) must reach at least
//!   0.95x the dispatched f32 path (0.75x under `--smoke`) on every
//!   packed-eligible row, on both backends. The reduced plane halves
//!   weight-panel bytes; this gate proves the widening work doesn't
//!   give the win back.

use std::hint::black_box;
use std::time::Instant;

use adarnet_nn::he_normal;
use adarnet_nn::kernels::{
    pack_weight_panels, packed_panels_len, PackedPanels, GEMM_THRESHOLD, PACKED_MIN_OLEN,
};
use adarnet_nn::quantize::{pack_weight_panels_bf16, PackedPanelsBf16};
use adarnet_nn::Device;
use adarnet_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// One benchmarked (extent, channels, backend) configuration.
#[derive(Debug, Serialize, Deserialize)]
struct ConfigResult {
    /// Square spatial extent per side (bin n of a 16x16 patch -> 16 << n),
    /// except the scorer row which is 64x256.
    label: String,
    /// Backend the row ran on (`cpu_scalar` / `cpu_simd`).
    backend: String,
    /// Input spatial extent.
    h: usize,
    w: usize,
    /// Channel width (input == output channels, 3x3 same-padded).
    channels: usize,
    /// Output pixels per image (`h * w` with same padding) — the quantity
    /// the layers dispatch on.
    o_len: usize,
    /// Seconds per iteration, per path.
    naive_secs: f64,
    gemm_secs: f64,
    blocked_secs: f64,
    /// The dispatched pre-packed path: what a frozen layer runs for
    /// this shape — packed panels above `PACKED_MIN_OLEN` (packed once
    /// outside the timed region), blocked-unpacked in the mid band,
    /// direct below `GEMM_THRESHOLD`.
    packed_secs: f64,
    /// The bf16 weight plane's packed path: panels narrowed to bf16
    /// once outside the timed region (what `freeze_as(Bf16)` does),
    /// then the widen-once-per-call packed driver timed alone. The
    /// bf16 plane dispatches every shape through this path.
    bf16_packed_secs: f64,
    /// Blocked-path throughput in GFLOP/s (2 * oc * k_len * o_len flops).
    blocked_gflops: f64,
    /// Speedup of the blocked path over the row-GEMM reference.
    blocked_vs_gemm: f64,
    /// Speedup of the dispatched packed path over per-call-packing
    /// blocked: best paired round (see the rotation comment in
    /// `bench_config`). The packed-floor gate holds this >= 0.95
    /// (full mode) on every row.
    packed_vs_blocked: f64,
    /// Speedup of the bf16 packed path over the dispatched f32 path
    /// for the same shape: best paired round. The `--gate-bf16` floor
    /// holds this >= 0.95 (full mode) on every packed-eligible row:
    /// halving panel bytes must not cost throughput to the per-call
    /// widening stage.
    bf16_vs_f32: f64,
}

/// The committed benchmark artifact.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    /// `full` or `smoke` — smoke numbers are for the regression gate
    /// only and are never written over a full baseline.
    mode: String,
    /// The thresholds compiled into `adarnet_nn::kernels` when this
    /// report was produced.
    gemm_threshold: usize,
    packed_min_olen: usize,
    /// Whether the `cpu_simd` rows actually ran the AVX2+FMA
    /// micro-kernels on the producing machine (false = they degraded
    /// to scalar, so the two backends' rows measure the same code).
    simd_active: bool,
    configs: Vec<ConfigResult>,
}

/// Time `f` adaptively: one probe iteration sizes a batch that targets
/// `budget` seconds, then the batch is timed. Returns secs per iteration.
fn time_secs(budget: f64, mut f: impl FnMut()) -> f64 {
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64().max(1e-7);
    let reps = ((budget / once).ceil() as usize).clamp(1, 10_000);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn bench_config(
    label: &str,
    dev: Device,
    h: usize,
    w: usize,
    ch: usize,
    budget: f64,
) -> ConfigResult {
    let x = Tensor::<f32>::from_vec(
        Shape::d4(1, ch, h, w),
        (0..ch * h * w)
            .map(|i| ((i as f32) * 0.013).sin())
            .collect(),
    );
    let wt = he_normal(Shape::d4(ch, ch, 3, 3), ch * 9, 7);
    let b = Tensor::<f32>::zeros(Shape::d1(ch));
    let o_len = h * w;
    let k_len = ch * 9;

    let naive_secs = time_secs(budget, || {
        black_box(dev.conv2d_forward(black_box(&x), &wt, &b, 1)).recycle();
    });
    let gemm_secs = time_secs(budget, || {
        black_box(dev.conv2d_forward_gemm(black_box(&x), &wt, &b, 1)).recycle();
    });

    // Panels for the two pre-packed paths, built outside the timed
    // region — exactly what a frozen model does at construction.
    let mut panels = vec![0.0f32; packed_panels_len(ch, k_len)];
    pack_weight_panels(wt.as_slice(), ch, k_len, &mut panels);
    let packed = PackedPanels {
        data: &panels,
        oc: ch,
        ic: ch,
        kh: 3,
        kw: 3,
    };
    let mut bf16_panels = vec![0u16; packed_panels_len(ch, k_len)];
    pack_weight_panels_bf16(wt.as_slice(), ch, k_len, &mut bf16_panels);
    let bf16_packed = PackedPanelsBf16 {
        data: &bf16_panels,
        oc: ch,
        ic: ch,
        kh: 3,
        kw: 3,
    };

    // The three ratio-gated paths (packed-floor, `--check-against`,
    // `--gate-simd`, `--gate-bf16` all divide pairs of these) are
    // timed in rotation — blocked, then the dispatched f32 path, then
    // the bf16 plane — for several rounds. Absolute columns take the
    // per-path minimum (the classical least-interference estimator);
    // the two floor-gated ratios are computed *per round* from the
    // adjacent measurements and the best round is kept. Pairing
    // matters on a steal-prone shared host: a hypervisor burst that
    // lands inside one path's batch skews an unpaired min-over-min
    // ratio by ±10% (the difference between a floor pass and a flaky
    // failure), while a paired ratio only needs one round where both
    // adjacent batches ran clean. A *systematic* kernel regression
    // slows its path in every round, so best-of-rounds still catches
    // everything the floors exist to catch. Full mode buys five
    // rounds; smoke stays at three to hold the CI budget. The
    // informational naive/row-GEMM columns keep one cheap batch.
    //
    // The dispatched f32 path is what a frozen layer runs for this
    // shape: packed panels above `PACKED_MIN_OLEN`, blocked-unpacked
    // in the mid band, direct loops below `GEMM_THRESHOLD`. The bf16
    // plane routes every shape through its packed panels (it keeps no
    // unpacked f32 copy to fall back to).
    let rounds = if budget > 0.1 { 5 } else { 3 };
    let mut blocked_secs = f64::INFINITY;
    let mut packed_secs = f64::INFINITY;
    let mut bf16_packed_secs = f64::INFINITY;
    let mut packed_vs_blocked = 0.0f64;
    let mut bf16_vs_f32 = 0.0f64;
    for _ in 0..rounds {
        let blocked_r = time_secs(budget, || {
            black_box(dev.conv2d_forward_blocked(black_box(&x), &wt, &b, 1)).recycle();
        });
        let packed_r = if o_len >= PACKED_MIN_OLEN {
            time_secs(budget, || {
                black_box(dev.conv2d_forward_packed(black_box(&x), packed, &b, 1)).recycle();
            })
        } else if o_len >= GEMM_THRESHOLD {
            time_secs(budget, || {
                black_box(dev.conv2d_forward_blocked(black_box(&x), &wt, &b, 1)).recycle();
            })
        } else {
            time_secs(budget, || {
                black_box(dev.conv2d_forward(black_box(&x), &wt, &b, 1)).recycle();
            })
        };
        let bf16_r = time_secs(budget, || {
            black_box(dev.conv2d_forward_packed_bf16(black_box(&x), bf16_packed, &b, 1)).recycle();
        });
        blocked_secs = blocked_secs.min(blocked_r);
        packed_secs = packed_secs.min(packed_r);
        bf16_packed_secs = bf16_packed_secs.min(bf16_r);
        packed_vs_blocked = packed_vs_blocked.max(blocked_r / packed_r);
        bf16_vs_f32 = bf16_vs_f32.max(packed_r / bf16_r);
    }

    let flops = 2.0 * ch as f64 * k_len as f64 * o_len as f64;
    ConfigResult {
        label: label.to_string(),
        backend: dev.name().to_string(),
        h,
        w,
        channels: ch,
        o_len,
        naive_secs,
        gemm_secs,
        blocked_secs,
        packed_secs,
        bf16_packed_secs,
        blocked_gflops: flops / blocked_secs / 1e9,
        blocked_vs_gemm: gemm_secs / blocked_secs,
        packed_vs_blocked,
        bf16_vs_f32,
    }
}

const BACKENDS: [Device; 2] = [Device::CpuScalar, Device::CpuSimd];

fn run_sweep(smoke: bool) -> BenchReport {
    // Per-path, per-config measurement budget. Smoke keeps the whole
    // sweep under a few seconds for CI; full targets stable numbers.
    let budget = if smoke { 0.02 } else { 0.25 };
    let mut shapes: Vec<(String, usize, usize, usize)> = Vec::new();
    // Crossover probes below the smallest paper shape: where the direct
    // path still beats blocked (`GEMM_THRESHOLD` is read off 2x2/4x4)
    // and where packing starts paying for itself (`PACKED_MIN_OLEN`,
    // read off 4x4 vs 8x8).
    for &e in &[2usize, 4, 8] {
        shapes.push((format!("sub0_{e}x{e}_8ch"), e, e, 8));
    }
    // 16x16 patches at bins 0..=3 -> 16/32/64/128 per side.
    for bin in 0..4usize {
        let e = 16 << bin;
        for &ch in &[8usize, 16, 64] {
            shapes.push((format!("bin{bin}_{e}x{e}_{ch}ch"), e, e, ch));
        }
    }
    // The scorer runs on the full LR field, not a patch.
    shapes.push(("scorer_64x256_16ch".to_string(), 64, 256, 16));

    // Interleave backends per shape (scalar then simd on the same
    // warmed caches) so cross-backend ratios cancel machine drift.
    let mut configs = Vec::new();
    for (label, h, w, ch) in &shapes {
        for dev in BACKENDS {
            eprintln!("  running {label} on {} ...", dev.name());
            configs.push(bench_config(label, dev, *h, *w, *ch, budget));
        }
    }

    BenchReport {
        schema: "adarnet-bench-kernels-v3".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        gemm_threshold: GEMM_THRESHOLD,
        packed_min_olen: PACKED_MIN_OLEN,
        simd_active: Device::CpuSimd.is_simd_active(),
        configs,
    }
}

/// Compare `current` against a committed baseline; returns the rows
/// whose blocked path regressed by more than `max_ratio`. Rows are
/// keyed `(label, backend)`; baseline rows without a match (e.g. an
/// older schema) are skipped.
fn regressions(current: &BenchReport, baseline: &BenchReport, max_ratio: f64) -> Vec<String> {
    let mut bad = Vec::new();
    for cur in &current.configs {
        if let Some(base) = baseline
            .configs
            .iter()
            .find(|c| c.label == cur.label && c.backend == cur.backend)
        {
            let ratio = cur.blocked_secs / base.blocked_secs;
            if ratio > max_ratio {
                bad.push(format!(
                    "{} [{}]: blocked path {:.2}x slower than baseline ({:.3e}s vs {:.3e}s)",
                    cur.label, cur.backend, ratio, cur.blocked_secs, base.blocked_secs
                ));
            }
        }
    }
    bad
}

/// The packed-floor gate: the dispatched packed path must not fall
/// below `floor` of blocked throughput on any row. This is the
/// regression `PACKED_MIN_OLEN` routing fixed — packing overhead
/// swamping small GEMMs — so it is asserted on every run.
fn packed_floor_violations(report: &BenchReport, floor: f64) -> Vec<String> {
    report
        .configs
        .iter()
        .filter(|c| c.packed_vs_blocked < floor)
        .map(|c| {
            format!(
                "{} [{}]: dispatched packed path at {:.3}x blocked (floor {floor})",
                c.label, c.backend, c.packed_vs_blocked
            )
        })
        .collect()
}

/// The bf16 gate: on every packed-eligible row (the shapes the f32
/// plane also dispatches through packed panels), the bf16 path's
/// per-call widening stage must not cost more than the floor relative
/// to the dispatched f32 path, on either backend. Same-run ratio, so machine
/// drift cancels. Sub-threshold rows are exempt: there f32 dispatches
/// direct/blocked while bf16 has only the packed plane, and that
/// mismatch is a routing question, not a micro-kernel regression.
fn bf16_gate_violations(report: &BenchReport, floor: f64) -> Vec<String> {
    report
        .configs
        .iter()
        .filter(|c| c.o_len >= PACKED_MIN_OLEN && c.bf16_vs_f32 < floor)
        .map(|c| {
            format!(
                "{} [{}]: bf16 packed path at {:.3}x dispatched f32 (floor {floor})",
                c.label, c.backend, c.bf16_vs_f32
            )
        })
        .collect()
}

/// The SIMD gate: same-run blocked GFLOP/s, SIMD vs scalar, on the
/// bin-3 (128x128) rows — the largest decode shapes, where the vector
/// plane's advantage must be unambiguous even on a noisy host.
fn simd_gate_violations(report: &BenchReport, min_speedup: f64) -> Vec<String> {
    let mut bad = Vec::new();
    for cur in report
        .configs
        .iter()
        .filter(|c| c.label.starts_with("bin3_") && c.backend == Device::CpuSimd.name())
    {
        let Some(scalar) = report
            .configs
            .iter()
            .find(|c| c.label == cur.label && c.backend == Device::CpuScalar.name())
        else {
            continue;
        };
        let speedup = cur.blocked_gflops / scalar.blocked_gflops;
        if speedup < min_speedup {
            bad.push(format!(
                "{}: simd {:.2} GFLOP/s vs scalar {:.2} GFLOP/s = {:.2}x (need >= {min_speedup}x)",
                cur.label, cur.blocked_gflops, scalar.blocked_gflops, speedup
            ));
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_simd = args.iter().any(|a| a == "--gate-simd");
    let gate_bf16 = args.iter().any(|a| a == "--gate-bf16");
    let check_against = args
        .iter()
        .position(|a| a == "--check-against")
        .map(|i| args[i + 1].clone());
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone());

    eprintln!(
        "kernel sweep ({}): naive vs gemm vs blocked vs dispatched-packed, \
         backends {:?}, GEMM_THRESHOLD={}, PACKED_MIN_OLEN={}, simd_active={}",
        if smoke { "smoke" } else { "full" },
        BACKENDS.map(Device::name),
        GEMM_THRESHOLD,
        PACKED_MIN_OLEN,
        Device::CpuSimd.is_simd_active(),
    );
    let report = run_sweep(smoke);

    println!(
        "{:<22} {:<11} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10} {:>9} {:>10} {:>9}",
        "config",
        "backend",
        "o_len",
        "naive s",
        "gemm s",
        "blocked s",
        "packed s",
        "bf16 s",
        "GFLOP/s",
        "vs gemm",
        "vs packed",
        "bf16/f32"
    );
    for c in &report.configs {
        println!(
            "{:<22} {:<11} {:>8} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>10.2} {:>8.2}x {:>9.2}x {:>8.2}x",
            c.label,
            c.backend,
            c.o_len,
            c.naive_secs,
            c.gemm_secs,
            c.blocked_secs,
            c.packed_secs,
            c.bf16_packed_secs,
            c.blocked_gflops,
            c.blocked_vs_gemm,
            c.packed_vs_blocked,
            c.bf16_vs_f32
        );
    }

    let mut failed = false;

    // Packed floor: always on. Smoke budgets are noisy on shared
    // 1-core hosts, so the floor loosens there; a full run must show
    // the dispatched packed path essentially never losing to blocked.
    let floor = if smoke { 0.75 } else { 0.95 };
    let bad = packed_floor_violations(&report, floor);
    if bad.is_empty() {
        println!(
            "packed-floor gate: OK (all {} rows >= {floor}x blocked)",
            report.configs.len()
        );
    } else {
        eprintln!("packed-floor gate FAILED:");
        for b in &bad {
            eprintln!("  {b}");
        }
        failed = true;
    }

    if gate_bf16 {
        // Same floor schedule as the packed gate: the bf16 plane uses
        // the identical blocked tiling, so its noise envelope matches.
        let bad = bf16_gate_violations(&report, floor);
        let eligible = report
            .configs
            .iter()
            .filter(|c| c.o_len >= PACKED_MIN_OLEN)
            .count();
        if bad.is_empty() {
            println!("bf16 gate: OK (all {eligible} packed-eligible rows >= {floor}x dispatched f32)");
        } else {
            eprintln!("bf16 gate FAILED:");
            for b in &bad {
                eprintln!("  {b}");
            }
            failed = true;
        }
    }

    if gate_simd {
        if Device::CpuSimd.is_simd_active() {
            let bad = simd_gate_violations(&report, 1.5);
            if bad.is_empty() {
                println!("simd gate: OK (bin-3 blocked GEMM >= 1.5x scalar)");
            } else {
                eprintln!("simd gate FAILED:");
                for b in &bad {
                    eprintln!("  {b}");
                }
                failed = true;
            }
        } else {
            println!("simd gate: skipped (no AVX2/FMA; cpu_simd degrades to scalar here)");
        }
    }

    if let Some(path) = &check_against {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: BenchReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let bad = regressions(&report, &baseline, 1.5);
        if bad.is_empty() {
            println!(
                "regression gate: OK ({} rows within 1.5x of baseline)",
                report.configs.len()
            );
        } else {
            eprintln!("regression gate FAILED:");
            for b in &bad {
                eprintln!("  {b}");
            }
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return; // gate runs never overwrite the committed baseline
    }

    if failed {
        std::process::exit(1);
    }

    let path = out.unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}
