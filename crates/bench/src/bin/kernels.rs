//! Convolution kernel throughput sweep over the paper's shapes, per
//! compute backend.
//!
//! Benchmarks the four forward paths — direct (`Device::conv2d_forward`),
//! im2col + row GEMM (`conv2d_forward_gemm`), the register-tiled,
//! cache-blocked micro-kernel (`conv2d_forward_blocked`), and the
//! pre-packed-weights variant as the layers actually dispatch it
//! (packed above `PACKED_MIN_OLEN`, blocked-unpacked in the
//! `[GEMM_THRESHOLD, PACKED_MIN_OLEN)` band, direct below; panels
//! packed once outside the timed region as a frozen model would) —
//! across the patch extents the decoder actually sees (16/32/64/128
//! per side: 16x16 patches refined to bins 0–3) and the decoder/scorer
//! channel widths (8/16/64), plus the scorer's full 64x256 LR field.
//! Every configuration runs on **both** backends: the scalar reference
//! plane and the AVX2+FMA vectorized plane.
//!
//! The sweep is what `GEMM_THRESHOLD` and `PACKED_MIN_OLEN` in
//! `adarnet_nn::kernels` are calibrated from: the `sub0_*` probe rows
//! bracket the direct/blocked crossover (between 4 and 16 output
//! pixels) and the packed path's break-even against blocked (packing
//! pays for itself from ~64 output pixels; below that the v1 baseline
//! showed packed 0.65–0.94x blocked, which is why the layers now route
//! that band to blocked-unpacked).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p adarnet-bench --bin kernels                # full sweep -> BENCH_kernels.json
//! cargo run --release -p adarnet-bench --bin kernels -- --smoke     # CI budget, no file written
//! cargo run --release -p adarnet-bench --bin kernels -- --smoke \
//!     --check-against BENCH_kernels.json                            # regression gate (>1.5x fails)
//! cargo run --release -p adarnet-bench --bin kernels -- --gate-simd # SIMD >= 1.5x scalar at bin 3
//! cargo run --release -p adarnet-bench --bin kernels -- --out path  # explicit output path
//! ```
//!
//! Three gates, all ratio-based so they hold on noisy shared machines:
//!
//! * **Packed floor** (always on): the *dispatched* packed path must
//!   reach at least 0.95x blocked throughput on every row in full
//!   mode (0.75x under `--smoke` budgets) — the regression the
//!   `PACKED_MIN_OLEN` routing exists to prevent.
//! * **`--check-against`**: per `(label, backend)` row, the blocked
//!   path must run within 1.5x of the committed baseline.
//! * **`--gate-simd`**: same-run comparison — the SIMD backend's
//!   blocked GFLOP/s must be >= 1.5x scalar on the bin-3 rows (skipped
//!   with a note on hardware without AVX2/FMA, where both planes run
//!   the same scalar micro-kernels).

use std::hint::black_box;
use std::time::Instant;

use adarnet_nn::he_normal;
use adarnet_nn::kernels::{
    pack_weight_panels, packed_panels_len, PackedPanels, GEMM_THRESHOLD, PACKED_MIN_OLEN,
};
use adarnet_nn::Device;
use adarnet_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// One benchmarked (extent, channels, backend) configuration.
#[derive(Debug, Serialize, Deserialize)]
struct ConfigResult {
    /// Square spatial extent per side (bin n of a 16x16 patch -> 16 << n),
    /// except the scorer row which is 64x256.
    label: String,
    /// Backend the row ran on (`cpu_scalar` / `cpu_simd`).
    backend: String,
    /// Input spatial extent.
    h: usize,
    w: usize,
    /// Channel width (input == output channels, 3x3 same-padded).
    channels: usize,
    /// Output pixels per image (`h * w` with same padding) — the quantity
    /// the layers dispatch on.
    o_len: usize,
    /// Seconds per iteration, per path.
    naive_secs: f64,
    gemm_secs: f64,
    blocked_secs: f64,
    /// The dispatched pre-packed path: what a frozen layer runs for
    /// this shape — packed panels above `PACKED_MIN_OLEN` (packed once
    /// outside the timed region), blocked-unpacked in the mid band,
    /// direct below `GEMM_THRESHOLD`.
    packed_secs: f64,
    /// Blocked-path throughput in GFLOP/s (2 * oc * k_len * o_len flops).
    blocked_gflops: f64,
    /// Speedup of the blocked path over the row-GEMM reference.
    blocked_vs_gemm: f64,
    /// Speedup of the dispatched packed path over per-call-packing
    /// blocked. The packed-floor gate holds this >= 0.95 (full mode)
    /// on every row.
    packed_vs_blocked: f64,
}

/// The committed benchmark artifact.
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    /// `full` or `smoke` — smoke numbers are for the regression gate
    /// only and are never written over a full baseline.
    mode: String,
    /// The thresholds compiled into `adarnet_nn::kernels` when this
    /// report was produced.
    gemm_threshold: usize,
    packed_min_olen: usize,
    /// Whether the `cpu_simd` rows actually ran the AVX2+FMA
    /// micro-kernels on the producing machine (false = they degraded
    /// to scalar, so the two backends' rows measure the same code).
    simd_active: bool,
    configs: Vec<ConfigResult>,
}

/// Time `f` adaptively: one probe iteration sizes a batch that targets
/// `budget` seconds, then the batch is timed. Returns secs per iteration.
fn time_secs(budget: f64, mut f: impl FnMut()) -> f64 {
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64().max(1e-7);
    let reps = ((budget / once).ceil() as usize).clamp(1, 10_000);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Minimum of three timing batches. The blocked and packed paths feed
/// ratio gates (packed-floor, `--check-against`, `--gate-simd`), and on
/// a shared host a single batch's run-to-run spread reaches ±7% — the
/// difference between a floor pass and a flaky failure. The minimum is
/// the classical least-interference estimator; the informational naive
/// and row-GEMM columns keep the cheaper single batch.
fn min_time_secs(budget: f64, mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| time_secs(budget, &mut f))
        .fold(f64::INFINITY, f64::min)
}

fn bench_config(
    label: &str,
    dev: Device,
    h: usize,
    w: usize,
    ch: usize,
    budget: f64,
) -> ConfigResult {
    let x = Tensor::<f32>::from_vec(
        Shape::d4(1, ch, h, w),
        (0..ch * h * w)
            .map(|i| ((i as f32) * 0.013).sin())
            .collect(),
    );
    let wt = he_normal(Shape::d4(ch, ch, 3, 3), ch * 9, 7);
    let b = Tensor::<f32>::zeros(Shape::d1(ch));
    let o_len = h * w;
    let k_len = ch * 9;

    let naive_secs = time_secs(budget, || {
        black_box(dev.conv2d_forward(black_box(&x), &wt, &b, 1)).recycle();
    });
    let gemm_secs = time_secs(budget, || {
        black_box(dev.conv2d_forward_gemm(black_box(&x), &wt, &b, 1)).recycle();
    });
    let blocked_secs = min_time_secs(budget, || {
        black_box(dev.conv2d_forward_blocked(black_box(&x), &wt, &b, 1)).recycle();
    });

    // The dispatched frozen-layer path for this shape. Above
    // `PACKED_MIN_OLEN`: pack once, outside the timed region — exactly
    // what a frozen model does at construction — then time the packed
    // forward alone. The mid band times blocked-unpacked (what the
    // layers now run there); below `GEMM_THRESHOLD`, the direct loops.
    let packed_secs = if o_len >= PACKED_MIN_OLEN {
        let mut panels = vec![0.0f32; packed_panels_len(ch, k_len)];
        pack_weight_panels(wt.as_slice(), ch, k_len, &mut panels);
        let packed = PackedPanels {
            data: &panels,
            oc: ch,
            ic: ch,
            kh: 3,
            kw: 3,
        };
        min_time_secs(budget, || {
            black_box(dev.conv2d_forward_packed(black_box(&x), packed, &b, 1)).recycle();
        })
    } else if o_len >= GEMM_THRESHOLD {
        min_time_secs(budget, || {
            black_box(dev.conv2d_forward_blocked(black_box(&x), &wt, &b, 1)).recycle();
        })
    } else {
        min_time_secs(budget, || {
            black_box(dev.conv2d_forward(black_box(&x), &wt, &b, 1)).recycle();
        })
    };

    let flops = 2.0 * ch as f64 * k_len as f64 * o_len as f64;
    ConfigResult {
        label: label.to_string(),
        backend: dev.name().to_string(),
        h,
        w,
        channels: ch,
        o_len,
        naive_secs,
        gemm_secs,
        blocked_secs,
        packed_secs,
        blocked_gflops: flops / blocked_secs / 1e9,
        blocked_vs_gemm: gemm_secs / blocked_secs,
        packed_vs_blocked: blocked_secs / packed_secs,
    }
}

const BACKENDS: [Device; 2] = [Device::CpuScalar, Device::CpuSimd];

fn run_sweep(smoke: bool) -> BenchReport {
    // Per-path, per-config measurement budget. Smoke keeps the whole
    // sweep under a few seconds for CI; full targets stable numbers.
    let budget = if smoke { 0.02 } else { 0.25 };
    let mut shapes: Vec<(String, usize, usize, usize)> = Vec::new();
    // Crossover probes below the smallest paper shape: where the direct
    // path still beats blocked (`GEMM_THRESHOLD` is read off 2x2/4x4)
    // and where packing starts paying for itself (`PACKED_MIN_OLEN`,
    // read off 4x4 vs 8x8).
    for &e in &[2usize, 4, 8] {
        shapes.push((format!("sub0_{e}x{e}_8ch"), e, e, 8));
    }
    // 16x16 patches at bins 0..=3 -> 16/32/64/128 per side.
    for bin in 0..4usize {
        let e = 16 << bin;
        for &ch in &[8usize, 16, 64] {
            shapes.push((format!("bin{bin}_{e}x{e}_{ch}ch"), e, e, ch));
        }
    }
    // The scorer runs on the full LR field, not a patch.
    shapes.push(("scorer_64x256_16ch".to_string(), 64, 256, 16));

    // Interleave backends per shape (scalar then simd on the same
    // warmed caches) so cross-backend ratios cancel machine drift.
    let mut configs = Vec::new();
    for (label, h, w, ch) in &shapes {
        for dev in BACKENDS {
            eprintln!("  running {label} on {} ...", dev.name());
            configs.push(bench_config(label, dev, *h, *w, *ch, budget));
        }
    }

    BenchReport {
        schema: "adarnet-bench-kernels-v2".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        gemm_threshold: GEMM_THRESHOLD,
        packed_min_olen: PACKED_MIN_OLEN,
        simd_active: Device::CpuSimd.is_simd_active(),
        configs,
    }
}

/// Compare `current` against a committed baseline; returns the rows
/// whose blocked path regressed by more than `max_ratio`. Rows are
/// keyed `(label, backend)`; baseline rows without a match (e.g. an
/// older schema) are skipped.
fn regressions(current: &BenchReport, baseline: &BenchReport, max_ratio: f64) -> Vec<String> {
    let mut bad = Vec::new();
    for cur in &current.configs {
        if let Some(base) = baseline
            .configs
            .iter()
            .find(|c| c.label == cur.label && c.backend == cur.backend)
        {
            let ratio = cur.blocked_secs / base.blocked_secs;
            if ratio > max_ratio {
                bad.push(format!(
                    "{} [{}]: blocked path {:.2}x slower than baseline ({:.3e}s vs {:.3e}s)",
                    cur.label, cur.backend, ratio, cur.blocked_secs, base.blocked_secs
                ));
            }
        }
    }
    bad
}

/// The packed-floor gate: the dispatched packed path must not fall
/// below `floor` of blocked throughput on any row. This is the
/// regression `PACKED_MIN_OLEN` routing fixed — packing overhead
/// swamping small GEMMs — so it is asserted on every run.
fn packed_floor_violations(report: &BenchReport, floor: f64) -> Vec<String> {
    report
        .configs
        .iter()
        .filter(|c| c.packed_vs_blocked < floor)
        .map(|c| {
            format!(
                "{} [{}]: dispatched packed path at {:.3}x blocked (floor {floor})",
                c.label, c.backend, c.packed_vs_blocked
            )
        })
        .collect()
}

/// The SIMD gate: same-run blocked GFLOP/s, SIMD vs scalar, on the
/// bin-3 (128x128) rows — the largest decode shapes, where the vector
/// plane's advantage must be unambiguous even on a noisy host.
fn simd_gate_violations(report: &BenchReport, min_speedup: f64) -> Vec<String> {
    let mut bad = Vec::new();
    for cur in report
        .configs
        .iter()
        .filter(|c| c.label.starts_with("bin3_") && c.backend == Device::CpuSimd.name())
    {
        let Some(scalar) = report
            .configs
            .iter()
            .find(|c| c.label == cur.label && c.backend == Device::CpuScalar.name())
        else {
            continue;
        };
        let speedup = cur.blocked_gflops / scalar.blocked_gflops;
        if speedup < min_speedup {
            bad.push(format!(
                "{}: simd {:.2} GFLOP/s vs scalar {:.2} GFLOP/s = {:.2}x (need >= {min_speedup}x)",
                cur.label, cur.blocked_gflops, scalar.blocked_gflops, speedup
            ));
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_simd = args.iter().any(|a| a == "--gate-simd");
    let check_against = args
        .iter()
        .position(|a| a == "--check-against")
        .map(|i| args[i + 1].clone());
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone());

    eprintln!(
        "kernel sweep ({}): naive vs gemm vs blocked vs dispatched-packed, \
         backends {:?}, GEMM_THRESHOLD={}, PACKED_MIN_OLEN={}, simd_active={}",
        if smoke { "smoke" } else { "full" },
        BACKENDS.map(Device::name),
        GEMM_THRESHOLD,
        PACKED_MIN_OLEN,
        Device::CpuSimd.is_simd_active(),
    );
    let report = run_sweep(smoke);

    println!(
        "{:<22} {:<11} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>9} {:>10}",
        "config",
        "backend",
        "o_len",
        "naive s",
        "gemm s",
        "blocked s",
        "packed s",
        "GFLOP/s",
        "vs gemm",
        "vs packed"
    );
    for c in &report.configs {
        println!(
            "{:<22} {:<11} {:>8} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>10.2} {:>8.2}x {:>9.2}x",
            c.label,
            c.backend,
            c.o_len,
            c.naive_secs,
            c.gemm_secs,
            c.blocked_secs,
            c.packed_secs,
            c.blocked_gflops,
            c.blocked_vs_gemm,
            c.packed_vs_blocked
        );
    }

    let mut failed = false;

    // Packed floor: always on. Smoke budgets are noisy on shared
    // 1-core hosts, so the floor loosens there; a full run must show
    // the dispatched packed path essentially never losing to blocked.
    let floor = if smoke { 0.75 } else { 0.95 };
    let bad = packed_floor_violations(&report, floor);
    if bad.is_empty() {
        println!(
            "packed-floor gate: OK (all {} rows >= {floor}x blocked)",
            report.configs.len()
        );
    } else {
        eprintln!("packed-floor gate FAILED:");
        for b in &bad {
            eprintln!("  {b}");
        }
        failed = true;
    }

    if gate_simd {
        if Device::CpuSimd.is_simd_active() {
            let bad = simd_gate_violations(&report, 1.5);
            if bad.is_empty() {
                println!("simd gate: OK (bin-3 blocked GEMM >= 1.5x scalar)");
            } else {
                eprintln!("simd gate FAILED:");
                for b in &bad {
                    eprintln!("  {b}");
                }
                failed = true;
            }
        } else {
            println!("simd gate: skipped (no AVX2/FMA; cpu_simd degrades to scalar here)");
        }
    }

    if let Some(path) = &check_against {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: BenchReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let bad = regressions(&report, &baseline, 1.5);
        if bad.is_empty() {
            println!(
                "regression gate: OK ({} rows within 1.5x of baseline)",
                report.configs.len()
            );
        } else {
            eprintln!("regression gate FAILED:");
            for b in &bad {
                eprintln!("  {b}");
            }
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return; // gate runs never overwrite the committed baseline
    }

    if failed {
        std::process::exit(1);
    }

    let path = out.unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}
