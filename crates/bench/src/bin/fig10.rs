//! Figure 10: converged flow fields (velocity, kinematic pressure,
//! modified eddy viscosity) from ADARNet's mesh vs the AMR solver's mesh,
//! for the cylinder and the non-symmetric NACA1412 airfoil.
//!
//! The paper shows the two solutions are visually indistinguishable; we
//! quantify that with per-variable relative L2 differences on a common
//! uniform sampling, and dump coarse ASCII renderings of the velocity
//! magnitude for eyeballing.
//!
//! Run with: `cargo run --release -p adarnet-bench --bin fig10`

use adarnet_amr::AmrDriver;
use adarnet_bench::{bench_case, case_lr_sample, trained_model, Scale};
use adarnet_cfd::{CaseMesh, RansSolver};
use adarnet_core::framework::LrInput;
use adarnet_core::{run_adarnet_case, run_amr_baseline};
use adarnet_dataset::TestCase;
use adarnet_tensor::Grid2;

fn rel_l2(a: &Grid2<f64>, b: &Grid2<f64>) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    (num / den.max(1e-300)).sqrt()
}

fn ascii_render(g: &Grid2<f64>, rows: usize, cols: usize) -> String {
    let ramp: &[u8] = b" .:-=+*#%@";
    let (lo, hi) = (g.min_value(), g.max_value());
    let span = (hi - lo).max(1e-12);
    let mut out = String::new();
    for r in 0..rows {
        for c in 0..cols {
            let i = r * g.ny() / rows;
            let j = c * g.nx() / cols;
            let t = ((g.get(i, j) - lo) / span * (ramp.len() - 1) as f64) as usize;
            out.push(ramp[t.min(ramp.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let scale = Scale::from_env();
    let trainer = trained_model(scale);
    let driver = AmrDriver {
        max_level: 3,
        theta: 0.5,
        max_rounds: 3,
        balance_jump: Some(1),
        ..AmrDriver::default()
    };

    println!("Figure 10: ADARNet vs AMR solver converged fields\n");
    for tc in [TestCase::Cylinder, TestCase::Naca1412] {
        let case = bench_case(tc, scale);
        let sample = case_lr_sample(tc, scale);

        // LR solve cost (charged to ADARNet's TTC; reused as its input).
        let mesh = CaseMesh::new(
            case.clone(),
            adarnet_amr::RefinementMap::uniform(scale.layout(), 0, 3),
        );
        let mut lr_solver = RansSolver::new(mesh, scale.solver_cfg());
        let lr_stats = lr_solver.solve_to_convergence();
        let lr_field = lr_solver.state.to_tensor(0);
        drop(sample);

        let adarnet = run_adarnet_case(
            &trainer.model,
            &trainer.norm,
            &case,
            &lr_field,
            LrInput {
                seconds: lr_stats.seconds,
                iterations: lr_stats.iterations,
            },
            scale.solver_cfg(),
        );
        let baseline = run_amr_baseline(&case, scale.layout(), scale.solver_cfg(), driver);

        println!("=== {} ===", case.name);
        // Compare on a common uniform sampling at level 1.
        let vars = [
            "U (velocity-x)",
            "V (velocity-y)",
            "p (pressure)",
            "nuTilda",
        ];
        for (name, (fa, fb)) in vars.iter().zip([
            (&adarnet.final_state.u, &baseline.final_state.u),
            (&adarnet.final_state.v, &baseline.final_state.v),
            (&adarnet.final_state.p, &baseline.final_state.p),
            (&adarnet.final_state.nt, &baseline.final_state.nt),
        ]) {
            let ga = fa.to_uniform(1);
            let gb = fb.to_uniform(1);
            println!(
                "  {name:<16} relative L2 difference: {:.3}",
                rel_l2(&ga, &gb)
            );
        }

        // Velocity-magnitude renderings.
        let ua = adarnet.final_state.u.to_uniform(1);
        let ub = baseline.final_state.u.to_uniform(1);
        println!("\n  ADARNet |U| field:");
        print!("{}", indent(&ascii_render(&ua, 8, 48)));
        println!("  AMR solver |U| field:");
        print!("{}", indent(&ascii_render(&ub, 8, 48)));
        println!();
    }
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
