//! Figure 11: grid-convergence study — the quantity of interest (Cf for
//! wall-bounded cases, Cd for body cases) as the maximum refinement level
//! n grows 0..3, for ADARNet's predicted mesh vs the AMR solver's mesh.
//!
//! At n = 0 both start from the same coarse mesh (identical QoI); as n
//! grows, both QoI sequences should converge toward each other — plus the
//! Hoerner experimental Cd reference for the cylinder.
//!
//! Run with: `cargo run --release -p adarnet-bench --bin fig11`

use adarnet_amr::{AmrDriver, RefinementMap};
use adarnet_bench::{bench_case, case_lr_sample, trained_model, Scale};
use adarnet_cfd::{
    drag_coefficient, skin_friction_coefficient, CaseMesh, RansSolver, HOERNER_CYLINDER_CD,
};
use adarnet_core::run_amr_baseline;
use adarnet_dataset::TestCase;

fn main() {
    let scale = Scale::from_env();
    let mut trainer = trained_model(scale);
    let mut solver_cfg = scale.solver_cfg();
    // The convergence study runs 56 solves; cap each a bit tighter.
    solver_cfg.max_iters = solver_cfg.max_iters.min(800);

    println!("Figure 11: QoI vs refinement level n (Cf for cf/fp, Cd for bodies)\n");
    println!(
        "{:<16} {:>2} {:>14} {:>14}",
        "case", "n", "ADARNet", "AMR solver"
    );

    for tc in TestCase::ALL {
        let case = bench_case(tc, scale);
        let sample = case_lr_sample(tc, scale);
        let pred = trainer
            .model
            .predict(&trainer.norm.normalize(&sample.field));
        let full_map = pred.refinement_map(3);

        for n in 0u8..4 {
            // ADARNet's mesh, clamped to max level n (the gradual 4^n x
            // refinement of the study).
            let levels: Vec<u8> = full_map.levels().iter().map(|&l| l.min(n)).collect();
            let a_map = RefinementMap::from_levels(*full_map.layout(), levels, 3);
            let a_mesh = CaseMesh::new(case.clone(), a_map);
            let mut a_solver = RansSolver::new(a_mesh, solver_cfg);
            let _ = a_solver.solve_to_convergence();
            let a_qoi = qoi(tc, &a_solver);

            // AMR solver with max refinement level n.
            let driver = AmrDriver {
                max_level: n,
                theta: 0.5,
                max_rounds: n as usize + 2,
                balance_jump: Some(1),
                ..AmrDriver::default()
            };
            let baseline = run_amr_baseline(&case, scale.layout(), solver_cfg, driver);
            let b_mesh = CaseMesh::new(case.clone(), baseline.outcome.final_map.clone());
            let b_solver = RansSolver::with_state(b_mesh, baseline.final_state.clone(), solver_cfg);
            let b_qoi = qoi(tc, &b_solver);

            println!(
                "{:<16} {:>2} {:>14.6} {:>14.6}",
                tc.label(),
                n,
                a_qoi,
                b_qoi
            );
        }
        if tc == TestCase::Cylinder {
            println!(
                "{:<16}    experimental Cd (Hoerner): {:.3}",
                "", HOERNER_CYLINDER_CD
            );
        }
        println!();
    }
}

fn qoi(tc: TestCase, solver: &RansSolver) -> f64 {
    if tc.uses_drag() {
        drag_coefficient(&solver.state, &solver.mesh)
    } else {
        skin_friction_coefficient(&solver.state, &solver.mesh, 0.95)
    }
}
