//! Figure 1: maximum inference batch size vs target spatial resolution for
//! a SOTA uniform-SR model (SURFNet) under a 16 GB V100 memory budget.
//!
//! Reproduces the figure's content — batch capacity collapsing as the
//! target resolution grows, down to ~2 samples at 1024x1024 — from the
//! activation-memory model in `adarnet_core::memory` (calibration
//! documented there and in EXPERIMENTS.md).
//!
//! Run with: `cargo run --release -p adarnet-bench --bin fig1`

use adarnet_core::memory::{uniform_bytes_per_sample, uniform_max_batch, V100_BYTES};

fn main() {
    println!("Figure 1: max batch size during uniform-SR inference (16 GB budget)");
    println!();
    println!("target resolution   bytes/sample   max batch");
    for side in [128usize, 256, 512, 1024] {
        let cells = side * side;
        println!(
            "{:>10}x{:<6} {:>12.2} MB {:>11}",
            side,
            side,
            uniform_bytes_per_sample(cells) / (1024.0 * 1024.0),
            uniform_max_batch(cells, V100_BYTES)
        );
    }
    println!();
    println!(
        "paper's observation: no more than two samples per batch at 1024x1024 -> {}",
        uniform_max_batch(1024 * 1024, V100_BYTES)
    );
}
