//! Table 1: time-to-convergence (TTC) and iterations-to-convergence (ITC)
//! of ADARNet vs the iterative AMR solver for all seven test cases, with
//! ADARNet's TTC split into lr + inference + physics-solver time.
//!
//! The paper reports 2.6-4.5x speedups; the reproduction target is the
//! *shape*: ADARNet wins on every case because the one-shot mesh skips
//! the solve/assess/refine rounds, and its physics solve starts from a
//! near-converged inference.
//!
//! Run with: `cargo run --release -p adarnet-bench --bin table1`

use adarnet_amr::{AmrDriver, RefinementMap};
use adarnet_bench::{bench_case, trained_model, Scale};
use adarnet_cfd::{CaseMesh, RansSolver};
use adarnet_core::framework::LrInput;
use adarnet_core::{run_adarnet_case, run_amr_baseline};
use adarnet_dataset::TestCase;

fn main() {
    let scale = Scale::from_env();
    let trainer = trained_model(scale);
    let mut solver_cfg = scale.solver_cfg();
    // Shared cap for every solve on both sides; ratios stay meaningful.
    solver_cfg.max_iters = solver_cfg.max_iters.min(2000);
    let driver = AmrDriver {
        max_level: 3,
        theta: 0.5,
        max_rounds: 4,
        balance_jump: Some(1),
        ..AmrDriver::default()
    };

    println!("Table 1: TTC (s) and ITC, AMR solver vs ADARNet\n");
    println!(
        "{:<16} {:>8} {:>8} | {:>8} {:>8}  {:>22}  {:>8}",
        "case", "AMR ITC", "AMR TTC", "ADR ITC", "ADR TTC", "lr + inf + ps (s)", "speedup"
    );

    let mut speedups = Vec::new();
    for tc in TestCase::ALL {
        let case = bench_case(tc, scale);

        // --- LR solve: the input to ADARNet (charged to its TTC). ---
        let lr_mesh = CaseMesh::new(case.clone(), RefinementMap::uniform(scale.layout(), 0, 3));
        let mut lr_solver = RansSolver::new(lr_mesh, solver_cfg);
        let lr_stats = lr_solver.solve_to_convergence();
        let lr_field = lr_solver.state.to_tensor(0);

        // --- ADARNet one-shot pipeline. ---
        let adarnet = run_adarnet_case(
            &trainer.model,
            &trainer.norm,
            &case,
            &lr_field,
            LrInput {
                seconds: lr_stats.seconds,
                iterations: lr_stats.iterations,
            },
            solver_cfg,
        );

        // --- Iterative AMR baseline. ---
        let baseline = run_amr_baseline(&case, scale.layout(), solver_cfg, driver);

        let speedup = baseline.ttc_seconds() / adarnet.ttc_seconds();
        speedups.push(speedup);
        println!(
            "{:<16} {:>8} {:>8.2} | {:>8} {:>8.2}  {:>6.2} + {:>5.3} + {:>6.2}  {:>7.2}x",
            tc.label(),
            baseline.itc(),
            baseline.ttc_seconds(),
            adarnet.itc(),
            adarnet.ttc_seconds(),
            adarnet.lr.seconds,
            adarnet.inference_seconds,
            adarnet.physics.seconds,
            speedup
        );
    }
    let (lo, hi) = speedups
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
    println!("\nspeedup range: {lo:.1}-{hi:.1}x (paper: 2.6-4.5x on a 40-core Xeon)");
}
