//! Table 2: ADARNet vs SURFNet (uniform 64x SR) — inference memory (GB)
//! with the reduction factor "rf", and end-to-end time (inference +
//! physics solve) with the speedup, per test case.
//!
//! The reproduction target: SURFNet's memory is constant (uniform HR,
//! same for every case), while ADARNet's varies with the predicted
//! fine/coarse split; rf lands in the handful-x range and the time
//! speedup is roughly an order of magnitude (paper: 4.4-7.65x memory,
//! 7-28.5x time).
//!
//! Run with: `cargo run --release -p adarnet-bench --bin table2`

use adarnet_amr::RefinementMap;
use adarnet_bench::{bench_case, case_lr_sample, trained_model, Scale};
use adarnet_cfd::{CaseMesh, RansSolver};
use adarnet_core::framework::{prediction_to_state, LrInput};
use adarnet_core::memory::{adarnet_bytes_per_sample, uniform_bytes_per_sample};
use adarnet_core::{run_adarnet_case, SurfNet};
use adarnet_dataset::TestCase;
use std::time::Instant;

const GB: f64 = 1024.0 * 1024.0 * 1024.0;

fn main() {
    let scale = Scale::from_env();
    let trainer = trained_model(scale);
    let mut solver_cfg = scale.solver_cfg();
    // Both pipelines share one cap; SURFNet's uniform max-level solve is
    // the expensive side, which is exactly the point of the comparison.
    solver_cfg.max_iters = solver_cfg.max_iters.min(1500);
    let (h, w) = scale.lr_extent();
    let sr_scale = 8; // 64x SR, as in the paper's comparison
    let mut surfnet = SurfNet::new(sr_scale, 7);
    let uniform_cells = h * sr_scale * w * sr_scale;

    println!("Table 2: ADARNet vs SURFNet at 64x SR\n");
    println!(
        "{:<16} {:>9} {:>9} {:>6} | {:>18} {:>18} {:>8}",
        "case", "SN mem", "ADR mem", "rf", "SN inf+ps (s)", "ADR inf+ps (s)", "speedup"
    );

    let mut rfs = Vec::new();
    let mut speeds = Vec::new();
    for tc in TestCase::ALL {
        let case = bench_case(tc, scale);
        let sample = case_lr_sample(tc, scale);

        // --- ADARNet: one-shot non-uniform SR + physics solve. ---
        let adarnet = run_adarnet_case(
            &trainer.model,
            &trainer.norm,
            &case,
            &sample.field,
            LrInput {
                seconds: 0.0,
                iterations: 0,
            },
            solver_cfg,
        );
        let adr_mem = adarnet_bytes_per_sample(&adarnet.map) / GB;
        let adr_time = adarnet.inference_seconds + adarnet.physics.seconds;

        // --- SURFNet: uniform HR inference + physics solve on the uniform
        // fine mesh (it has no mesh adaptivity). ---
        let t0 = Instant::now();
        let hr = surfnet.predict(&trainer.norm.normalize(&sample.field));
        let sn_inf = t0.elapsed().as_secs_f64();
        let sn_mem = uniform_bytes_per_sample(uniform_cells) / GB;
        // Drive the SURFNet output to convergence on the uniform max-level
        // mesh (every cell HR: the cost of uniform SR downstream too).
        let uniform_map = RefinementMap::uniform(scale.layout(), 3, 3);
        // The conv stack output is in normalized space; denormalize via the
        // shared stats by reusing prediction_to_state machinery: build a
        // state from the HR tensor directly.
        let state = {
            let mut pred_patches = Vec::new();
            let layout = scale.layout();
            for py in 0..layout.npy {
                for px in 0..layout.npx {
                    let (ph3, pw3) = layout.patch_extent(3);
                    pred_patches.push(hr.extract_patch(py * ph3, px * pw3, ph3, pw3));
                }
            }
            let binning = adarnet_core::Binning {
                bin_of_patch: vec![3; layout.num_patches()],
                groups: {
                    let mut g = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
                    g[3] = (0..layout.num_patches()).collect();
                    g
                },
            };
            let pred = adarnet_core::Prediction {
                layout,
                binning,
                patches: pred_patches,
                scores: adarnet_tensor::Tensor::zeros(adarnet_tensor::Shape::d1(
                    layout.num_patches(),
                )),
            };
            prediction_to_state(&pred, &trainer.norm, 3)
        };
        let mesh = CaseMesh::new(case.clone(), uniform_map);
        let mut state = state;
        state.enforce_solid(&mesh);
        let mut sn_solver = RansSolver::with_state(mesh, state, solver_cfg);
        let sn_ps = sn_solver.solve_to_convergence();
        let sn_time = sn_inf + sn_ps.seconds;

        let rf = sn_mem / adr_mem;
        let speedup = sn_time / adr_time;
        rfs.push(rf);
        speeds.push(speedup);
        println!(
            "{:<16} {:>7.2}GB {:>7.2}GB {:>5.1}x | {:>7.3} + {:>8.2} {:>7.3} + {:>8.2} {:>7.1}x",
            tc.label(),
            sn_mem,
            adr_mem,
            rf,
            sn_inf,
            sn_ps.seconds,
            adarnet.inference_seconds,
            adarnet.physics.seconds,
            speedup
        );
    }
    let range = |v: &[f64]| {
        v.iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &x| {
                (a.min(x), b.max(x))
            })
    };
    let (rf_lo, rf_hi) = range(&rfs);
    let (sp_lo, sp_hi) = range(&speeds);
    println!(
        "\nmemory reduction {rf_lo:.1}-{rf_hi:.1}x (paper 4.4-7.65x) | speedup {sp_lo:.1}-{sp_hi:.1}x (paper 7-28.5x)"
    );
}
