//! Observability overhead gate: instrumented vs. bare `infer_batch`.
//!
//! The obs layer promises a near-free record path (striped atomic
//! adds, no locks, no allocation). This bench holds it to that: it
//! times `InferenceEngine::infer_batch` with the obs layer enabled and
//! disabled (`adarnet_obs::set_enabled`), interleaving the two arms
//! rep-for-rep so drift (thermal, cache, scheduler) hits both equally,
//! and takes the *minimum* per arm — the standard estimator for the
//! true cost floor under noise.
//!
//! The instrumented arm runs each rep as a *traced request*: a minted
//! trace is started in the arena, scoped to the thread (so every stage
//! `span!` attaches a span record), then finished and offered to the
//! tail sampler — the full per-request tracing cost, not just the
//! histogram path, must fit the budget.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p adarnet-bench --bin obs_overhead            # measure + report
//! cargo run --release -p adarnet-bench --bin obs_overhead -- --gate  # exit 1 if >3% slower
//! cargo run --release -p adarnet-bench --bin obs_overhead -- --smoke --gate
//! ```
//!
//! `--smoke` shrinks reps/batch for the SKIP_SLOW CI budget. The gate
//! threshold is 3% (`ADARNET_OBS_GATE_PCT` overrides — CI machines
//! with noisy neighbors may need headroom).

use std::hint::black_box;
use std::time::Instant;

use adarnet_core::engine::InferenceEngine;
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig};
use adarnet_tensor::{Shape, Tensor};

fn field(h: usize, w: usize, phase: f32) -> Tensor<f32> {
    Tensor::from_vec(
        Shape::d3(4, h, w),
        (0..4 * h * w)
            .map(|i| ((i as f32) * 0.017 + phase).sin())
            .collect(),
    )
}

/// Mean seconds per `infer_batch` call over `fields`, averaged across
/// `inner` back-to-back calls (averaging inside the sample shrinks
/// scheduler/cache noise before the min-across-reps estimator sees
/// it). When `traced`, every call runs as a full traced request: arena
/// start, thread scope (so stage spans attach), finish, tail-sampler
/// offer — all inside the timed region.
fn time_once(engine: &InferenceEngine, fields: &[Tensor<f32>], inner: usize, traced: bool) -> f64 {
    let start = Instant::now();
    for _ in 0..inner {
        let req = Instant::now();
        let ctx = traced
            .then(adarnet_obs::TraceCtx::mint)
            .filter(|&ctx| adarnet_obs::trace::arena().start(ctx));
        let out = {
            let _scope = ctx.map(adarnet_obs::trace::scope);
            engine.infer_batch(black_box(fields)).expect("inference")
        };
        if let Some(ctx) = ctx {
            adarnet_obs::trace::finish(ctx, req.elapsed().as_nanos() as u64, false);
        }
        for p in out {
            p.recycle();
        }
    }
    start.elapsed().as_secs_f64() / inner as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate = args.iter().any(|a| a == "--gate");
    let threshold_pct: f64 = std::env::var("ADARNET_OBS_GATE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    let (h, w, batch, reps, inner) = if smoke {
        (16, 32, 2, 5, 3)
    } else {
        (16, 64, 4, 7, 3)
    };
    let model = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed: 42,
        ..AdarNetConfig::default()
    });
    let engine = InferenceEngine::new(model, NormStats::identity());
    let fields: Vec<Tensor<f32>> = (0..batch).map(|i| field(h, w, i as f32 * 0.3)).collect();

    eprintln!(
        "obs overhead ({}): infer_batch of {batch} {h}x{w} fields, min of {reps} interleaved reps, gate {threshold_pct:.1}%",
        if smoke { "smoke" } else { "full" },
    );

    // Warm both arms once: pooled buffers, histogram interning, and the
    // decoder's activation caches all settle before anything is timed.
    adarnet_obs::set_enabled(true);
    time_once(&engine, &fields, 1, true);
    adarnet_obs::set_enabled(false);
    time_once(&engine, &fields, 1, false);

    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    for rep in 0..reps {
        // Alternate which arm goes first: any per-rep warm-up penalty
        // (scheduler migration, cache state left by the previous rep)
        // would otherwise land on one arm systematically.
        let (on, off) = if rep % 2 == 0 {
            adarnet_obs::set_enabled(true);
            let on = time_once(&engine, &fields, inner, true);
            adarnet_obs::set_enabled(false);
            let off = time_once(&engine, &fields, inner, false);
            (on, off)
        } else {
            adarnet_obs::set_enabled(false);
            let off = time_once(&engine, &fields, inner, false);
            adarnet_obs::set_enabled(true);
            let on = time_once(&engine, &fields, inner, true);
            (on, off)
        };
        best_on = best_on.min(on);
        best_off = best_off.min(off);
        eprintln!("  rep {rep}: on {on:.4}s, off {off:.4}s");
    }
    adarnet_obs::set_enabled(true);

    let overhead_pct = (best_on / best_off - 1.0) * 100.0;
    println!(
        "obs_overhead: instrumented {best_on:.4}s vs bare {best_off:.4}s -> {overhead_pct:+.2}% overhead"
    );

    if gate {
        if overhead_pct > threshold_pct {
            eprintln!(
                "obs_overhead: FAIL — instrumentation costs {overhead_pct:.2}% (> {threshold_pct:.1}% budget)"
            );
            std::process::exit(1);
        }
        println!("obs_overhead: OK (within {threshold_pct:.1}% budget)");
    }
}
