//! Figure 9: per-patch refinement maps — ADARNet's one-shot prediction vs
//! the iterative AMR solver's final mesh — for the five cases the paper
//! visualizes (channel Re 2.5e3, flat plate Re 1.35e6, cylinder, and both
//! airfoils).
//!
//! Prints the two level maps side by side plus the agreement metrics that
//! quantify the paper's "excellent agreement" claim.
//!
//! Run with: `cargo run --release -p adarnet-bench --bin fig9`
//! (`ADARNET_BENCH_SCALE=full` for the paper-shaped 64-patch layout.)

use adarnet_amr::AmrDriver;
use adarnet_bench::{bench_case, case_lr_sample, trained_model, Scale};
use adarnet_core::run_amr_baseline;
use adarnet_dataset::TestCase;

fn main() {
    let scale = Scale::from_env();
    let mut trainer = trained_model(scale);
    let driver = AmrDriver {
        max_level: 3,
        theta: 0.5,
        max_rounds: 4,
        balance_jump: Some(1),
        ..AmrDriver::default()
    };

    let cases = [
        TestCase::ChannelInt,
        TestCase::FlatPlateExt,
        TestCase::Cylinder,
        TestCase::Naca1412,
        TestCase::Naca0012,
    ];

    println!("Figure 9: refinement maps (digits are levels 0-3)\n");
    for tc in cases {
        let case = bench_case(tc, scale);
        let sample = case_lr_sample(tc, scale);
        let pred = trainer
            .model
            .predict(&trainer.norm.normalize(&sample.field));
        let adarnet_map = pred.refinement_map(3);

        let baseline = run_amr_baseline(&case, scale.layout(), scale.solver_cfg(), driver);
        let amr_map = &baseline.outcome.final_map;

        println!("=== {} ===", case.name);
        let right_header = format!("AMR solver ({} rounds)", baseline.outcome.rounds.len());
        println!(
            "{:<w$}  {}",
            "ADARNet (one-shot)",
            right_header,
            w = scale.layout().npx.max(18)
        );
        let left: Vec<String> = adarnet_map.ascii().lines().map(String::from).collect();
        let right: Vec<String> = amr_map.ascii().lines().map(String::from).collect();
        for (l, r) in left.iter().zip(&right) {
            println!("{:<w$}  {}", l, r, w = scale.layout().npx.max(18));
        }
        println!(
            "agreement {:.0}% | mean level distance {:.2} | active cells {} vs {}\n",
            100.0 * adarnet_map.agreement(amr_map),
            adarnet_map.mean_level_distance(amr_map),
            adarnet_map.active_cells(),
            amr_map.active_cells(),
        );
    }
}
