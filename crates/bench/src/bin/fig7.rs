//! Figures 7 and 8: the training-geometry family (ellipses with tunable
//! aspect ratio, angle of attack, and Reynolds number) and the three
//! unseen test geometries (cylinder, NACA0012, NACA1412).
//!
//! Prints the parametrization the dataset generator sweeps, plus geometric
//! diagnostics (bounding boxes, frontal heights, solid fractions on the
//! quick-scale mesh) for every body.
//!
//! Run with: `cargo run --release -p adarnet-bench --bin fig7`

use adarnet_amr::RefinementMap;
use adarnet_bench::Scale;
use adarnet_cfd::{CaseConfig, CaseMesh};
use adarnet_dataset::{ellipse_training_configs, ELLIPSE_ASPECTS};

fn body_stats(case: &CaseConfig, scale: Scale) -> (f64, f64, f64) {
    let body = case.body.as_ref().expect("body case");
    let (xmin, ymin, xmax, ymax) = body.bbox();
    let mesh = CaseMesh::new(case.clone(), RefinementMap::uniform(scale.layout(), 0, 3));
    let solid_frac = 1.0 - mesh.fluid_cells() as f64 / mesh.active_cells() as f64;
    (xmax - xmin, ymax - ymin, solid_frac)
}

fn main() {
    let scale = Scale::from_env();

    println!("Figure 7: ellipse training family (\u{00a7}4.1)");
    println!("  aspect ratios: {ELLIPSE_ASPECTS:?}");
    println!("  angle of attack / pitch: [-2\u{00b0}, 6\u{00b0}], Re in [5e4, 9e4]\n");
    println!("aspect  chord(m)  height(m)  solid-frac(LR mesh)");
    for &aspect in &ELLIPSE_ASPECTS {
        let case = CaseConfig::ellipse(aspect, 0.0, 7e4);
        let (chord, height, frac) = body_stats(&case, scale);
        println!(
            "{aspect:>6}  {chord:>8.3}  {height:>9.3}  {:>18.2}%",
            100.0 * frac
        );
    }

    println!("\nsample of the swept training configurations:");
    for (aspect, alpha, re) in ellipse_training_configs(8) {
        println!("  aspect {aspect:<5} alpha {alpha:>6.2} deg  Re {re:>9.0}");
    }

    println!("\nFigure 8: unseen test geometries (\u{00a7}5)");
    println!("geometry       chord(m)  height(m)  solid-frac");
    for case in [
        CaseConfig::cylinder(1e5),
        CaseConfig::naca0012(2.5e4),
        CaseConfig::naca1412(2.5e4),
    ] {
        let (chord, height, frac) = body_stats(&case, scale);
        let name = case.name.split(' ').next().unwrap_or("?").to_string();
        println!(
            "{name:<14} {chord:>8.3}  {height:>9.3}  {:>10.2}%",
            100.0 * frac
        );
    }
    println!(
        "\nnote: the NACA1412's camber (nonzero height asymmetry) is the unseen\n\
         feature the paper highlights; the symmetric 0012 and the cylinder\n\
         stress shape generalization only."
    );
}
