//! RAII tracing spans: `obs::span!("decode", bin = n)` times a scope,
//! records the duration (nanoseconds) into the histogram
//! `{name}_ns` and appends a [`flight`](crate::flight) event so the
//! flight recorder can replay the last moments before a dump.
//!
//! Each `span!` call site owns a `static` [`SpanSite`] whose histogram
//! handle is resolved once (one registry lookup + one allocation on
//! first use); after that, entering and dropping a span touches only
//! atomics and a `Mutex`-guarded ring slot — no allocation, in keeping
//! with the zero-alloc hot-path contract.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::flight::{self, EventKind};
use crate::metrics::{registry, Histogram};

/// Per-call-site state for a `span!` invocation: the span name and the
/// lazily resolved duration histogram (`{name}_ns`).
pub struct SpanSite {
    name: &'static str,
    hist: OnceLock<Arc<Histogram>>,
}

impl SpanSite {
    /// Const constructor so `span!` can place sites in `static`s.
    pub const fn new(name: &'static str) -> SpanSite {
        SpanSite {
            name,
            hist: OnceLock::new(),
        }
    }

    /// Span name (also the flight-event name).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn histogram(&self) -> &Arc<Histogram> {
        self.hist
            .get_or_init(|| registry().histogram(&format!("{}_ns", self.name)))
    }

    /// Enter the span with no structured field.
    pub fn enter(&'static self) -> SpanGuard {
        self.enter_with("", 0)
    }

    /// Enter the span carrying one structured `field = value` pair
    /// (recorded on the flight event, not the histogram).
    pub fn enter_with(&'static self, field: &'static str, value: u64) -> SpanGuard {
        SpanGuard {
            site: self,
            field,
            value,
            start: crate::enabled().then(Instant::now),
        }
    }
}

/// Guard returned by [`SpanSite::enter`]; records on drop.
pub struct SpanGuard {
    site: &'static SpanSite,
    field: &'static str,
    value: u64,
    /// `None` when the obs layer was disabled at entry — the drop then
    /// records nothing, so disabled spans cost two branches total.
    start: Option<Instant>,
}

impl SpanGuard {
    /// Elapsed time so far (`None` if the span is disabled).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_nanos() as u64)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let ns = start.elapsed().as_nanos() as u64;
        self.site.histogram().record(ns);
        flight::recorder().record(EventKind::Span, self.site.name, self.field, self.value, ns);
        // Attach to the active trace, if one is scoped to this thread
        // — for untraced work this is the single `None` branch the
        // overhead budget allows.
        if let Some(ctx) = crate::trace::active() {
            crate::trace::arena().record(ctx, self.site.name, ns, self.field, self.value);
        }
    }
}

/// Time a scope into the histogram `{name}_ns` and the flight recorder.
///
/// ```
/// {
///     let _g = adarnet_obs::span!("stage_decoder", bin = 3u64);
///     // ... work ...
/// } // duration recorded here
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static SITE: $crate::span::SpanSite = $crate::span::SpanSite::new($name);
        SITE.enter()
    }};
    ($name:literal, $field:ident = $value:expr) => {{
        static SITE: $crate::span::SpanSite = $crate::span::SpanSite::new($name);
        SITE.enter_with(stringify!($field), ($value) as u64)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_duration_and_flight_event() {
        let _g = crate::testutil::shared();
        {
            let _g = crate::span!("obs_test_span", bin = 2u64);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = registry().snapshot();
        let h = snap.histogram("obs_test_span_ns").expect("histogram");
        assert!(h.count >= 1);
        assert!(h.max >= 1_000_000, "slept 1ms, recorded {}ns", h.max);
        let ev = crate::flight::recorder()
            .recent()
            .into_iter()
            .rev()
            .find(|e| e.name == "obs_test_span")
            .expect("flight event");
        assert_eq!(ev.field, "bin");
        assert_eq!(ev.value, 2);
        assert!(ev.dur_ns >= 1_000_000);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = crate::testutil::exclusive();
        let before = registry().histogram("obs_gated_span_ns").count();
        crate::set_enabled(false);
        {
            let g = crate::span!("obs_gated_span");
            assert!(g.elapsed_ns().is_none());
        }
        crate::set_enabled(true);
        assert_eq!(registry().histogram("obs_gated_span_ns").count(), before);
    }
}
