//! Per-request distributed tracing: trace contexts, a bounded span
//! arena, and a tail sampler (DESIGN.md §16).
//!
//! The aggregate layers ([`metrics`](crate::metrics), [`span`](crate::span),
//! [`flight`](crate::flight)) answer "how slow is the fleet"; this
//! module answers "*which* request was slow and *where* its time
//! went". Three pieces:
//!
//! 1. [`TraceCtx`] — a 64-bit trace id plus the current parent span
//!    id, carried *by value* through the request path (submit options,
//!    queue jobs, the wire protocol's optional trace-id field).
//! 2. [`TraceArena`] — a bounded arena of in-flight traces. A slot is
//!    claimed per trace (atomic id probe, per-slot lock for the span
//!    list — the same slot discipline as the flight recorder's ring),
//!    spans are appended two-phase ([`TraceArena::begin`] allocates a
//!    span id so children can parent under it before the duration is
//!    known, [`TraceArena::commit`] fills it in), and
//!    [`TraceArena::finish`] extracts the tree. Laggard commits from a
//!    request that already finished hit a trace-id mismatch and drop —
//!    the model checker's trace suite proves a snapshot never contains
//!    a torn (uncommitted or cross-trace) span.
//! 3. [`TailSampler`] — keeps only the interesting finished traces:
//!    the N slowest per window of offers plus every errored/rejected
//!    trace in a newest-wins ring, exactly the flight recorder's
//!    eviction idiom lifted from events to whole traces.
//!
//! Cost contract: a request with no trace context pays **one branch**
//! per span site (a thread-local load that reads `None`); this is what
//! keeps the `obs_overhead` gate under its 3% budget with tracing
//! compiled in and the sampler live. Traced requests pay one
//! uncontended per-slot lock per span — the same class of cost the
//! flight recorder already charges every span drop.

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Spans retained per trace; later spans are counted as dropped.
pub const MAX_SPANS_PER_TRACE: usize = 32;
/// In-flight trace slots in the global arena (must comfortably exceed
/// the serve queue depth so queued-but-traced requests keep their
/// slots).
pub const ARENA_TRACES: usize = 256;
/// Slowest traces retained per sampling window.
pub const SLOW_RETAIN: usize = 8;
/// Errored/rejected traces retained (newest-wins ring).
pub const ERROR_RETAIN: usize = 32;
/// Offers per tail-sampling window.
pub const SAMPLE_WINDOW: u64 = 512;

/// A trace identity carried by value through the request path: the
/// 64-bit trace id (nonzero; 0 means "untraced" on the wire) and the
/// span id acting as parent for spans recorded under this context
/// (0 = the trace root).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Nonzero trace identity, stable across the wire.
    pub trace_id: u64,
    /// Parent span id for spans recorded under this context.
    pub span_id: u64,
}

/// splitmix64 — the standard 64-bit bit-mixer, used to spread minted
/// trace ids so `trace_id % slots` probes the arena uniformly.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceCtx {
    /// Mint a fresh root context with a process-unique nonzero trace
    /// id (a counter mixed with the process start time, so ids differ
    /// across restarts).
    pub fn mint() -> TraceCtx {
        static SALT: OnceLock<u64> = OnceLock::new();
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let salt = *SALT.get_or_init(|| {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5eed)
        });
        loop {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let id = splitmix64(n ^ salt);
            if id != 0 {
                return TraceCtx {
                    trace_id: id,
                    span_id: 0,
                };
            }
        }
    }

    /// Adopt a trace id received on the wire (`0` = untraced).
    pub fn from_wire(trace_id: u64) -> Option<TraceCtx> {
        (trace_id != 0).then_some(TraceCtx {
            trace_id,
            span_id: 0,
        })
    }

    /// Re-parent: the same trace with spans now attaching under
    /// `span_id`.
    pub fn child(self, span_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id,
        }
    }
}

/// One completed span inside a finished trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Dense per-trace span id (1-based; 0 is the trace root).
    pub span_id: u64,
    /// Parent span id (0 = direct child of the trace root).
    pub parent: u64,
    /// Span site name (the `span!` literal).
    pub name: &'static str,
    /// Start offset from trace start.
    pub start_rel_ns: u64,
    /// Span duration.
    pub dur_ns: u64,
    /// Optional structured field name (`""` = none).
    pub field: &'static str,
    /// Structured field value.
    pub value: u64,
}

/// A span that has been [`begun`](TraceArena::begin) but not yet
/// committed: carries the allocated span id so children can parent
/// under it before the duration is known.
#[derive(Debug, Clone, Copy)]
pub struct PendingSpan {
    trace_id: u64,
    slot: usize,
    idx: usize,
    /// The allocated span id, for deriving child contexts.
    pub span_id: u64,
}

/// In-flight state behind one arena slot's lock.
struct ActiveTrace {
    trace_id: u64,
    started: Instant,
    started_unix_us: u64,
    next_span_id: u64,
    /// `(record, committed)` in begin order; uncommitted records never
    /// leave the slot.
    spans: Vec<(SpanRec, bool)>,
    dropped: u64,
}

struct Slot {
    /// Owning trace id, 0 = free. A lock-free probe key only; the
    /// lock below is the arbiter.
    id: AtomicU64,
    inner: Mutex<Option<ActiveTrace>>,
}

/// Bounded arena of in-flight traces (see module docs).
pub struct TraceArena {
    slots: Vec<Slot>,
    spans_per_trace: usize,
}

impl TraceArena {
    /// Arena with `traces` slots of up to `spans_per_trace` spans each
    /// (both clamped to at least 1).
    pub fn with_capacity(traces: usize, spans_per_trace: usize) -> TraceArena {
        TraceArena {
            slots: (0..traces.max(1))
                .map(|_| Slot {
                    id: AtomicU64::new(0),
                    inner: Mutex::new(None),
                })
                .collect(),
            spans_per_trace: spans_per_trace.max(1),
        }
    }

    fn home(&self, trace_id: u64) -> usize {
        (trace_id % self.slots.len() as u64) as usize
    }

    fn lock(&self, slot: usize) -> MutexGuard<'_, Option<ActiveTrace>> {
        self.slots[slot]
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Claim a slot for `ctx`'s trace. Returns `false` when the arena
    /// is saturated or the id is already in flight — the request then
    /// proceeds untraced (its spans drop on the id probe).
    pub fn start(&self, ctx: TraceCtx) -> bool {
        if !crate::enabled() || ctx.trace_id == 0 {
            return false;
        }
        let n = self.slots.len();
        let h = self.home(ctx.trace_id);
        let mut free = None;
        for off in 0..n {
            let i = (h + off) % n;
            match self.slots[i].id.load(Ordering::Relaxed) {
                0 if free.is_none() => free = Some(i),
                id if id == ctx.trace_id => return false,
                _ => {}
            }
        }
        // Probe chose a candidate; the slot lock arbitrates racing
        // claims (a loser re-probes nothing — it just fails and the
        // request runs untraced, which the saturation counter records).
        if let Some(i) = free {
            let mut g = self.lock(i);
            if g.is_none() {
                *g = Some(ActiveTrace {
                    trace_id: ctx.trace_id,
                    started: Instant::now(),
                    started_unix_us: SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| d.as_micros() as u64)
                        .unwrap_or(0),
                    next_span_id: 1,
                    spans: Vec::with_capacity(self.spans_per_trace),
                    dropped: 0,
                });
                self.slots[i].id.store(ctx.trace_id, Ordering::Release);
                return true;
            }
        }
        crate::counter!("trace_arena_full_total").inc();
        false
    }

    /// Find the slot owning `trace_id` (probe from its home slot).
    fn find(&self, trace_id: u64) -> Option<usize> {
        if trace_id == 0 {
            return None;
        }
        let n = self.slots.len();
        let h = self.home(trace_id);
        (0..n)
            .map(|off| (h + off) % n)
            .find(|&i| self.slots[i].id.load(Ordering::Acquire) == trace_id)
    }

    /// Phase one of recording a span: allocate its span id and a
    /// record slot (parented under `ctx.span_id`). Returns `None` when
    /// the trace is not in flight or its span budget is spent.
    pub fn begin(&self, ctx: TraceCtx, name: &'static str) -> Option<PendingSpan> {
        let slot = self.find(ctx.trace_id)?;
        let mut g = self.lock(slot);
        let t = g.as_mut().filter(|t| t.trace_id == ctx.trace_id)?;
        if t.spans.len() >= self.spans_per_trace {
            t.dropped += 1;
            drop(g);
            crate::counter!("trace_spans_dropped_total").inc();
            return None;
        }
        let span_id = t.next_span_id;
        t.next_span_id += 1;
        let idx = t.spans.len();
        let start_rel_ns = t.started.elapsed().as_nanos() as u64;
        t.spans.push((
            SpanRec {
                span_id,
                parent: ctx.span_id,
                name,
                start_rel_ns,
                dur_ns: 0,
                field: "",
                value: 0,
            },
            false,
        ));
        Some(PendingSpan {
            trace_id: ctx.trace_id,
            slot,
            idx,
            span_id,
        })
    }

    /// Phase two: fill in the duration and structured field, making
    /// the span visible to [`TraceArena::finish`]. A laggard commit
    /// (its trace already finished, the slot possibly re-claimed) is
    /// dropped on the trace-id / span-id check; returns whether the
    /// span landed.
    pub fn commit(&self, p: PendingSpan, dur_ns: u64, field: &'static str, value: u64) -> bool {
        if self.slots[p.slot].id.load(Ordering::Acquire) != p.trace_id {
            return false;
        }
        let mut g = self.lock(p.slot);
        let Some(t) = g.as_mut().filter(|t| t.trace_id == p.trace_id) else {
            return false;
        };
        match t.spans.get_mut(p.idx) {
            Some((rec, committed)) if rec.span_id == p.span_id => {
                rec.dur_ns = dur_ns;
                rec.field = field;
                rec.value = value;
                *committed = true;
                true
            }
            _ => false,
        }
    }

    /// Record a span whose duration is already known (begin + commit,
    /// with the start back-dated by `dur_ns`). Returns the span id.
    pub fn record(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        dur_ns: u64,
        field: &'static str,
        value: u64,
    ) -> Option<u64> {
        let p = self.begin(ctx, name)?;
        {
            let mut g = self.lock(p.slot);
            if let Some(t) = g.as_mut().filter(|t| t.trace_id == p.trace_id) {
                if let Some((rec, _)) = t.spans.get_mut(p.idx) {
                    rec.start_rel_ns = rec.start_rel_ns.saturating_sub(dur_ns);
                }
            }
        }
        self.commit(p, dur_ns, field, value).then_some(p.span_id)
    }

    /// Close the trace: extract the committed spans, free the slot.
    /// `None` when the trace was never started (or already finished).
    pub fn finish(&self, ctx: TraceCtx, e2e_ns: u64, error: bool) -> Option<FinishedTrace> {
        let slot = self.find(ctx.trace_id)?;
        let mut g = self.lock(slot);
        if g.as_ref().is_none_or(|t| t.trace_id != ctx.trace_id) {
            return None;
        }
        let t = g.take()?;
        self.slots[slot].id.store(0, Ordering::Release);
        drop(g);
        Some(FinishedTrace {
            trace_id: t.trace_id,
            started_unix_us: t.started_unix_us,
            e2e_ns,
            error,
            dropped_spans: t.dropped,
            spans: t
                .spans
                .into_iter()
                .filter_map(|(rec, committed)| committed.then_some(rec))
                .collect(),
        })
    }

    /// Number of traces currently holding slots.
    pub fn in_flight(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.id.load(Ordering::Relaxed) != 0)
            .count()
    }
}

/// A completed trace: its identity, end-to-end latency, error flag,
/// and the committed span records (begin order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedTrace {
    /// Trace identity (matches the wire field).
    pub trace_id: u64,
    /// Wall-clock start (microseconds since the Unix epoch).
    pub started_unix_us: u64,
    /// End-to-end latency as recorded by the closer.
    pub e2e_ns: u64,
    /// Whether the request errored or was rejected.
    pub error: bool,
    /// Spans that were begun but did not fit the per-trace budget.
    pub dropped_spans: u64,
    /// Committed spans, in begin order.
    pub spans: Vec<SpanRec>,
}

impl FinishedTrace {
    /// A complete span tree: every parent id is 0 or a span in the
    /// set, and nothing was dropped.
    pub fn is_complete(&self) -> bool {
        self.dropped_spans == 0
            && self
                .spans
                .iter()
                .all(|s| s.parent == 0 || self.spans.iter().any(|p| p.span_id == s.parent))
    }

    /// One JSON object (span names come from `span!` literals, so no
    /// escaping is needed).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"trace_id\":\"{:016x}\",\"started_unix_us\":{},\"e2e_ns\":{},\"error\":{},\
             \"complete\":{},\"dropped_spans\":{},\"spans\":[",
            self.trace_id,
            self.started_unix_us,
            self.e2e_ns,
            self.error,
            self.is_complete(),
            self.dropped_spans
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"span_id\":{},\"parent\":{},\"name\":\"{}\",\"start_rel_ns\":{},\
                 \"dur_ns\":{},\"field\":\"{}\",\"value\":{}}}",
                s.span_id, s.parent, s.name, s.start_rel_ns, s.dur_ns, s.field, s.value
            ));
        }
        out.push_str("]}");
        out
    }

    /// Indented tree rendering for `net-serve trace-dump`.
    pub fn render_tree(&self) -> String {
        fn walk(trace: &FinishedTrace, parent: u64, depth: usize, out: &mut String) {
            for s in trace.spans.iter().filter(|s| s.parent == parent) {
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&format!(
                    "{} {:.3}ms (+{:.3}ms)",
                    s.name,
                    s.dur_ns as f64 / 1e6,
                    s.start_rel_ns as f64 / 1e6
                ));
                if !s.field.is_empty() {
                    out.push_str(&format!(" {}={}", s.field, s.value));
                }
                out.push('\n');
                if depth < MAX_SPANS_PER_TRACE {
                    walk(trace, s.span_id, depth + 1, out);
                }
            }
        }
        let mut out = format!(
            "trace {:016x}: e2e {:.3}ms{}{}\n",
            self.trace_id,
            self.e2e_ns as f64 / 1e6,
            if self.error { " ERROR" } else { "" },
            if self.is_complete() {
                ""
            } else {
                " (incomplete)"
            }
        );
        walk(self, 0, 0, &mut out);
        out
    }
}

/// A finished trace held by the sampler, tagged with the window and
/// offer sequence that admitted it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainedTrace {
    /// Which sampling window admitted the trace.
    pub window: u64,
    /// Global offer sequence number (dense from 0).
    pub offer_seq: u64,
    /// The trace itself.
    pub trace: FinishedTrace,
}

struct SamplerState {
    offers: u64,
    window_id: u64,
    slow: Vec<RetainedTrace>,
    slow_prev: Vec<RetainedTrace>,
    errors: VecDeque<RetainedTrace>,
}

/// Tail sampler: admit every finished trace, retain only the
/// interesting ones (see module docs). One short lock per request
/// completion — off the per-span path entirely.
pub struct TailSampler {
    state: Mutex<SamplerState>,
    slow_cap: usize,
    error_cap: usize,
    window: u64,
}

impl TailSampler {
    /// Sampler retaining the `slow_cap` slowest per `window` offers
    /// and the last `error_cap` errored traces.
    pub fn new(slow_cap: usize, error_cap: usize, window: u64) -> TailSampler {
        TailSampler {
            state: Mutex::new(SamplerState {
                offers: 0,
                window_id: 0,
                slow: Vec::new(),
                slow_prev: Vec::new(),
                errors: VecDeque::new(),
            }),
            slow_cap: slow_cap.max(1),
            error_cap: error_cap.max(1),
            window: window.max(1),
        }
    }

    fn locked(&self) -> MutexGuard<'_, SamplerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Offer a finished trace; returns whether it was retained.
    ///
    /// Retention: errored traces always land in the error ring (oldest
    /// evicted — newest wins); any trace strictly slower than the
    /// current window's fastest retained slow-trace displaces it. A
    /// full window rolls the slow set into the "previous window" shelf
    /// so a scrape right after a roll still sees the tail.
    pub fn offer(&self, t: FinishedTrace) -> bool {
        let mut s = self.locked();
        let seq = s.offers;
        s.offers += 1;
        let window_id = seq / self.window;
        if window_id != s.window_id {
            s.window_id = window_id;
            s.slow_prev = std::mem::take(&mut s.slow);
        }
        let mut retained = false;
        if t.error {
            if s.errors.len() >= self.error_cap {
                s.errors.pop_front();
            }
            s.errors.push_back(RetainedTrace {
                window: window_id,
                offer_seq: seq,
                trace: t.clone(),
            });
            retained = true;
        }
        if s.slow.len() < self.slow_cap {
            s.slow.push(RetainedTrace {
                window: window_id,
                offer_seq: seq,
                trace: t,
            });
            retained = true;
        } else if let Some(min_idx) = (0..s.slow.len()).min_by_key(|&i| {
            (
                s.slow[i].trace.e2e_ns,
                std::cmp::Reverse(s.slow[i].offer_seq),
            )
        }) {
            if t.e2e_ns > s.slow[min_idx].trace.e2e_ns {
                s.slow[min_idx] = RetainedTrace {
                    window: window_id,
                    offer_seq: seq,
                    trace: t,
                };
                retained = true;
            }
        }
        if retained {
            drop(s);
            crate::counter!("trace_retained_total").inc();
        }
        retained
    }

    /// Everything currently retained: error ring (oldest first), then
    /// the previous window's slow set, then the current window's,
    /// each by offer order.
    pub fn snapshot(&self) -> Vec<RetainedTrace> {
        let s = self.locked();
        let mut out: Vec<RetainedTrace> = s.errors.iter().cloned().collect();
        let mut slow: Vec<RetainedTrace> =
            s.slow_prev.iter().chain(s.slow.iter()).cloned().collect();
        slow.sort_by_key(|r| r.offer_seq);
        out.extend(slow);
        out
    }

    /// Total traces offered so far.
    pub fn offers(&self) -> u64 {
        self.locked().offers
    }

    /// The retained traces as a JSON document (served on `/traces`).
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = format!(
            "{{\"offers\":{},\"retained\":{},\"traces\":[",
            self.offers(),
            snap.len()
        );
        for (i, r) in snap.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"window\":{},\"offer_seq\":{},\"trace\":{}}}",
                r.window,
                r.offer_seq,
                r.trace.to_json()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The process-wide trace arena.
pub fn arena() -> &'static TraceArena {
    static ARENA: OnceLock<TraceArena> = OnceLock::new();
    ARENA.get_or_init(|| TraceArena::with_capacity(ARENA_TRACES, MAX_SPANS_PER_TRACE))
}

/// The process-wide tail sampler.
pub fn sampler() -> &'static TailSampler {
    static SAMPLER: OnceLock<TailSampler> = OnceLock::new();
    SAMPLER.get_or_init(|| TailSampler::new(SLOW_RETAIN, ERROR_RETAIN, SAMPLE_WINDOW))
}

/// Finish `ctx` in the global arena and offer it to the global
/// sampler. Returns whether the trace was retained.
pub fn finish(ctx: TraceCtx, e2e_ns: u64, error: bool) -> bool {
    match arena().finish(ctx, e2e_ns, error) {
        Some(t) => sampler().offer(t),
        None => false,
    }
}

thread_local! {
    static ACTIVE: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The thread's active trace context, if a [`scope`] is open. This is
/// the one branch an untraced request pays per span site.
#[inline]
pub fn active() -> Option<TraceCtx> {
    ACTIVE.with(|c| c.get())
}

/// RAII guard restoring the previous thread-local context on drop.
pub struct TraceScope {
    prev: Option<TraceCtx>,
    /// `!Send`: the guard must drop on the thread that opened it.
    _pin: PhantomData<*const ()>,
}

/// Make `ctx` the thread's active trace until the guard drops: every
/// `span!` site entered on this thread attaches its record to the
/// trace (parented under `ctx.span_id`) in addition to its histogram.
pub fn scope(ctx: TraceCtx) -> TraceScope {
    let prev = ACTIVE.with(|c| c.replace(Some(ctx)));
    TraceScope {
        prev,
        _pin: PhantomData,
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        ACTIVE.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(e2e: u64, error: bool) -> FinishedTrace {
        FinishedTrace {
            trace_id: e2e.max(1),
            started_unix_us: 0,
            e2e_ns: e2e,
            error,
            dropped_spans: 0,
            spans: Vec::new(),
        }
    }

    #[test]
    fn mint_is_unique_and_nonzero() {
        let a = TraceCtx::mint();
        let b = TraceCtx::mint();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.span_id, 0);
    }

    #[test]
    fn from_wire_rejects_zero() {
        assert!(TraceCtx::from_wire(0).is_none());
        assert_eq!(TraceCtx::from_wire(7).unwrap().trace_id, 7);
    }

    #[test]
    fn arena_roundtrip_builds_a_tree() {
        let _g = crate::testutil::shared();
        let arena = TraceArena::with_capacity(4, 8);
        let ctx = TraceCtx::mint();
        assert!(arena.start(ctx));
        assert_eq!(arena.in_flight(), 1);
        let infer = arena.begin(ctx, "serve_infer").unwrap();
        let child = ctx.child(infer.span_id);
        let decode = arena.record(child, "stage_decoder", 50, "bin", 2).unwrap();
        assert!(arena.commit(infer, 120, "batch", 1));
        let fin = arena.finish(ctx, 200, false).unwrap();
        assert_eq!(arena.in_flight(), 0);
        assert_eq!(fin.spans.len(), 2);
        assert!(fin.is_complete());
        let d = fin.spans.iter().find(|s| s.span_id == decode).unwrap();
        assert_eq!(d.parent, infer.span_id);
        assert_eq!(
            (d.name, d.field, d.value, d.dur_ns),
            ("stage_decoder", "bin", 2, 50)
        );
        let json = fin.to_json();
        assert!(json.contains("\"name\":\"stage_decoder\""));
        assert!(json.contains("\"complete\":true"));
        assert!(fin.render_tree().contains("stage_decoder"));
    }

    #[test]
    fn uncommitted_spans_never_leak() {
        let _g = crate::testutil::shared();
        let arena = TraceArena::with_capacity(2, 4);
        let ctx = TraceCtx::mint();
        assert!(arena.start(ctx));
        let _pending = arena.begin(ctx, "serve_infer").unwrap();
        let fin = arena.finish(ctx, 10, false).unwrap();
        assert!(fin.spans.is_empty(), "torn span leaked: {:?}", fin.spans);
    }

    #[test]
    fn laggard_commit_after_finish_is_dropped() {
        let _g = crate::testutil::shared();
        let arena = TraceArena::with_capacity(1, 4);
        let a = TraceCtx::mint();
        assert!(arena.start(a));
        let pending = arena.begin(a, "serve_infer").unwrap();
        arena.finish(a, 10, false).unwrap();
        // Slot re-claimed by another trace; the laggard must not land.
        let b = TraceCtx::mint();
        assert!(arena.start(b));
        assert!(!arena.commit(pending, 99, "", 0));
        let fin = arena.finish(b, 20, false).unwrap();
        assert!(fin.spans.is_empty());
    }

    #[test]
    fn arena_saturation_and_duplicate_ids_fail_start() {
        let _g = crate::testutil::shared();
        let arena = TraceArena::with_capacity(1, 4);
        let a = TraceCtx::mint();
        assert!(arena.start(a));
        assert!(!arena.start(a), "duplicate id must not double-claim");
        assert!(!arena.start(TraceCtx::mint()), "arena is full");
        arena.finish(a, 1, false).unwrap();
        assert!(arena.start(TraceCtx::mint()));
    }

    #[test]
    fn span_budget_is_enforced() {
        let _g = crate::testutil::shared();
        let arena = TraceArena::with_capacity(1, 2);
        let ctx = TraceCtx::mint();
        assert!(arena.start(ctx));
        assert!(arena.record(ctx, "stage_decoder", 1, "", 0).is_some());
        assert!(arena.record(ctx, "stage_decoder", 1, "", 0).is_some());
        assert!(arena.record(ctx, "stage_decoder", 1, "", 0).is_none());
        let fin = arena.finish(ctx, 5, false).unwrap();
        assert_eq!(fin.spans.len(), 2);
        assert_eq!(fin.dropped_spans, 1);
        assert!(!fin.is_complete());
    }

    #[test]
    fn sampler_keeps_slowest_n_and_all_errors() {
        let s = TailSampler::new(2, 2, 100);
        for e2e in [10, 30, 20, 40, 5] {
            s.offer(trace(e2e, false));
        }
        let kept: Vec<u64> = s.snapshot().iter().map(|r| r.trace.e2e_ns).collect();
        assert_eq!(kept, vec![30, 40], "slowest 2 of the window, offer order");
        assert!(s.offer(trace(1, true)), "errored always retained");
        assert!(s.offer(trace(2, true)));
        assert!(s.offer(trace(3, true)));
        let errs: Vec<u64> = s
            .snapshot()
            .iter()
            .filter(|r| r.trace.error)
            .map(|r| r.trace.e2e_ns)
            .collect();
        assert_eq!(errs, vec![2, 3], "newest-wins error ring");
        assert_eq!(s.offers(), 8);
    }

    #[test]
    fn sampler_window_roll_shelves_previous_tail() {
        let s = TailSampler::new(1, 1, 2);
        s.offer(trace(100, false));
        s.offer(trace(50, false)); // window 0 closes after this offer
        s.offer(trace(7, false)); // window 1 begins
        let kept: Vec<u64> = s.snapshot().iter().map(|r| r.trace.e2e_ns).collect();
        assert_eq!(kept, vec![100, 7], "previous window's tail + current");
        let json = s.to_json();
        assert!(json.contains("\"offers\":3"));
        assert!(json.contains("\"traces\":["));
    }

    #[test]
    fn scope_sets_and_restores_active() {
        assert!(active().is_none());
        let ctx = TraceCtx::mint();
        {
            let _g = scope(ctx);
            assert_eq!(active(), Some(ctx));
            {
                let inner = ctx.child(3);
                let _g2 = scope(inner);
                assert_eq!(active(), Some(inner));
            }
            assert_eq!(active(), Some(ctx));
        }
        assert!(active().is_none());
    }

    #[test]
    fn global_finish_offers_to_sampler() {
        let _g = crate::testutil::shared();
        let ctx = TraceCtx::mint();
        assert!(arena().start(ctx));
        arena().record(ctx, "serve_infer", 10, "", 0);
        // An errored trace is always retained, so this asserts true
        // regardless of what other tests offered.
        assert!(finish(ctx, 1, true));
        assert!(!finish(ctx, 1, true), "double finish is a no-op");
    }
}
