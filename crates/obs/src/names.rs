//! The registry of observable names: every `span!` site name and every
//! reject-reason tag in the workspace, in one place.
//!
//! Dashboards, the admin endpoint's `/traces` consumers, and the
//! loadgen reject-breakdown all key on these strings. Scattering them
//! as ad-hoc literals is how a renamed stage silently orphans a graph,
//! so `crates/check`'s `span-registry` lint cross-references the source
//! tree against these tables: a `span!("name")` or
//! `RejectReason::X => "tag"` that is not listed here fails lint, and
//! so does a duplicate entry in the tables themselves (enforced by the
//! tests below).

/// Every `span!` site name (and direct trace-record name) in the
/// workspace, sorted. A span name is also the prefix of its duration
/// histogram (`{name}_ns`), so renames are operationally visible —
/// register them here deliberately.
pub const SPAN_SITES: &[&str] = &[
    "engine_infer",
    "prepack_ns",
    "serve_batch_assembly",
    "serve_infer",
    "serve_queue_wait",
    "stage_decoder",
    "stage_ranker",
    "stage_scorer",
    "stage_solver",
];

/// Every `RejectReason` wire tag, sorted. These appear in degraded
/// responses, per-reason reject counters, and the loadgen breakdown.
pub const REJECT_REASONS: &[&str] = &[
    "deadline_exceeded",
    "inference_error",
    "queue_full",
    "quota_exceeded",
    "shutdown",
];

/// True if `name` is a registered span site.
pub fn is_registered_span(name: &str) -> bool {
    SPAN_SITES.binary_search(&name).is_ok()
}

/// True if `tag` is a registered reject reason.
pub fn is_registered_reject(tag: &str) -> bool {
    REJECT_REASONS.binary_search(&tag).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted_unique(table: &[&str], what: &str) {
        for w in table.windows(2) {
            assert!(
                w[0] < w[1],
                "{what} must be sorted and unique: `{}` then `{}`",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn tables_are_sorted_and_unique() {
        assert_sorted_unique(SPAN_SITES, "SPAN_SITES");
        assert_sorted_unique(REJECT_REASONS, "REJECT_REASONS");
    }

    #[test]
    fn lookups_use_the_sort_order() {
        assert!(is_registered_span("stage_decoder"));
        assert!(!is_registered_span("stage_decoderx"));
        assert!(is_registered_reject("queue_full"));
        assert!(!is_registered_reject("rate_limited"));
    }
}
