//! adarnet-obs: zero-dependency observability for the ADARNet stack.
//!
//! Three layers, designed so every crate in the workspace (down to the
//! tensor substrate) can instrument itself without new dependencies:
//!
//! 1. **Metrics** ([`metrics`]) — a process-wide [`MetricsRegistry`]
//!    of named counters, gauges, and fixed-bucket log-scale
//!    histograms. The record path is lock-free (striped atomics) and
//!    allocation-free; [`MetricsRegistry::snapshot`] returns a
//!    serializable view and [`Snapshot::render_text`] emits
//!    Prometheus-style exposition text.
//! 2. **Spans** ([`span`]) — `obs::span!("stage_decoder", bin = b)`
//!    RAII guards that time a scope into the `{name}_ns` histogram.
//! 3. **Flight recorder** ([`flight`]) — a bounded newest-wins ring of
//!    recent events (span completions, marks, sheds, hot-swaps),
//!    dumped to stderr + `target/obs-dump.json` on panic (via the hook
//!    installed by [`init`]), load-shed, and hot-swap.
//! 4. **Tracing** ([`trace`]) — per-request span trees: a [`TraceCtx`]
//!    carried by value through the request path, a bounded arena of
//!    in-flight traces, and a tail sampler retaining the slowest and
//!    errored traces per window. A `span!` site entered under
//!    [`trace::scope`] attaches its record to the active trace.
//!
//! The whole layer sits behind one global switch ([`set_enabled`]):
//! disabled, every record path is a single relaxed load and an early
//! return, which is what the `obs_overhead` CI gate measures.
//!
//! Overhead budget (enforced by `scripts/ci.sh` stage `obs`): an
//! instrumented `infer_batch` must stay within 3% of the
//! uninstrumented run.

pub mod flight;
pub mod metrics;
pub mod names;
pub mod span;
pub mod text;
pub mod trace;

pub use flight::{dump, dump_path, mark, recorder, Event, EventKind, FlightRecorder};
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot,
};
pub use span::{SpanGuard, SpanSite};
pub use trace::{FinishedTrace, SpanRec, TailSampler, TraceArena, TraceCtx};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether record paths are live (default: yes).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flip the global record switch. Used by the overhead bench to
/// measure instrumented vs. bare runs, and available to operators who
/// want a truly quiet process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Install the obs panic hook (idempotent): on panic, the flight
/// recorder and a metrics snapshot are force-dumped to stderr +
/// `target/obs-dump.json` *before* the previous hook (normally the default
/// backtrace printer) runs. Call once at process start; servers call
/// it from `Server::start`.
pub fn init() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flight::recorder().record(flight::EventKind::Panic, "panic", "", 0, 0);
            let _ = flight::dump("panic", true);
            prev(info);
        }));
    });
}

/// Get (or lazily register) a process-wide counter by literal name.
///
/// The handle is resolved once per call site and cached in a `static`,
/// so steady-state use is one relaxed load + one striped `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// Get (or lazily register) a process-wide gauge by literal name.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// Get (or lazily register) a process-wide histogram by literal name.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

#[cfg(test)]
pub(crate) mod testutil {
    //! The enable switch is process-global; tests that *toggle* it take
    //! the exclusive side of this gate, tests that *depend* on it being
    //! on take the shared side, so the parallel test harness cannot
    //! interleave a disabled window into a recording assertion.
    use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

    fn gate() -> &'static RwLock<()> {
        static GATE: OnceLock<RwLock<()>> = OnceLock::new();
        GATE.get_or_init(|| RwLock::new(()))
    }

    pub fn shared() -> RwLockReadGuard<'static, ()> {
        gate().read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn exclusive() -> RwLockWriteGuard<'static, ()> {
        gate().write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_intern_per_name() {
        let _g = crate::testutil::shared();
        counter!("lib_macro_total").add(2);
        counter!("lib_macro_total").inc();
        assert_eq!(counter!("lib_macro_total").value(), 3);
        gauge!("lib_macro_gauge").set(2.5);
        assert_eq!(gauge!("lib_macro_gauge").value(), 2.5);
        histogram!("lib_macro_ns").record(9);
        assert_eq!(histogram!("lib_macro_ns").count(), 1);
    }

    #[test]
    fn init_is_idempotent() {
        crate::init();
        crate::init();
    }
}
