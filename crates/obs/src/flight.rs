//! Bounded ring-buffer flight recorder: the last ~1k interesting events
//! (span completions, shed decisions, hot swaps, marks) kept in fixed
//! storage, dumped to stderr + `target/obs-dump.json` when something goes
//! wrong (panic, load-shed, hot-swap).
//!
//! Recording is a two-phase `reserve()` / `commit()` protocol:
//! `reserve` claims a monotonically increasing sequence number with one
//! `fetch_add`; `commit` writes the event into slot `seq % capacity`,
//! overwriting only events with *older* sequence numbers. Newest-wins
//! overwrite is what makes the recorder lossless for the tail: of the
//! last `capacity` reserved sequence numbers, every committed event
//! survives, no matter how writers interleave between the two phases —
//! a laggard holding an old `seq` can never clobber a newer event in
//! the same slot. The two phases are public precisely so the
//! `crates/check` model checker can interleave them adversarially and
//! verify that claim.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed tracing span (`dur_ns` is its duration).
    Span,
    /// A free-form annotation via [`mark`].
    Mark,
    /// A request was shed (queue full / inference error).
    Shed,
    /// The serving engine hot-swapped to a new model generation.
    HotSwap,
    /// The process panicked (recorded by the panic hook).
    Panic,
}

impl EventKind {
    /// Stable lowercase name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Mark => "mark",
            EventKind::Shed => "shed",
            EventKind::HotSwap => "hot_swap",
            EventKind::Panic => "panic",
        }
    }
}

/// One recorded event. Everything is `Copy` — recording moves a few
/// words, never allocates.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Global sequence number (order of [`FlightRecorder::reserve`]).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Event class.
    pub kind: EventKind,
    /// Event name (span name, mark label, ...).
    pub name: &'static str,
    /// Optional structured field name (`""` when absent).
    pub field: &'static str,
    /// Value of `field` (0 when absent).
    pub value: u64,
    /// Span duration in nanoseconds (0 for non-span events).
    pub dur_ns: u64,
}

/// Fixed-capacity newest-wins ring of [`Event`]s.
pub struct FlightRecorder {
    slots: Box<[Mutex<Option<Event>>]>,
    cursor: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events
    /// (`capacity` >= 1 enforced).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total sequence numbers handed out so far.
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Phase 1: claim the next sequence number.
    #[inline]
    pub fn reserve(&self) -> u64 {
        self.cursor.fetch_add(1, Ordering::AcqRel)
    }

    /// Phase 2: publish the event for a previously reserved `seq`.
    /// Overwrites the slot only if it holds an older event — a delayed
    /// committer can never erase newer history.
    pub fn commit(
        &self,
        seq: u64,
        kind: EventKind,
        name: &'static str,
        field: &'static str,
        value: u64,
        dur_ns: u64,
    ) {
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = lock(slot);
        if guard.is_none_or(|e| e.seq < seq) {
            *guard = Some(Event {
                seq,
                at_us: self.epoch.elapsed().as_micros() as u64,
                kind,
                name,
                field,
                value,
                dur_ns,
            });
        }
    }

    /// Reserve + commit in one step. No-op while the obs layer is
    /// disabled.
    #[inline]
    pub fn record(
        &self,
        kind: EventKind,
        name: &'static str,
        field: &'static str,
        value: u64,
        dur_ns: u64,
    ) {
        if !crate::enabled() {
            return;
        }
        let seq = self.reserve();
        self.commit(seq, kind, name, field, value, dur_ns);
    }

    /// The surviving events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self.slots.iter().filter_map(|s| *lock(s)).collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// JSON document of the ring plus a metrics snapshot.
    pub fn dump_json(&self, reason: &str) -> String {
        let mut out = format!(
            "{{\"reason\":\"{}\",\"recorded\":{},\"capacity\":{},\"events\":[",
            crate::text::sanitize(reason),
            self.recorded(),
            self.capacity(),
        );
        for (k, e) in self.recent().iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"name\":\"{}\",\"field\":\"{}\",\"value\":{},\"dur_ns\":{}}}",
                e.seq,
                e.at_us,
                e.kind.as_str(),
                crate::text::sanitize(e.name),
                crate::text::sanitize(e.field),
                e.value,
                e.dur_ns,
            ));
        }
        out.push_str("],\"metrics\":");
        out.push_str(&crate::metrics::registry().snapshot().to_json());
        out.push('}');
        out
    }
}

/// The process-wide flight recorder (capacity 1024).
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder::with_capacity(1024))
}

/// Record a free-form [`EventKind::Mark`] on the global recorder.
pub fn mark(name: &'static str, field: &'static str, value: u64) {
    recorder().record(EventKind::Mark, name, field, value, 0);
}

/// Seconds-since-recorder-epoch of the last dump, for rate limiting.
static LAST_DUMP_S: AtomicU64 = AtomicU64::new(u64::MAX);

/// Where dumps land: `$ADARNET_OBS_DUMP`, default
/// `target/obs-dump.json` — under the build directory so a dump fired
/// from a checkout never dirties the work tree.
pub fn dump_path() -> PathBuf {
    std::env::var_os("ADARNET_OBS_DUMP")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/obs-dump.json"))
}

/// Dump the global ring + metrics snapshot to stderr (one summary
/// line) and [`dump_path`]. Unforced dumps are rate-limited to one per
/// second so a shed storm cannot grind the server into disk I/O;
/// `force` (panic path) always writes. Returns the path written.
pub fn dump(reason: &str, force: bool) -> Option<PathBuf> {
    let now_s = recorder().epoch.elapsed().as_secs();
    if !force {
        let last = LAST_DUMP_S.load(Ordering::Acquire);
        if last != u64::MAX && now_s <= last {
            return None;
        }
        if LAST_DUMP_S
            .compare_exchange(last, now_s, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None; // someone else is dumping this second
        }
    } else {
        LAST_DUMP_S.store(now_s, Ordering::Release);
    }
    let json = recorder().dump_json(reason);
    let path = dump_path();
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(&path, &json);
    let mut err = std::io::stderr().lock();
    let _ = writeln!(
        err,
        "[obs] flight-recorder dump (reason: {reason}) -> {} ({} events)",
        path.display(),
        recorder().recent().len()
    );
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_capacity_events() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            let seq = r.reserve();
            r.commit(seq, EventKind::Mark, "m", "", i, 0);
        }
        let recent = r.recent();
        assert_eq!(recent.len(), 4);
        let seqs: Vec<u64> = recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn laggard_commit_cannot_clobber_newer_event() {
        let r = FlightRecorder::with_capacity(2);
        let old = r.reserve(); // seq 0
        let newer = r.reserve(); // seq 1
        let newest = r.reserve(); // seq 2, same slot as 0
        r.commit(newest, EventKind::Mark, "new", "", 0, 0);
        r.commit(newer, EventKind::Mark, "mid", "", 0, 0);
        r.commit(old, EventKind::Mark, "old", "", 0, 0); // must be discarded
        let names: Vec<&str> = r.recent().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["mid", "new"]);
    }

    #[test]
    fn interleaved_writers_never_lose_the_tail() {
        let _g = crate::testutil::shared();
        let r = FlightRecorder::with_capacity(8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        let seq = r.reserve();
                        r.commit(seq, EventKind::Mark, "w", "", 0, 0);
                    }
                });
            }
        });
        let recent = r.recent();
        assert_eq!(recent.len(), 8);
        // All committed, so the survivors are exactly the final 8 seqs.
        let seqs: Vec<u64> = recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (3_992..4_000).collect::<Vec<u64>>());
    }

    #[test]
    fn dump_json_is_parseable() {
        let _g = crate::testutil::shared();
        mark("test_mark", "value", 7);
        let json = recorder().dump_json("unit-test");
        let doc = serde_json::parse_value(&json).expect("valid JSON");
        let obj = doc.as_object().expect("object");
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert!(get("events").is_some());
        assert!(get("metrics").is_some());
        assert_eq!(get("reason").and_then(|v| v.as_str()), Some("unit_test"));
    }
}
