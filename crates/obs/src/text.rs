//! Prometheus-style exposition text: [`render`] a [`Snapshot`] and
//! [`parse`] it back (the round-trip keeps the format honest and gives
//! scrape-side tooling a reference decoder).
//!
//! The format is the classic text exposition: `# TYPE` comments, one
//! sample per line, histograms as cumulative `_bucket{le="..."}` series
//! plus `_sum` / `_count`. Two nonstandard extensions: a `_max` line
//! per histogram, because the recorded max is exact while bucket
//! bounds are quantized, and an `_exemplar_value` / `_exemplar_trace`
//! pair when the histogram carries a trace exemplar (the trace id of
//! the slowest traced sample — the jump from "p99 regressed" to one
//! concrete trace in `/traces`). The exemplar trace id is rendered as
//! a 16-hex-digit string — the same spelling `/traces` and the
//! loadgen's `slowest_trace` use — while every other value is decimal.

use crate::metrics::{bucket_bounds, bucket_index, HistogramSnapshot, Snapshot, NUM_BUCKETS};

/// Clamp a metric name to the Prometheus charset `[a-zA-Z0-9_:]`.
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a snapshot as exposition text.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_f64(*v)));
    }
    for h in &snap.histograms {
        let name = &h.name;
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cum = 0u64;
        for &(i, n) in &h.buckets {
            cum += n;
            let (_, hi) = bucket_bounds(i);
            out.push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cum}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
        out.push_str(&format!("{name}_max {}\n", h.max));
        if let Some((v, trace)) = h.exemplar {
            out.push_str(&format!("{name}_exemplar_value {v}\n"));
            // The trace id renders as the same 16-hex-digit string the
            // `/traces` endpoint and the loadgen reports use, so one id
            // greps across all three surfaces.
            out.push_str(&format!("{name}_exemplar_trace {trace:016x}\n"));
        }
    }
    out
}

/// Parse exposition text produced by [`render`] back into a
/// [`Snapshot`]. Only the subset this module emits is recognized —
/// unknown lines are an error, so drift between encoder and decoder
/// fails the round-trip test instead of passing silently.
pub fn parse(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot {
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: Vec::new(),
    };
    // name -> declared type, from `# TYPE` lines.
    let mut kinds: Vec<(String, String)> = Vec::new();
    let kind_of = |kinds: &[(String, String)], name: &str| {
        kinds
            .iter()
            .rev()
            .find(|(n, _)| {
                name == n
                    || (name.starts_with(n.as_str())
                        && matches!(
                            &name[n.len()..],
                            "_bucket"
                                | "_sum"
                                | "_count"
                                | "_max"
                                | "_exemplar_value"
                                | "_exemplar_trace"
                        ))
            })
            .map(|(n, k)| (n.clone(), k.clone()))
    };
    let hist_mut = |snap: &mut Snapshot, name: &str| -> usize {
        if let Some(i) = snap.histograms.iter().position(|h| h.name == name) {
            i
        } else {
            snap.histograms.push(HistogramSnapshot::empty(name));
            snap.histograms.len() - 1
        }
    };

    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {}: malformed TYPE", ln + 1))?;
            kinds.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (key, val) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: missing value", ln + 1))?;
        let bare = key.split('{').next().unwrap_or(key);
        let (base, kind) = kind_of(&kinds, bare)
            .ok_or_else(|| format!("line {}: sample `{bare}` has no TYPE", ln + 1))?;
        match kind.as_str() {
            "counter" => {
                let v: u64 = val.parse().map_err(|e| format!("line {}: {e}", ln + 1))?;
                snap.counters.push((base, v));
            }
            "gauge" => {
                let v: f64 = val.parse().map_err(|e| format!("line {}: {e}", ln + 1))?;
                snap.gauges.push((base, v));
            }
            "histogram" => {
                let suffix = &key[base.len()..];
                let v: u64 = if suffix == "_exemplar_trace" {
                    u64::from_str_radix(val, 16).map_err(|e| format!("line {}: {e}", ln + 1))?
                } else {
                    val.parse().map_err(|e| format!("line {}: {e}", ln + 1))?
                };
                let i = hist_mut(&mut snap, &base);
                let h = &mut snap.histograms[i];
                match suffix {
                    "_sum" => h.sum = v,
                    "_count" => h.count = v,
                    "_max" => h.max = v,
                    "_exemplar_value" => {
                        let t = h.exemplar.map_or(0, |(_, t)| t);
                        h.exemplar = Some((v, t));
                    }
                    "_exemplar_trace" => {
                        let ev = h.exemplar.map_or(0, |(ev, _)| ev);
                        h.exemplar = Some((ev, v));
                    }
                    suffix if suffix.starts_with("_bucket{le=\"") => {
                        let le = suffix
                            .trim_start_matches("_bucket{le=\"")
                            .trim_end_matches("\"}");
                        if le == "+Inf" {
                            continue; // redundant with _count
                        }
                        let hi: u64 = le
                            .parse()
                            .map_err(|e| format!("line {}: le: {e}", ln + 1))?;
                        let idx = bucket_index(hi.saturating_sub(1));
                        if idx >= NUM_BUCKETS {
                            return Err(format!("line {}: le {hi} out of range", ln + 1));
                        }
                        h.buckets.push((idx, v)); // cumulative for now
                    }
                    other => return Err(format!("line {}: unknown suffix `{other}`", ln + 1)),
                }
            }
            other => return Err(format!("line {}: unknown TYPE `{other}`", ln + 1)),
        }
    }
    // De-cumulate bucket counts.
    for h in &mut snap.histograms {
        let mut prev = 0u64;
        for b in &mut h.buckets {
            let cum = b.1;
            b.1 = cum.saturating_sub(prev);
            prev = cum;
        }
        h.buckets.retain(|&(_, n)| n > 0);
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn sanitize_clamps_charset() {
        assert_eq!(sanitize("a.b-c d"), "a_b_c_d");
        assert_eq!(sanitize("stage_scorer_ns"), "stage_scorer_ns");
    }

    #[test]
    fn render_parse_round_trip() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        reg.counter("req_total").add(41);
        reg.counter("shed_total").add(3);
        reg.gauge("loss").set(0.125);
        reg.gauge("lam").set(-2.0);
        let h = reg.histogram("e2e_ns");
        for v in [1u64, 1, 5, 40, 999, 70_000, 1_000_000_007] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = render(&snap);
        let back = parse(&text).expect("parse rendered text");
        assert_eq!(back, snap);
    }

    #[test]
    fn round_trip_carries_exemplars() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("traced_ns");
        h.record_traced(1_000, 0xdead);
        h.record_traced(9_000, 0xbeef);
        let snap = reg.snapshot();
        let text = render(&snap);
        assert!(text.contains("traced_ns_exemplar_value 9000"));
        assert!(text.contains("traced_ns_exemplar_trace 000000000000beef"));
        let back = parse(&text).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(
            back.histogram("traced_ns").unwrap().exemplar,
            Some((9_000, 0xbeef))
        );
    }

    #[test]
    fn round_trip_survives_empty_histogram() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        reg.histogram("quiet_ns");
        let snap = reg.snapshot();
        let back = parse(&render(&snap)).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_rejects_untyped_samples() {
        assert!(parse("mystery 4\n").is_err());
        assert!(parse("# TYPE a counter\na not_a_number\n").is_err());
    }
}
