//! The metrics substrate: counters, gauges, and log-scale histograms
//! behind a process-wide [`MetricsRegistry`].
//!
//! Record-path contract (the whole point of this module):
//!
//! * **lock-free** — recording touches only atomics; the registry's
//!   mutex guards *registration* (cold, once per metric name), never
//!   the data path;
//! * **allocation-free** — counters, gauges, and histograms are
//!   fixed-size atomic arrays allocated at registration; a steady-state
//!   record loop performs zero heap allocations (the zero-alloc
//!   acceptance test in `crates/core` runs with instrumentation on);
//! * **striped** — counters and histogram sums spread writers over
//!   [`STRIPES`] cache-line-padded cells indexed by a per-thread slot,
//!   so concurrent recorders do not serialize on one cache line.
//!   Histogram *buckets* are naturally striped by value.
//!
//! Reads (`value()`, `snapshot()`) issue an `Acquire` fence and sum the
//! stripes; record-side increments use `Release` RMWs, so a snapshot
//! taken after a synchronizing event (thread join, channel recv)
//! observes every increment that happened-before it — this is the fix
//! for the stale post-shutdown `stats()` reads the serve crate used to
//! allow with pure `Relaxed` loads.

use std::collections::BTreeMap;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of per-metric write stripes. Eight covers the worker-thread
/// counts this workspace runs (rayon pool + serve workers) without
/// bloating every counter.
pub const STRIPES: usize = 8;

/// One cache line per stripe so two stripes never share a line.
#[repr(align(64))]
#[derive(Default)]
struct Padded(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

/// This thread's stripe slot (assigned round-robin on first use).
#[inline]
fn stripe() -> usize {
    thread_local! {
        static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// Monotone counter striped over [`STRIPES`] atomic cells.
pub struct Counter {
    name: String,
    cells: [Padded; STRIPES],
}

impl Counter {
    fn new(name: String) -> Counter {
        Counter {
            name,
            cells: Default::default(),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add `n`. Lock- and allocation-free; no-op while the obs layer is
    /// disabled (see [`crate::set_enabled`]).
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.cells[stripe()].0.fetch_add(n, Ordering::Release);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total: acquire-fenced sum over the stripes.
    pub fn value(&self) -> u64 {
        fence(Ordering::Acquire);
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

/// Last-write-wins `f64` gauge (stored as bits in one atomic).
pub struct Gauge {
    name: String,
    bits: AtomicU64,
}

impl Gauge {
    fn new(name: String) -> Gauge {
        Gauge {
            name,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Set the gauge. No-op while the obs layer is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Release);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
}

// ---------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------

/// Values below this get their own exact unit-width bucket.
const EXACT: u64 = 32;
/// Sub-buckets per power-of-two octave above the exact range (3
/// significant bits -> relative quantization error <= 1/8).
const SUB: usize = 8;
/// First octave covered by sub-bucketed ranges (2^5 == [`EXACT`]).
const FIRST_OCTAVE: u32 = 5;
/// Total fixed bucket count: 32 exact + 59 octaves x 8 sub-buckets.
pub const NUM_BUCKETS: usize = EXACT as usize + (64 - FIRST_OCTAVE as usize) * SUB;

/// Bucket index of a recorded value. Log-scale with 3 significant
/// bits: exact below [`EXACT`], then `[2^o + s*2^(o-3), 2^o + (s+1)*2^(o-3))`
/// for octave `o` and sub-bucket `s`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = ((v >> (octave - 3)) & 7) as usize;
    EXACT as usize + (octave - FIRST_OCTAVE) as usize * SUB + sub
}

/// `[lo, hi)` value range of bucket `i` (the last bucket's `hi`
/// saturates at `u64::MAX`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < NUM_BUCKETS);
    if i < EXACT as usize {
        return (i as u64, i as u64 + 1);
    }
    let rel = i - EXACT as usize;
    let octave = FIRST_OCTAVE + (rel / SUB) as u32;
    let sub = (rel % SUB) as u64;
    let width = 1u64 << (octave - 3);
    let lo = (1u64 << octave).saturating_add(sub * width);
    (lo, lo.saturating_add(width).max(lo.saturating_add(1)))
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Fixed-bucket log-scale histogram of `u64` samples (nanoseconds for
/// span durations, plain counts elsewhere).
///
/// Buckets are single atomics — distinct values stripe across the
/// bucket array by construction; the running sum is striped explicitly.
/// Quantization error of any quantile estimate is bounded by the
/// sub-bucket width: <= 12.5% relative above [`EXACT`], exact below.
pub struct Histogram {
    name: String,
    buckets: Box<[AtomicU64]>,
    sums: [Padded; STRIPES],
    max: AtomicU64,
    /// Exemplar seqlock: even = stable, odd = a writer owns the pair
    /// below. Writers claim with one CAS (losers skip — an exemplar is
    /// advisory), readers retry on a torn read.
    ex_seq: AtomicU64,
    /// Value of the exemplar sample (the max-latency traced sample
    /// since the last [`Histogram::reset_exemplar`]).
    ex_value: AtomicU64,
    /// Trace id of that sample, linking `/metrics` to `/traces`.
    ex_trace: AtomicU64,
}

impl Histogram {
    fn new(name: String) -> Histogram {
        Histogram {
            name,
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sums: Default::default(),
            max: AtomicU64::new(0),
            ex_seq: AtomicU64::new(0),
            ex_value: AtomicU64::new(0),
            ex_trace: AtomicU64::new(0),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record one sample. Lock- and allocation-free; no-op while the
    /// obs layer is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Release);
        self.sums[stripe()].0.fetch_add(v, Ordering::Release);
        self.max.fetch_max(v, Ordering::AcqRel);
    }

    /// Record one sample carrying its request's trace id (0 =
    /// untraced, identical to [`Histogram::record`]). When the sample
    /// is the slowest this exemplar window, the `(value, trace_id)`
    /// exemplar pair is updated — one relaxed load on the not-slowest
    /// path, a short seqlock write when a new max lands.
    #[inline]
    pub fn record_traced(&self, v: u64, trace_id: u64) {
        self.record(v);
        if trace_id == 0 || !crate::enabled() || v <= self.ex_value.load(Ordering::Relaxed) {
            return;
        }
        let seq = self.ex_seq.load(Ordering::Relaxed);
        if !seq.is_multiple_of(2)
            || self
                .ex_seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            return; // another writer is installing its (larger or racing) sample
        }
        if v > self.ex_value.load(Ordering::Relaxed) {
            self.ex_value.store(v, Ordering::Relaxed);
            self.ex_trace.store(trace_id, Ordering::Relaxed);
        }
        self.ex_seq.store(seq + 2, Ordering::Release);
    }

    /// The `(value, trace_id)` exemplar pair, if a traced sample has
    /// landed since the last reset. `None` is also returned on a
    /// persistently torn read (a writer mid-install).
    pub fn exemplar(&self) -> Option<(u64, u64)> {
        for _ in 0..64 {
            let s1 = self.ex_seq.load(Ordering::Acquire);
            if !s1.is_multiple_of(2) {
                continue;
            }
            let v = self.ex_value.load(Ordering::Relaxed);
            let t = self.ex_trace.load(Ordering::Relaxed);
            if self.ex_seq.load(Ordering::Acquire) == s1 {
                return (t != 0).then_some((v, t));
            }
        }
        None
    }

    /// Open a new exemplar window: the next traced sample becomes the
    /// exemplar regardless of past maxima.
    pub fn reset_exemplar(&self) {
        let seq = self.ex_seq.load(Ordering::Relaxed);
        if seq.is_multiple_of(2)
            && self
                .ex_seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            self.ex_value.store(0, Ordering::Relaxed);
            self.ex_trace.store(0, Ordering::Relaxed);
            self.ex_seq.store(seq + 2, Ordering::Release);
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        fence(Ordering::Acquire);
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Acquire-fenced point-in-time view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        fence(Ordering::Acquire);
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i, n));
                count += n;
            }
        }
        HistogramSnapshot {
            name: self.name.clone(),
            count,
            sum: self.sums.iter().map(|s| s.0.load(Ordering::Relaxed)).sum(),
            max: self.max.load(Ordering::Relaxed),
            buckets,
            exemplar: self.exemplar(),
        }
    }
}

/// Serializable view of one histogram: sparse `(bucket index, count)`
/// pairs plus count/sum/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (exact, not quantized).
    pub max: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(usize, u64)>,
    /// `(value, trace_id)` of the max-latency traced sample this
    /// exemplar window (see [`Histogram::record_traced`]).
    pub exemplar: Option<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (zero traffic) under `name`.
    pub fn empty(name: impl Into<String>) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.into(),
            count: 0,
            sum: 0,
            max: 0,
            buckets: Vec::new(),
            exemplar: None,
        }
    }

    /// Mean sample value (0 with no traffic).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`) with linear interpolation
    /// inside the landing bucket, clamped to the recorded max. Exact for
    /// values below 32, <= 12.5% relative quantization error above.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, n) in &self.buckets {
            if cum + n >= target {
                let (lo, hi) = bucket_bounds(i);
                let into = (target - cum) as f64 - 0.5;
                let frac = (into / n as f64).clamp(0.0, 1.0);
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.min(self.max as f64).max(lo as f64);
            }
            cum += n;
        }
        self.max as f64
    }

    /// Percentile helper (`p` in `[0, 100]`).
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// The window between `earlier` and `self` (both cumulative
    /// snapshots of the same histogram): per-bucket count deltas.
    /// The window max is exact when the cumulative max moved during the
    /// window, otherwise estimated from the highest non-empty delta
    /// bucket (quantized, and never above the cumulative max).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut before: BTreeMap<usize, u64> = earlier.buckets.iter().copied().collect();
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for &(i, n) in &self.buckets {
            let d = n.saturating_sub(before.remove(&i).unwrap_or(0));
            if d > 0 {
                buckets.push((i, d));
                count += d;
            }
        }
        let max = if self.max != earlier.max {
            self.max
        } else {
            buckets
                .last()
                .map(|&(i, _)| (bucket_bounds(i).1 - 1).min(self.max))
                .unwrap_or(0)
        };
        HistogramSnapshot {
            name: self.name.clone(),
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max,
            buckets,
            // The cumulative exemplar belongs to this window only if
            // the max moved during it (same reasoning as `max` above).
            exemplar: if self.max != earlier.max {
                self.exemplar
            } else {
                None
            },
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// Serializable view of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// One [`HistogramSnapshot`] per histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram view by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Prometheus-style exposition text (see [`crate::text`]).
    pub fn render_text(&self) -> String {
        crate::text::render(self)
    }

    /// Hand-rolled JSON (the crate has no serde dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (k, (name, v)) in self.counters.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", crate::text::sanitize(name)));
        }
        out.push_str("},\"gauges\":{");
        for (k, (name, v)) in self.gauges.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                crate::text::sanitize(name),
                json_f64(*v)
            ));
        }
        out.push_str("},\"histograms\":{");
        for (k, h) in self.histograms.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let exemplar = match h.exemplar {
                Some((v, t)) => format!(",\"exemplar_value\":{v},\"exemplar_trace\":\"{t:016x}\""),
                None => String::new(),
            };
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}{}}}",
                crate::text::sanitize(&h.name),
                h.count,
                h.sum,
                h.max,
                json_f64(h.percentile(50.0)),
                json_f64(h.percentile(95.0)),
                json_f64(h.percentile(99.0)),
                exemplar,
            ));
        }
        out.push_str("}}");
        out
    }
}

/// JSON has no NaN/inf literal; clamp them to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Process-wide registry of named metrics. Registration interns by
/// name (get-or-create) behind a mutex; the returned `Arc` handles are
/// the lock-free record path.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests; production code uses
    /// [`registry`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let name = crate::text::sanitize(name);
        lock(&self.counters)
            .entry(name.clone())
            .or_insert_with(|| Arc::new(Counter::new(name)))
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let name = crate::text::sanitize(name);
        lock(&self.gauges)
            .entry(name.clone())
            .or_insert_with(|| Arc::new(Gauge::new(name)))
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let name = crate::text::sanitize(name);
        lock(&self.histograms)
            .entry(name.clone())
            .or_insert_with(|| Arc::new(Histogram::new(name)))
            .clone()
    }

    /// Acquire-fenced view of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        fence(Ordering::Acquire);
        Snapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(n, c)| (n.clone(), c.value()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(n, g)| (n.clone(), g.value()))
                .collect(),
            histograms: lock(&self.histograms)
                .values()
                .map(|h| h.snapshot())
                .collect(),
        }
    }

    /// Prometheus-style exposition text of a fresh snapshot.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// The process-wide registry.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds_everywhere() {
        // Every bucket's own bounds map back to its index, adjacent
        // buckets tile the axis with no gaps or overlaps.
        let mut prev_hi = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, prev_hi, "bucket {i} must start where {} ended", i - 1);
            assert!(hi > lo, "bucket {i} is empty");
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi - 1), i, "hi-1 of bucket {i}");
            prev_hi = hi;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_buckets_below_32() {
        for v in 0..32u64 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v + 1));
        }
    }

    #[test]
    fn relative_quantization_error_is_bounded() {
        for v in [33u64, 100, 1_000, 123_456, 10_000_000_000] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v < hi);
            assert!(
                (hi - lo) as f64 / lo as f64 <= 0.125 + 1e-9,
                "bucket [{lo}, {hi}) too wide at {v}"
            );
        }
    }

    #[test]
    fn counter_stripes_sum_to_total() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let c = reg.counter("t_total");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 40_000);
    }

    #[test]
    fn histogram_concurrent_count_and_sum_consistent() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t_ns");
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 5_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 20_000);
        assert_eq!(snap.sum, (0..20_000u64).sum::<u64>());
        assert_eq!(snap.max, 19_999);
    }

    #[test]
    fn percentiles_track_exact_quantiles_on_uniform() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("u");
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for p in [10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let exact = p / 100.0 * 10_000.0;
            let est = snap.percentile(p);
            let rel = (est - exact).abs() / exact;
            assert!(rel <= 0.13, "p{p}: est {est} vs exact {exact} (rel {rel})");
        }
        assert_eq!(snap.quantile(1.0), 10_000.0);
    }

    #[test]
    fn percentiles_exact_on_small_values() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("s");
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let snap = h.snapshot();
        // Unit-width buckets: the interpolated estimate lands inside
        // [v, v+1) of the exact nearest-rank value.
        let p50 = snap.percentile(50.0);
        assert!((5.0..6.0).contains(&p50), "p50 = {p50}");
        let p90 = snap.percentile(90.0);
        assert!((9.0..10.0).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let reg = MetricsRegistry::new();
        let snap = reg.histogram("never").snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.percentile(99.0), 0.0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn delta_window_isolates_new_samples() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("w");
        for _ in 0..100 {
            h.record(10);
        }
        let before = h.snapshot();
        for _ in 0..50 {
            h.record(1_000);
        }
        let window = h.snapshot().since(&before);
        assert_eq!(window.count, 50);
        assert_eq!(window.sum, 50_000);
        assert_eq!(window.max, 1_000, "cumulative max moved -> exact");
        assert!(window.percentile(50.0) >= 900.0);
        // A second, empty window reports nothing.
        let after = h.snapshot();
        let empty = after.since(&after);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn exemplar_tracks_slowest_traced_sample() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("ex_ns");
        h.record_traced(100, 0xAAAA);
        h.record_traced(50, 0xBBBB); // not slower: exemplar unchanged
        h.record(500); // untraced: exemplar unchanged
        assert_eq!(h.exemplar(), Some((100, 0xAAAA)));
        h.record_traced(700, 0xCCCC);
        assert_eq!(h.exemplar(), Some((700, 0xCCCC)));
        assert_eq!(h.snapshot().exemplar, Some((700, 0xCCCC)));
        h.reset_exemplar();
        assert_eq!(h.exemplar(), None, "reset opens a fresh window");
        h.record_traced(1, 0xDDDD);
        assert_eq!(h.exemplar(), Some((1, 0xDDDD)));
    }

    #[test]
    fn exemplar_concurrent_writers_keep_the_max() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("ex_race_ns");
        std::thread::scope(|s| {
            for t in 1..=4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        h.record_traced(t * 2_000 + i, t);
                    }
                });
            }
        });
        // A racing loser may skip an update, but the pair can never be
        // torn and never exceeds the true max.
        let (v, t) = h.exemplar().expect("exemplar recorded");
        assert!(v <= 4 * 2_000 + 1_999);
        assert!((1..=4).contains(&t));
        assert_eq!(v / 2_000, t, "value always pairs with its writer's id");
    }

    #[test]
    fn registry_interns_by_name() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        a.add(3);
        assert_eq!(b.value(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gauge_round_trips_f64() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        g.set(0.1234567890123);
        assert_eq!(g.value(), 0.1234567890123);
        g.set(-4.0);
        assert_eq!(g.value(), -4.0);
    }

    #[test]
    fn snapshot_sorted_and_queryable() {
        let _g = crate::testutil::shared();
        let reg = MetricsRegistry::new();
        reg.counter("zzz_total").add(1);
        reg.counter("aaa_total").add(2);
        reg.gauge("mid").set(1.5);
        reg.histogram("h_ns").record(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "aaa_total");
        assert_eq!(snap.counter("zzz_total"), Some(1));
        assert_eq!(snap.gauge("mid"), Some(1.5));
        assert_eq!(snap.histogram("h_ns").map(|h| h.count), Some(1));
    }
}
