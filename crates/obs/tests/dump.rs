//! Integration test for the panic-hook dump path: `obs::init()` must
//! produce a parseable `obs-dump.json` when a panic unwinds, with the
//! panic event on the flight recorder.
//!
//! Runs in its own test binary (hence its own process) so the panic
//! hook and the `ADARNET_OBS_DUMP` override cannot leak into other
//! tests.

use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn panic_dump_produces_parseable_json() {
    let dir = std::env::temp_dir().join(format!("obs-dump-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("obs-dump.json");
    // Safety per std: set_var is unsafe-free pre-2024 edition; this
    // test binary is single-threaded at this point.
    std::env::set_var("ADARNET_OBS_DUMP", &path);

    adarnet_obs::init();
    adarnet_obs::counter!("dump_test_total").add(5);
    adarnet_obs::mark("before_panic", "stage", 1);
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        let _g = adarnet_obs::span!("doomed_stage");
        panic!("induced panic for dump test");
    }));
    assert!(unwound.is_err());

    let raw = std::fs::read_to_string(&path).expect("dump file written by panic hook");
    let doc = serde_json::parse_value(&raw).expect("dump is valid JSON");
    let obj = doc.as_object().expect("top-level object");
    let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    assert_eq!(get("reason").and_then(|v| v.as_str()), Some("panic"));
    let events = get("events").and_then(|v| v.as_array()).expect("events");
    let has = |kind: &str, name: &str| {
        events.iter().any(|e| {
            let Some(f) = e.as_object() else { return false };
            let field = |k: &str| f.iter().find(|(n, _)| n == k).and_then(|(_, v)| v.as_str());
            field("kind") == Some(kind) && field("name") == Some(name)
        })
    };
    assert!(has("panic", "panic"), "panic event recorded");
    assert!(has("mark", "before_panic"), "pre-panic mark survives");
    assert!(get("metrics").is_some(), "metrics snapshot embedded");

    let _ = std::fs::remove_dir_all(&dir);
}
