//! Property-based tests for the log-scale histogram: recording any
//! sample set preserves count/sum/max exactly, quantile estimates stay
//! within the documented 12.5% quantization bound of true quantiles,
//! and the text exposition round-trips losslessly.

use adarnet_obs::metrics::{bucket_bounds, bucket_index, MetricsRegistry, NUM_BUCKETS};
use adarnet_obs::text;
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<u64>> {
    // Mix of magnitudes: the raw draw spans the full u64 range and the
    // variable right-shift spreads values from sub-32 exact buckets up
    // to multi-second nanosecond spans.
    // Capped at 2^48 so a 300-sample sum cannot overflow u64 in either
    // the histogram or the oracle below.
    prop::collection::vec((0u64..u64::MAX).prop_map(|v| v >> (16 + v % 48)), 1..300)
}

proptest! {
    #[test]
    fn bucket_index_total_and_monotone(raw in 0u64..u64::MAX, shift in 0u32..64) {
        let v = raw >> shift;
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && (v < hi || hi == u64::MAX));
        if v > 0 {
            prop_assert!(bucket_index(v - 1) <= i);
        }
    }

    #[test]
    fn count_sum_max_are_exact(vs in samples()) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("p");
        for &v in &vs {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, vs.len() as u64);
        prop_assert_eq!(snap.sum, vs.iter().sum::<u64>());
        prop_assert_eq!(snap.max, vs.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn quantiles_within_bucket_quantization(vs in samples(), q in 0.0f64..1.0) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q");
        for &v in &vs {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let est = snap.quantile(q);
        // The estimate must land inside (or within one bucket width of)
        // the exact value's bucket.
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        let width = (hi - lo) as f64;
        prop_assert!(
            est >= lo as f64 - width && est <= hi as f64 + width,
            "q={q} exact={exact} bucket=[{lo},{hi}) est={est}"
        );
    }

    #[test]
    fn exposition_text_round_trips(vs in samples(), total in 0u64..1_000_000) {
        let reg = MetricsRegistry::new();
        reg.counter("c_total").add(total);
        let h = reg.histogram("h_ns");
        for &v in &vs {
            h.record(v);
        }
        let snap = reg.snapshot();
        let back = text::parse(&text::render(&snap));
        prop_assert_eq!(back.as_ref(), Ok(&snap));
    }
}
