//! Live introspection endpoint: a tiny admin TCP listener on its own
//! port, answering read-only queries about the running process.
//!
//! It reuses the [`crate::frame`] layer (length prefix + CRC32) so the
//! transport has exactly the same corruption guarantees as the data
//! plane, with a deliberately minimal body layout:
//!
//! * **request** body: the UTF-8 path, e.g. `/metrics`;
//! * **response** body: one status byte (0 = ok, 1 = unknown path,
//!   2 = bad request) followed by the UTF-8 payload.
//!
//! Paths:
//!
//! * `/metrics` — Prometheus exposition text of the live metrics
//!   registry (parseable by `adarnet_obs::text::parse`, exemplar
//!   lines included);
//! * `/traces` — the tail sampler's retained traces (slowest-N per
//!   window + all errored) as a JSON object whose `traces` field is
//!   the array of span trees;
//! * `/health` — one JSON object: obs enabled flag, in-flight trace
//!   count, and total sampler offers.
//!
//! The listener is read-only and allocation-light; it is meant to be
//! scraped while the data plane is under load, so handlers never take
//! locks the request path holds across inference.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::server::NetServerError;

/// Response status byte: the path was served.
pub const ADMIN_OK: u8 = 0;
/// Response status byte: unknown path.
pub const ADMIN_NOT_FOUND: u8 = 1;
/// Response status byte: the request body was not a UTF-8 path.
pub const ADMIN_BAD_REQUEST: u8 = 2;

/// How often an idle admin connection polls the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

struct AdminShared {
    shutdown: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A running admin listener. Independent of [`crate::NetServer`] — it
/// reads process-global obs state, so it can run next to any server
/// (or alone, for post-hoc inspection of a loaded process).
pub struct AdminServer {
    shared: Arc<AdminShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve admin queries.
    pub fn start(addr: &str) -> Result<AdminServer, NetServerError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(AdminShared {
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(AdminServer {
            shared,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join every connection thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns: Vec<JoinHandle<()>> = {
            let mut guard = adarnet_core::sync::lock(&self.shared.conns);
            guard.drain(..).collect()
        };
        for conn in conns {
            let _ = conn.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<AdminShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let handler = {
            let shared = shared.clone();
            std::thread::spawn(move || connection_loop(stream, shared))
        };
        adarnet_core::sync::lock(&shared.conns).push(handler);
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<AdminShared>) {
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(body) => body,
            Err(e) if e.is_timeout() => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        adarnet_obs::counter!("admin_requests_total").inc();
        let (status, payload) = match std::str::from_utf8(&body) {
            Ok(path) => serve_path(path.trim()),
            Err(_) => (ADMIN_BAD_REQUEST, String::from("path must be UTF-8")),
        };
        let mut out = Vec::with_capacity(1 + payload.len());
        out.push(status);
        out.extend_from_slice(payload.as_bytes());
        if write_frame(&mut writer, &out).is_err() {
            return;
        }
    }
}

/// Dispatch one admin path to its payload. Pure read of process-global
/// obs state, so it is callable in-process too (the `trace-dump`
/// subcommand uses it without a socket).
pub fn serve_path(path: &str) -> (u8, String) {
    match path {
        "/metrics" => (ADMIN_OK, adarnet_obs::registry().snapshot().render_text()),
        "/traces" => (ADMIN_OK, adarnet_obs::trace::sampler().to_json()),
        "/health" => {
            let payload = format!(
                "{{\"status\":\"ok\",\"obs_enabled\":{},\"traces_in_flight\":{},\"sampler_offers\":{}}}",
                adarnet_obs::enabled(),
                adarnet_obs::trace::arena().in_flight(),
                adarnet_obs::trace::sampler().offers(),
            );
            (ADMIN_OK, payload)
        }
        _ => (ADMIN_NOT_FOUND, format!("unknown path `{path}`")),
    }
}

/// One-shot admin client: connect, ask one path, return `(status,
/// payload)`.
pub struct AdminClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl AdminClient {
    /// Connect to a running [`AdminServer`].
    pub fn connect(addr: SocketAddr) -> Result<AdminClient, FrameError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(AdminClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Fetch one path; returns the status byte and the UTF-8 payload.
    pub fn get(&mut self, path: &str) -> Result<(u8, String), FrameError> {
        write_frame(&mut self.writer, path.as_bytes())?;
        let reply = read_frame(&mut self.reader)?;
        let (status, payload) = reply
            .split_first()
            .map_or((ADMIN_BAD_REQUEST, &[][..]), |(s, p)| (*s, p));
        Ok((status, String::from_utf8_lossy(payload).into_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_and_unknown_paths() {
        let (st, body) = serve_path("/health");
        assert_eq!(st, ADMIN_OK);
        assert!(body.contains("\"status\":\"ok\""));
        let (st, _) = serve_path("/nope");
        assert_eq!(st, ADMIN_NOT_FOUND);
    }

    #[test]
    fn metrics_payload_parses_back() {
        adarnet_obs::counter!("admin_test_total").inc();
        let (st, text) = serve_path("/metrics");
        assert_eq!(st, ADMIN_OK);
        let snap = adarnet_obs::text::parse(&text).expect("exposition text must parse");
        assert!(snap.counters.iter().any(|(n, _)| n == "admin_test_total"));
    }

    #[test]
    fn server_round_trip_over_loopback() {
        let server = AdminServer::start("127.0.0.1:0").expect("bind");
        let mut client = AdminClient::connect(server.local_addr()).expect("connect");
        let (st, body) = client.get("/health").expect("get");
        assert_eq!(st, ADMIN_OK);
        assert!(body.contains("\"sampler_offers\""));
        let (st, body) = client.get("/traces").expect("get");
        assert_eq!(st, ADMIN_OK);
        assert!(body.contains("\"traces\":["), "traces payload: {body}");
        let (st, _) = client.get("/missing").expect("get");
        assert_eq!(st, ADMIN_NOT_FOUND);
        server.shutdown();
    }
}
