//! The versioned request/response body codec (DESIGN.md §13).
//!
//! Every body starts with a fixed 16-byte header:
//!
//! ```text
//! [u8;4]  magic  "ADRN"
//! u8      protocol version (3; version-1/2 bodies still decode)
//! u8      body kind        (1 = request, 2 = response)
//! u16 LE  reserved         (0)
//! u64 LE  request id       (echoed verbatim in the response)
//! ```
//!
//! A **request** continues with the admission envelope and the raw LR
//! field:
//!
//! ```text
//! u64 LE  tenant id
//! u8      priority class   (0 interactive, 1 standard, 2 bulk)
//! u8      precision        (version >= 3 only; 0 = server default,
//!                           1 = f32, 2 = bf16 — the weight plane this
//!                           request asks to ride; older versions carry
//!                           0 here, which decodes as "default")
//! [u8;2]  reserved
//! u32 LE  deadline budget, ms  (0 = no deadline)
//! u64 LE  trace id         (version >= 2 only; 0 = none — the server
//!                           mints one so the request is traceable)
//! u16 LE  c, h, w          (field extents; c·h·w f32 values follow)
//! u16 LE  reserved
//! f32 LE × c·h·w           (row-major (C, H, W) field data)
//! ```
//!
//! A **response** returns the refinement *decision map* — per-patch
//! bins and scores over the `npy × npx` patch grid — not the decoded
//! SR patches, so the frame size is bounded by the patch grid:
//!
//! ```text
//! u8      status           (0 full, 1 degraded, 2 error)
//! u8      reject reason    (0 none, 1 queue_full, 2 quota_exceeded,
//!                           3 deadline_exceeded, 4 shutdown,
//!                           5 inference_error, 6 bad_request)
//! u8      priority class the request was served on
//! u8      precision        (version >= 3 only; 0 = unknown/error,
//!                           1 = f32, 2 = bf16 — the weight plane the
//!                           request was actually routed to)
//! u64 LE  model generation (0 for degraded/error responses)
//! u64 LE  server-side latency, ns
//! u64 LE  trace id         (version >= 2 only; the id the request was
//!                           traced under — client-sent or server-minted)
//! u16 LE  npy, npx         (patch grid; zero for error responses)
//! u8  × npy·npx            (per-patch refinement bin)
//! f32 LE × npy·npx         (per-patch scorer output)
//! ```
//!
//! Decoding never panics: every structural problem is a typed
//! [`DecodeError`], which the server answers with a `status = error`
//! response (the connection survives — the frame itself was intact).

use adarnet_serve::{Precision, Priority, RejectReason};
use adarnet_tensor::{Shape, Tensor};

/// Protocol magic, first bytes of every body.
pub const MAGIC: [u8; 4] = *b"ADRN";
/// Current protocol version (v2 added the trace-id field; v3 gives
/// meaning to a previously-reserved byte as the weight-plane precision
/// — offsets are unchanged, so v2 bodies decode as "default plane").
pub const PROTOCOL_VERSION: u8 = 3;
/// Oldest version the decoder still accepts (pre-trace-id bodies).
pub const PROTOCOL_VERSION_MIN: u8 = 1;
/// Body kind: request.
pub const KIND_REQUEST: u8 = 1;
/// Body kind: response.
pub const KIND_RESPONSE: u8 = 2;

/// How the request fared, coarsely (the reject reason carries the
/// detail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Full inference on the requested field.
    Full,
    /// Degraded bin-0 response (shed or browned out); the reject
    /// reason says why.
    Degraded,
    /// The request body was well-framed but invalid; nothing was
    /// inferred.
    Error,
}

impl Status {
    fn to_u8(self) -> u8 {
        match self {
            Status::Full => 0,
            Status::Degraded => 1,
            Status::Error => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Full),
            1 => Some(Status::Degraded),
            2 => Some(Status::Error),
            _ => None,
        }
    }
}

/// Wire encoding of [`RejectReason`], with 0 = none and 6 = the
/// net-layer-only "bad request".
fn reject_to_u8(reason: Option<RejectReason>) -> u8 {
    match reason {
        None => 0,
        Some(RejectReason::QueueFull) => 1,
        Some(RejectReason::QuotaExceeded) => 2,
        Some(RejectReason::DeadlineExceeded) => 3,
        Some(RejectReason::Shutdown) => 4,
        Some(RejectReason::InferenceError) => 5,
    }
}

/// Reject-reason byte for a malformed request (no serve-side
/// counterpart — the request never reached admission).
pub const REJECT_BAD_REQUEST: u8 = 6;

/// Wire encoding of the precision request/report: 0 = default (request)
/// or unknown (response), then [`Precision::index`] + 1.
fn precision_to_u8(p: Option<Precision>) -> u8 {
    match p {
        None => 0,
        Some(p) => p.index() as u8 + 1,
    }
}

fn precision_from_u8(v: u8) -> Result<Option<Precision>, DecodeError> {
    match v {
        0 => Ok(None),
        _ => match Precision::from_index(v as usize - 1) {
            Some(p) => Ok(Some(p)),
            None => Err(DecodeError::BadPrecision(v)),
        },
    }
}

fn reject_from_u8(v: u8) -> Result<Option<RejectReason>, DecodeError> {
    match v {
        0 | REJECT_BAD_REQUEST => Ok(None),
        1 => Ok(Some(RejectReason::QueueFull)),
        2 => Ok(Some(RejectReason::QuotaExceeded)),
        3 => Ok(Some(RejectReason::DeadlineExceeded)),
        4 => Ok(Some(RejectReason::Shutdown)),
        5 => Ok(Some(RejectReason::InferenceError)),
        _ => Err(DecodeError::BadReject(v)),
    }
}

/// One inference request as carried on the wire.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub request_id: u64,
    /// Tenant for quota accounting.
    pub tenant: u64,
    /// Requested lane.
    pub priority: Priority,
    /// Latency budget in milliseconds from server receipt; 0 = none.
    pub deadline_ms: u32,
    /// Client-chosen trace id; 0 = untraced (the server mints one so
    /// every request lands in the tail sampler regardless).
    pub trace_id: u64,
    /// Requested weight plane; `None` defers to the server's routing
    /// (tenant override, else server default). v1/v2 peers always
    /// decode as `None`.
    pub precision: Option<Precision>,
    /// The raw `(C, H, W)` LR field.
    pub field: Tensor<f32>,
}

/// One response as carried on the wire.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echo of the request id.
    pub request_id: u64,
    /// Coarse outcome.
    pub status: Status,
    /// Why the response is degraded (None for full responses and
    /// bad-request errors).
    pub reject: Option<RejectReason>,
    /// Raw reject byte (distinguishes bad_request from none).
    pub reject_code: u8,
    /// Lane the request was served on.
    pub priority: Priority,
    /// Model generation (0 when no model ran).
    pub generation: u64,
    /// Server-side latency, nanoseconds.
    pub latency_ns: u64,
    /// Trace id the request was served under (0 only for version-1
    /// clients' error paths that never reached admission).
    pub trace_id: u64,
    /// Weight plane the request was routed to (`None` for error
    /// responses that never reached admission, and for v1/v2 bodies).
    pub precision: Option<Precision>,
    /// Patch grid extents (0 × 0 for error responses).
    pub npy: u16,
    /// See `npy`.
    pub npx: u16,
    /// Row-major per-patch refinement bin.
    pub bins: Vec<u8>,
    /// Row-major per-patch score.
    pub scores: Vec<f32>,
}

/// Why a well-framed body failed to decode. Request-level: the server
/// answers with `status = error` and keeps the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Body shorter than the layout requires, or trailing bytes left
    /// after a complete parse.
    Truncated,
    /// First four bytes are not `ADRN`.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Body kind is neither request nor response (or not the expected
    /// one).
    BadKind(u8),
    /// Priority byte out of range.
    BadPriority(u8),
    /// Status byte out of range.
    BadStatus(u8),
    /// Reject-reason byte out of range.
    BadReject(u8),
    /// Precision byte out of range.
    BadPrecision(u8),
    /// A field extent is zero.
    ZeroDim,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "body truncated or has trailing bytes"),
            DecodeError::BadMagic => write!(f, "bad protocol magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadKind(k) => write!(f, "unexpected body kind {k}"),
            DecodeError::BadPriority(p) => write!(f, "priority byte {p} out of range"),
            DecodeError::BadStatus(s) => write!(f, "status byte {s} out of range"),
            DecodeError::BadReject(r) => write!(f, "reject byte {r} out of range"),
            DecodeError::BadPrecision(p) => write!(f, "precision byte {p} out of range"),
            DecodeError::ZeroDim => write!(f, "field extents must be positive"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked little-endian reader over a body slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        let slice = self.data.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32s(&mut self, count: usize) -> Result<Vec<f32>, DecodeError> {
        let bytes = self.take(count.checked_mul(4).ok_or(DecodeError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(DecodeError::Truncated)
        }
    }
}

fn put_header(out: &mut Vec<u8>, kind: u8, request_id: u64) {
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
}

fn read_header(c: &mut Cursor<'_>, expected_kind: u8) -> Result<(u8, u64), DecodeError> {
    let magic = c.take(4)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = c.u8()?;
    if !(PROTOCOL_VERSION_MIN..=PROTOCOL_VERSION).contains(&version) {
        return Err(DecodeError::BadVersion(version));
    }
    let kind = c.u8()?;
    if kind != expected_kind {
        return Err(DecodeError::BadKind(kind));
    }
    let _reserved = c.u16()?;
    Ok((version, c.u64()?))
}

/// Encode a request into a frame body.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let (ch, h, w) = field_dims(&req.field);
    let data = req.field.as_slice();
    let mut out = Vec::with_capacity(16 + 32 + data.len() * 4);
    put_header(&mut out, KIND_REQUEST, req.request_id);
    out.extend_from_slice(&req.tenant.to_le_bytes());
    out.push(req.priority.index() as u8);
    out.push(precision_to_u8(req.precision));
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&req.deadline_ms.to_le_bytes());
    out.extend_from_slice(&req.trace_id.to_le_bytes());
    out.extend_from_slice(&(ch as u16).to_le_bytes());
    out.extend_from_slice(&(h as u16).to_le_bytes());
    out.extend_from_slice(&(w as u16).to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a request body.
pub fn decode_request(body: &[u8]) -> Result<Request, DecodeError> {
    let mut c = Cursor::new(body);
    let (version, request_id) = read_header(&mut c, KIND_REQUEST)?;
    let tenant = c.u64()?;
    let pr = c.u8()?;
    let priority = Priority::from_index(pr as usize).ok_or(DecodeError::BadPriority(pr))?;
    // v3 repurposed the first reserved byte as the precision request;
    // older peers wrote 0 there, which maps to "server default" anyway,
    // but only v3 bodies get it *validated* (a v2 peer's junk byte must
    // not fail an otherwise-valid request).
    let precision = if version >= 3 {
        precision_from_u8(c.u8()?)?
    } else {
        let _ = c.u8()?;
        None
    };
    let _reserved = c.take(2)?;
    let deadline_ms = c.u32()?;
    let trace_id = if version >= 2 { c.u64()? } else { 0 };
    let ch = c.u16()? as usize;
    let h = c.u16()? as usize;
    let w = c.u16()? as usize;
    let _reserved = c.u16()?;
    if ch == 0 || h == 0 || w == 0 {
        return Err(DecodeError::ZeroDim);
    }
    let count = ch
        .checked_mul(h)
        .and_then(|v| v.checked_mul(w))
        .ok_or(DecodeError::Truncated)?;
    let data = c.f32s(count)?;
    c.finish()?;
    Ok(Request {
        request_id,
        tenant,
        priority,
        deadline_ms,
        trace_id,
        precision,
        field: Tensor::from_vec(Shape::d3(ch, h, w), data),
    })
}

/// Encode a response into a frame body.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let cells = resp.bins.len().min(resp.scores.len());
    // 16B header + 32B fixed fields + 5B per cell (u8 bin + f32 score);
    // saturating because this is only a capacity hint.
    let mut out = Vec::with_capacity(48usize.saturating_add(cells.saturating_mul(5)));
    put_header(&mut out, KIND_RESPONSE, resp.request_id);
    out.push(resp.status.to_u8());
    out.push(if resp.reject_code != 0 {
        resp.reject_code
    } else {
        reject_to_u8(resp.reject)
    });
    out.push(resp.priority.index() as u8);
    out.push(precision_to_u8(resp.precision));
    out.extend_from_slice(&resp.generation.to_le_bytes());
    out.extend_from_slice(&resp.latency_ns.to_le_bytes());
    out.extend_from_slice(&resp.trace_id.to_le_bytes());
    out.extend_from_slice(&resp.npy.to_le_bytes());
    out.extend_from_slice(&resp.npx.to_le_bytes());
    out.extend_from_slice(&resp.bins);
    for v in &resp.scores {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a response body.
pub fn decode_response(body: &[u8]) -> Result<Response, DecodeError> {
    let mut c = Cursor::new(body);
    let (version, request_id) = read_header(&mut c, KIND_RESPONSE)?;
    let st = c.u8()?;
    let status = Status::from_u8(st).ok_or(DecodeError::BadStatus(st))?;
    let reject_code = c.u8()?;
    let reject = reject_from_u8(reject_code)?;
    let pr = c.u8()?;
    let priority = Priority::from_index(pr as usize).ok_or(DecodeError::BadPriority(pr))?;
    let precision = if version >= 3 {
        precision_from_u8(c.u8()?)?
    } else {
        let _ = c.u8()?;
        None
    };
    let generation = c.u64()?;
    let latency_ns = c.u64()?;
    let trace_id = if version >= 2 { c.u64()? } else { 0 };
    let npy = c.u16()?;
    let npx = c.u16()?;
    let cells = (npy as usize)
        .checked_mul(npx as usize)
        .ok_or(DecodeError::Truncated)?;
    let bins = c.take(cells)?.to_vec();
    let scores = c.f32s(cells)?;
    c.finish()?;
    Ok(Response {
        request_id,
        status,
        reject,
        reject_code,
        priority,
        generation,
        latency_ns,
        trace_id,
        precision,
        npy,
        npx,
        bins,
        scores,
    })
}

/// `(C, H, W)` extents of a rank-3 field tensor (degenerate shapes
/// collapse to 1s rather than panicking — the encoder trusts callers to
/// pass rank-3 fields, and the decoder re-validates on the other side).
fn field_dims(field: &Tensor<f32>) -> (usize, usize, usize) {
    let dims = &field.shape().0;
    match dims[..] {
        [c, h, w] => (c, h, w),
        _ => (1, 1, field.len().max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            request_id: 0xDEAD_BEEF_1234,
            tenant: 42,
            priority: Priority::Interactive,
            deadline_ms: 250,
            trace_id: 0x0123_4567_89AB_CDEF,
            precision: Some(Precision::Bf16),
            field: Tensor::from_vec(
                Shape::d3(2, 3, 4),
                (0..24).map(|i| i as f32 * 0.5 - 3.0).collect(),
            ),
        }
    }

    #[test]
    fn request_roundtrip() {
        let req = sample_request();
        let body = encode_request(&req);
        let back = decode_request(&body).unwrap();
        assert_eq!(back.request_id, req.request_id);
        assert_eq!(back.tenant, req.tenant);
        assert_eq!(back.priority, req.priority);
        assert_eq!(back.deadline_ms, req.deadline_ms);
        assert_eq!(back.trace_id, req.trace_id);
        assert_eq!(back.precision, Some(Precision::Bf16));
        assert_eq!(back.field.shape(), req.field.shape());
        assert_eq!(back.field.as_slice(), req.field.as_slice());
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response {
            request_id: 7,
            status: Status::Degraded,
            reject: Some(RejectReason::DeadlineExceeded),
            reject_code: 0,
            priority: Priority::Bulk,
            generation: 3,
            latency_ns: 1_234_567,
            trace_id: 0xFEED_F00D,
            precision: Some(Precision::F32),
            npy: 2,
            npx: 3,
            bins: vec![0, 1, 2, 3, 0, 1],
            scores: vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6],
        };
        let body = encode_response(&resp);
        let back = decode_response(&body).unwrap();
        assert_eq!(back.request_id, 7);
        assert_eq!(back.status, Status::Degraded);
        assert_eq!(back.reject, Some(RejectReason::DeadlineExceeded));
        assert_eq!(back.priority, Priority::Bulk);
        assert_eq!(back.generation, 3);
        assert_eq!(back.latency_ns, 1_234_567);
        assert_eq!(back.trace_id, 0xFEED_F00D);
        assert_eq!(back.precision, Some(Precision::F32));
        assert_eq!((back.npy, back.npx), (2, 3));
        assert_eq!(back.bins, resp.bins);
        assert_eq!(back.scores, resp.scores);
    }

    #[test]
    fn bad_magic_version_kind_are_typed() {
        let req = sample_request();
        let mut body = encode_request(&req);
        body[0] = b'X';
        assert_eq!(decode_request(&body).unwrap_err(), DecodeError::BadMagic);

        let mut body = encode_request(&req);
        body[4] = 9;
        assert_eq!(
            decode_request(&body).unwrap_err(),
            DecodeError::BadVersion(9)
        );

        let body = encode_request(&req);
        // A request body is not a response body.
        assert_eq!(
            decode_response(&body).unwrap_err(),
            DecodeError::BadKind(KIND_REQUEST)
        );
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let req = sample_request();
        let body = encode_request(&req);
        assert_eq!(
            decode_request(&body[..body.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        );
        let mut padded = body.clone();
        padded.push(0);
        assert_eq!(decode_request(&padded).unwrap_err(), DecodeError::Truncated);
    }

    /// Byte offset of the request's precision byte (first
    /// formerly-reserved byte after the priority class).
    const REQ_PRECISION_AT: usize = 16 + 8 + 1;
    /// Byte offset of the response's precision byte (formerly-reserved
    /// byte after the priority class).
    const RESP_PRECISION_AT: usize = 16 + 3;

    /// Re-encode a version-3 body as its version-1 layout: flip the
    /// version byte, zero the precision byte (reserved pre-v3), and
    /// splice out the 8-byte trace-id field at `trace_at`. This is
    /// byte-for-byte what a v1 peer sends.
    fn downgrade(body: &[u8], precision_at: usize, trace_at: usize) -> Vec<u8> {
        let mut v1 = body.to_vec();
        v1[4] = 1;
        v1[precision_at] = 0;
        v1.drain(trace_at..trace_at + 8);
        v1
    }

    #[test]
    fn version1_request_still_decodes() {
        let req = sample_request();
        let v1 = downgrade(&encode_request(&req), REQ_PRECISION_AT, 16 + 8 + 1 + 3 + 4);
        let back = decode_request(&v1).expect("v1 request must decode");
        assert_eq!(back.request_id, req.request_id);
        assert_eq!(back.tenant, req.tenant);
        assert_eq!(back.priority, req.priority);
        assert_eq!(back.deadline_ms, req.deadline_ms);
        assert_eq!(back.trace_id, 0, "v1 has no trace id; decodes as none");
        assert_eq!(back.precision, None, "v1 has no precision request");
        assert_eq!(back.field.as_slice(), req.field.as_slice());
    }

    #[test]
    fn version1_response_still_decodes() {
        let resp = Response {
            request_id: 9,
            status: Status::Full,
            reject: None,
            reject_code: 0,
            priority: Priority::Standard,
            generation: 5,
            latency_ns: 42,
            trace_id: 0xAB,
            precision: Some(Precision::Bf16),
            npy: 1,
            npx: 2,
            bins: vec![1, 0],
            scores: vec![0.5, -0.5],
        };
        let v1 = downgrade(&encode_response(&resp), RESP_PRECISION_AT, 16 + 4 + 8 + 8);
        let back = decode_response(&v1).expect("v1 response must decode");
        assert_eq!(back.request_id, 9);
        assert_eq!(back.latency_ns, 42);
        assert_eq!(back.trace_id, 0);
        assert_eq!(back.precision, None);
        assert_eq!(back.bins, resp.bins);
    }

    /// A version-2 body is byte-for-byte a version-3 body with the
    /// version flipped — the precision byte was reserved then. It must
    /// decode as "default plane", and whatever junk a v2 peer left
    /// there must be ignored, never validated.
    #[test]
    fn version2_request_decodes_precision_as_default() {
        let req = sample_request();
        let mut v2 = encode_request(&req);
        v2[4] = 2;
        // sample_request encodes precision = bf16 = 2 at this offset; a
        // v2 decode must not interpret it. Also try a byte no v3 peer
        // could send, proving the field is skipped, not validated.
        for junk in [v2[REQ_PRECISION_AT], 0, 0xFF] {
            v2[REQ_PRECISION_AT] = junk;
            let back = decode_request(&v2).expect("v2 request must decode");
            assert_eq!(back.precision, None);
            assert_eq!(back.trace_id, req.trace_id, "v2 keeps the trace id");
        }
    }

    #[test]
    fn bad_precision_byte_is_typed() {
        let req = sample_request();
        let mut body = encode_request(&req);
        body[REQ_PRECISION_AT] = 0xFF;
        assert_eq!(
            decode_request(&body).unwrap_err(),
            DecodeError::BadPrecision(0xFF)
        );
    }

    #[test]
    fn zero_dims_rejected() {
        let req = sample_request();
        let mut body = encode_request(&req);
        // c extent lives right after the 16B header + 8B tenant + 1B
        // priority + 3B reserved + 4B deadline + 8B trace id.
        let dims_at = 16 + 8 + 1 + 3 + 4 + 8;
        body[dims_at] = 0;
        body[dims_at + 1] = 0;
        assert_eq!(decode_request(&body).unwrap_err(), DecodeError::ZeroDim);
    }
}
