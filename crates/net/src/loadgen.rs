//! Closed-loop TCP load generator with per-lane latency percentiles.
//!
//! Mirrors `adarnet_serve::loadgen` but drives the server over real
//! loopback TCP through [`NetClient`]s: each client spec spawns its own
//! connections (one per client thread), sends its requests
//! sequentially, and records *client-observed* wall-clock latency —
//! codec + socket + queue + inference, the number a remote caller
//! actually sees. Results aggregate per lane, which is what the
//! priority scheduler's acceptance criterion (interactive p99 under a
//! bulk-heavy mix) is stated over.

use std::net::SocketAddr;
use std::time::Instant;

use adarnet_serve::{Priority, RejectBreakdown, RejectReason, NUM_LANES};
use adarnet_tensor::Tensor;
use serde::Serialize;

use crate::client::NetClient;
use crate::proto::Status;

/// One class of synthetic clients.
#[derive(Clone)]
pub struct ClientSpec {
    /// Tenant id stamped on every request.
    pub tenant: u64,
    /// Lane requested.
    pub priority: Priority,
    /// Concurrent connections running this spec.
    pub connections: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Deadline budget per request, ms (0 = none).
    pub deadline_ms: u32,
    /// Fields cycled round-robin by each connection.
    pub fields: Vec<Tensor<f32>>,
}

/// Latency/outcome aggregate for one lane.
#[derive(Debug, Clone, Serialize)]
pub struct LaneReport {
    /// Lane name (`interactive` / `standard` / `bulk`).
    pub lane: String,
    /// Requests issued on this lane.
    pub requests: usize,
    /// Fully-inferred responses.
    pub full: u64,
    /// Degraded responses (shed or browned out).
    pub degraded: u64,
    /// Protocol-error responses.
    pub errors: u64,
    /// Per-reason breakdown of the degraded responses on this lane.
    pub rejects: RejectBreakdown,
    /// Client-observed latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// See `p50_ms`.
    pub p95_ms: f64,
    /// See `p50_ms`.
    pub p99_ms: f64,
    /// See `p50_ms`.
    pub max_ms: f64,
}

/// Whole-run aggregate.
#[derive(Debug, Clone, Serialize)]
pub struct TcpLoadReport {
    /// Wall-clock duration of the whole run, seconds.
    pub elapsed_s: f64,
    /// Aggregate throughput, requests per second.
    pub throughput_rps: f64,
    /// Trace id (hex) of the slowest request any client observed, for
    /// lookup under `/traces` on the admin endpoint (`"0"` if none).
    pub slowest_trace: String,
    /// Per-lane breakdown (lanes with zero requests are omitted).
    pub lanes: Vec<LaneReport>,
}

/// Nearest-rank percentile of a sorted window, in milliseconds.
fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1e6
}

struct LaneAccum {
    latencies_ns: Vec<u64>,
    full: u64,
    degraded: u64,
    errors: u64,
    rejects: RejectBreakdown,
}

/// One request's client-side record.
#[derive(Clone, Copy)]
struct Sample {
    lane: usize,
    ns: u64,
    status: Status,
    reject: Option<RejectReason>,
    trace_id: u64,
}

/// Run every spec's connections concurrently against `addr`, blocking
/// until all requests are answered. Panics only on setup failure
/// (connect refused), which is what a load-test harness wants.
pub fn run_tcp_closed_loop(addr: SocketAddr, specs: &[ClientSpec]) -> TcpLoadReport {
    let started = Instant::now();
    let mut per_thread: Vec<Vec<Sample>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for spec in specs {
            for conn in 0..spec.connections.max(1) {
                let spec = spec.clone();
                handles.push(scope.spawn(move || {
                    let mut client = match NetClient::connect(addr) {
                        Ok(c) => c,
                        Err(_) => {
                            // Setup failure: no samples; the caller sees
                            // the shortfall in per-lane request counts.
                            adarnet_obs::counter!("net_loadgen_connect_errors_total").inc();
                            return Vec::new();
                        }
                    };
                    let mut samples = Vec::with_capacity(spec.requests);
                    for r in 0..spec.requests {
                        let field = spec.fields[(conn + r) % spec.fields.len()].clone();
                        let sent = Instant::now();
                        match client.infer(field, spec.priority, spec.tenant, spec.deadline_ms) {
                            Ok(resp) => samples.push(Sample {
                                lane: spec.priority.index(),
                                ns: sent.elapsed().as_nanos() as u64,
                                status: resp.status,
                                reject: resp.reject,
                                trace_id: resp.trace_id,
                            }),
                            Err(_) => {
                                adarnet_obs::counter!("net_loadgen_request_errors_total").inc();
                                return samples;
                            }
                        }
                    }
                    samples
                }));
            }
        }
        for h in handles {
            if let Ok(samples) = h.join() {
                per_thread.push(samples);
            }
        }
    });
    let elapsed = started.elapsed();

    let mut accums: Vec<LaneAccum> = (0..NUM_LANES)
        .map(|_| LaneAccum {
            latencies_ns: Vec::new(),
            full: 0,
            degraded: 0,
            errors: 0,
            rejects: RejectBreakdown::default(),
        })
        .collect();
    let mut total = 0usize;
    let mut slowest: Option<(u64, u64)> = None; // (latency_ns, trace_id)
    for samples in &per_thread {
        for &s in samples {
            total += 1;
            let a = &mut accums[s.lane];
            a.latencies_ns.push(s.ns);
            match s.status {
                Status::Full => a.full += 1,
                Status::Degraded => a.degraded += 1,
                Status::Error => a.errors += 1,
            }
            match s.reject {
                Some(RejectReason::QueueFull) => a.rejects.queue_full += 1,
                Some(RejectReason::QuotaExceeded) => a.rejects.quota_exceeded += 1,
                Some(RejectReason::DeadlineExceeded) => a.rejects.deadline_exceeded += 1,
                Some(RejectReason::Shutdown) => a.rejects.shutdown += 1,
                Some(RejectReason::InferenceError) => a.rejects.inference_error += 1,
                None => {}
            }
            if s.trace_id != 0 && slowest.is_none_or(|(ns, _)| s.ns > ns) {
                slowest = Some((s.ns, s.trace_id));
            }
        }
    }

    let lanes = Priority::ALL
        .iter()
        .zip(accums.iter_mut())
        .filter(|(_, a)| !a.latencies_ns.is_empty())
        .map(|(p, a)| {
            a.latencies_ns.sort_unstable();
            LaneReport {
                lane: p.as_str().to_string(),
                requests: a.latencies_ns.len(),
                full: a.full,
                degraded: a.degraded,
                errors: a.errors,
                rejects: a.rejects,
                p50_ms: percentile_ms(&a.latencies_ns, 50.0),
                p95_ms: percentile_ms(&a.latencies_ns, 95.0),
                p99_ms: percentile_ms(&a.latencies_ns, 99.0),
                max_ms: a.latencies_ns.last().map_or(0.0, |&ns| ns as f64 / 1e6),
            }
        })
        .collect();

    TcpLoadReport {
        elapsed_s: elapsed.as_secs_f64(),
        throughput_rps: total as f64 / elapsed.as_secs_f64().max(1e-9),
        slowest_trace: slowest.map_or_else(|| String::from("0"), |(_, t)| format!("{t:016x}")),
        lanes,
    }
}

impl TcpLoadReport {
    /// The report for one lane, if it saw traffic.
    pub fn lane(&self, priority: Priority) -> Option<&LaneReport> {
        self.lanes.iter().find(|l| l.lane == priority.as_str())
    }
}
