//! Length-prefixed frames with a CRC32 trailer.
//!
//! On the wire, one frame is:
//!
//! ```text
//! u32 LE  body length N          (bounded by MAX_FRAME)
//! [u8;N]  body                   (see proto.rs for the body layout)
//! u32 LE  CRC32 (IEEE) of body
//! ```
//!
//! The length prefix is validated *before* any allocation, and the CRC
//! before any byte of the body is interpreted, so a corrupted or
//! truncated stream fails closed: every [`FrameError`] is
//! connection-fatal by design (there is no way to resynchronize a
//! byte stream after a bad length), while *semantic* problems inside a
//! well-framed body are request-level ([`crate::proto::DecodeError`])
//! and answered with a typed error response instead.

use std::io::{Read, Write};

/// Hard bound on one frame's body, bytes. A 4-channel 1024×4096 f32
/// field is 64 MiB; frames beyond that are rejected without
/// allocation (a hostile length prefix cannot OOM the server).
pub const MAX_FRAME: usize = 64 << 20;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket/stream error (includes EOF mid-frame).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge {
        /// Claimed body length.
        len: usize,
        /// The enforced bound.
        max: usize,
    },
    /// The CRC32 trailer does not match the received body.
    CrcMismatch {
        /// CRC computed over the received body.
        computed: u32,
        /// CRC carried by the frame.
        received: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame body {len} B exceeds limit {max} B")
            }
            FrameError::CrcMismatch { computed, received } => write!(
                f,
                "frame CRC mismatch: computed {computed:#010x}, received {received:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is an idle read timing out (the server's shutdown
    /// poll), as opposed to a real protocol violation.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }

    /// Whether this is the peer closing the connection cleanly between
    /// frames (EOF at a frame boundary).
    pub fn is_clean_eof(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof
        )
    }
}

/// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup table,
/// built at compile time — no runtime init, no dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Write one frame (length prefix + body + CRC trailer) and flush.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), FrameError> {
    if body.len() > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len: body.len(),
            max: MAX_FRAME,
        });
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.write_all(&crc32(body).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read one frame, validating the length bound before allocating and
/// the CRC before returning the body.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let received = u32::from_le_bytes(crc_bytes);
    let computed = crc32(&body);
    if computed != received {
        return Err(FrameError::CrcMismatch { computed, received });
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let body = b"hello adarnet".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        assert_eq!(wire.len(), 4 + body.len() + 4);
        let back = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back, body);
    }

    #[test]
    fn corrupt_body_is_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload bytes").unwrap();
        wire[7] ^= 0x40;
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::CrcMismatch { .. }) => {}
            other => panic!("expected CRC mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_trailer_is_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload bytes").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected_without_allocation() {
        let wire = u32::MAX.to_le_bytes();
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"some body").unwrap();
        wire.truncate(wire.len() - 3);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(err.is_clean_eof() || matches!(err, FrameError::Io(_)));
    }
}
