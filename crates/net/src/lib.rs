//! # adarnet-net
//!
//! Wire-protocol front end for the ADARNet inference service
//! (DESIGN.md §13): the layer between real TCP traffic and the
//! priority-lane scheduler in `adarnet-serve`.
//!
//! * **framing** ([`frame`]): length-prefixed binary frames with a
//!   CRC32 trailer — a corrupt or oversized frame is detected before a
//!   single payload byte is interpreted, and closes the connection;
//! * **codec** ([`proto`]): versioned request/response bodies carrying
//!   request id, tenant id, priority class, deadline budget, and the
//!   raw `(C, H, W)` LR field; responses return the refinement
//!   decision map (per-patch bins + scores) rather than the decoded SR
//!   patches, so response size is bounded by the patch grid, not the
//!   upsampling factor;
//! * **server** ([`server`]): a blocking thread-per-connection
//!   listener that decodes requests, submits them through
//!   [`adarnet_serve::Server::submit_with`] (priority lane, tenant
//!   quota, deadline — the full admission state machine), and answers
//!   with the typed [`adarnet_serve::RejectReason`] when a request is
//!   shed or browned out;
//! * **client** ([`client`]): a blocking request/response client;
//! * **load generation** ([`loadgen`]): a closed-loop TCP driver with
//!   per-lane latency percentiles (the `net-serve` bin's bench mode
//!   writes them into `BENCH_serve.json`);
//! * **admin endpoint** ([`admin`]): a second, read-only listener
//!   serving `/metrics` (exposition text), `/traces` (tail-sampled
//!   span trees as JSON), and `/health` over the same framing.

pub mod admin;
pub mod client;
pub mod frame;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use admin::{AdminClient, AdminServer, ADMIN_NOT_FOUND, ADMIN_OK};
pub use client::NetClient;
pub use frame::{crc32, read_frame, write_frame, FrameError, MAX_FRAME};
pub use loadgen::{run_tcp_closed_loop, ClientSpec, LaneReport, TcpLoadReport};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, DecodeError, Request,
    Response, Status, PROTOCOL_VERSION, REJECT_BAD_REQUEST,
};
pub use server::{NetServer, NetServerError};
