//! TCP serving driver: stand up the full stack (model → serve →
//! net) on loopback or a given address, and measure the priority
//! scheduler under mixed tenant load.
//!
//! Subcommands:
//!
//! * `net-serve smoke` — loopback end-to-end smoke: start a server on
//!   an ephemeral port, drive a small mixed load through the TCP
//!   loadgen, verify every lane completed and a corrupt frame is
//!   rejected. Exit code 0 on success (the CI net stage).
//! * `net-serve serve [ADDR]` — run a server (default
//!   `127.0.0.1:7878`) until killed, printing the bound address.
//! * `net-serve bench` — the lanes-vs-FIFO acceptance benchmark: the
//!   same interactive + bulk tenant mix through (a) the 3-lane
//!   weighted-deficit scheduler and (b) a FIFO-only configuration,
//!   reporting per-lane p50/p95/p99 and merging a `tcp_lanes` object
//!   into `BENCH_serve.json` (path from `ADARNET_SERVE_OUT`).
//! * `net-serve admin-smoke` — start the stack plus the admin
//!   listener, push traffic, then verify `/metrics` round-trips
//!   through the exposition parser and `/traces` holds at least one
//!   complete span tree (the CI admin stage).
//! * `net-serve trace-dump [ADMIN_ADDR]` — with an address, fetch
//!   `/traces` from a running admin endpoint and render the retained
//!   span trees; without one, run a small in-process load and render
//!   its traces.
//!
//! Environment knobs: `ADARNET_SERVE_SCALE` (`quick` | `full`),
//! `ADARNET_NET_REQUESTS` (requests per interactive connection),
//! `ADARNET_SERVE_OUT` (bench JSON path, default `BENCH_serve.json`),
//! `ADARNET_ADMIN_ADDR` (admin listener for `serve`, default
//! `127.0.0.1:7879`).

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use adarnet_core::checkpoint;
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig};
use adarnet_net::{
    run_tcp_closed_loop, AdminClient, AdminServer, ClientSpec, NetClient, NetServer, TcpLoadReport,
    ADMIN_OK,
};
use adarnet_serve::{field_pool, ModelRegistry, Priority, QuotaConfig, ServeConfig, Server};
use serde::{Serialize, Value};

fn registry(patch: usize) -> Arc<ModelRegistry> {
    let model = AdarNet::new(AdarNetConfig {
        ph: patch,
        pw: patch,
        seed: 42,
        ..AdarNetConfig::default()
    });
    let registry = Arc::new(ModelRegistry::new());
    registry.register("net", checkpoint::snapshot(&model, &NormStats::identity()));
    registry.activate("net").unwrap();
    registry
}

fn start_stack(cfg: ServeConfig, patch: usize, addr: &str) -> (NetServer, Arc<Server>) {
    let serve = Arc::new(Server::start(cfg, registry(patch)).unwrap());
    let net = NetServer::start(addr, serve.clone()).unwrap();
    (net, serve)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The mixed tenant load both bench sides and the smoke test share:
/// interactive tenants send small fields with a deadline; bulk tenants
/// keep a deep backlog of 4×-the-cells fields queued at all times.
/// `scale` multiplies request counts. Many medium bulk jobs (rather
/// than a few huge ones) keep the single worker's in-flight time short
/// relative to the queue backlog, so *queue order* — the thing the
/// lane scheduler controls — is what separates the two bench modes.
fn mixed_specs(scale: usize, interactive_requests: usize) -> Vec<ClientSpec> {
    // Interactive: small fields, latency-sensitive.
    let small = field_pool(4, 16, 32, 7);
    // Bulk: 4x the cells per request, throughput-oriented.
    let large = field_pool(4, 32, 64, 11);
    vec![
        ClientSpec {
            tenant: 1,
            priority: Priority::Interactive,
            connections: 4,
            requests: interactive_requests * scale,
            deadline_ms: 0,
            fields: small,
        },
        ClientSpec {
            tenant: 2,
            priority: Priority::Bulk,
            connections: 8,
            requests: interactive_requests * scale,
            deadline_ms: 0,
            fields: large,
        },
    ]
}

fn print_report(label: &str, report: &TcpLoadReport) {
    println!(
        "{label}: {:.1} req/s over {:.2}s",
        report.throughput_rps, report.elapsed_s
    );
    for lane in &report.lanes {
        println!(
            "  {:>11}  n={:<4} full={:<4} degraded={:<3} err={:<2} p50 {:>8.2} ms  p95 {:>8.2} ms  p99 {:>8.2} ms  max {:>8.2} ms",
            lane.lane, lane.requests, lane.full, lane.degraded, lane.errors,
            lane.p50_ms, lane.p95_ms, lane.p99_ms, lane.max_ms,
        );
    }
}

fn smoke() {
    let cfg = ServeConfig {
        workers: 1,
        quota: Some(QuotaConfig {
            rate_per_sec: 100_000,
            burst: 100_000,
        }),
        ..ServeConfig::default()
    };
    let (net, serve) = start_stack(cfg, 8, "127.0.0.1:0");
    let addr = net.local_addr();
    println!("smoke: serving on {addr}");

    let specs = mixed_specs(1, env_usize("ADARNET_NET_REQUESTS", 4));
    let report = run_tcp_closed_loop(addr, &specs);
    print_report("smoke mixed load", &report);

    let interactive = report.lane(Priority::Interactive).expect("interactive ran");
    let bulk = report.lane(Priority::Bulk).expect("bulk ran");
    let expect_interactive: usize = specs[0].connections * specs[0].requests;
    let expect_bulk: usize = specs[1].connections * specs[1].requests;
    assert_eq!(
        interactive.requests, expect_interactive,
        "every interactive request must be answered"
    );
    assert_eq!(
        bulk.requests, expect_bulk,
        "every bulk request must be answered (no starvation, no hang)"
    );
    assert_eq!(interactive.errors + bulk.errors, 0, "no protocol errors");

    // Well-framed garbage must come back as a typed error response.
    let mut client = NetClient::connect(addr).unwrap();
    let garbage = vec![0u8; 32];
    let resp = client
        .send_raw(&garbage)
        .expect("framed garbage gets a reply");
    assert_eq!(
        resp.status,
        adarnet_net::Status::Error,
        "typed error expected"
    );

    // A corrupt frame (bad CRC) must close the connection, not hang it.
    {
        use std::io::Write;
        let mut raw = TcpStream::connect(addr).unwrap();
        let body = b"not a real body";
        raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(body).unwrap();
        raw.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap(); // wrong CRC
        raw.flush().unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 1];
        use std::io::Read;
        let n = raw.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server must close the connection on CRC mismatch");
    }

    net.shutdown();
    let stats = Arc::try_unwrap(serve)
        .map(|s| s.shutdown())
        .unwrap_or_else(|arc| arc.stats());
    println!(
        "smoke: completed={} per-lane={:?} shed_total={}",
        stats.completed,
        stats.completed_per_lane,
        stats.shed_total()
    );
    println!("net smoke OK");
}

fn serve_forever(addr: &str) {
    let (net, _serve) = start_stack(ServeConfig::default(), 8, addr);
    let admin_addr =
        std::env::var("ADARNET_ADMIN_ADDR").unwrap_or_else(|_| "127.0.0.1:7879".into());
    let admin = AdminServer::start(&admin_addr).unwrap();
    println!(
        "serving on {} (admin on {}; ctrl-c to stop)",
        net.local_addr(),
        admin.local_addr()
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// CI admin stage: traffic through the data plane, then scrape the
/// admin plane and hold it to its contracts — `/metrics` must
/// round-trip through the exposition parser, `/traces` must hold at
/// least one complete span tree whose spans include the pipeline
/// stages, `/health` must answer.
fn admin_smoke() {
    let (net, serve) = start_stack(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        8,
        "127.0.0.1:0",
    );
    let admin = AdminServer::start("127.0.0.1:0").unwrap();
    println!(
        "admin-smoke: data on {}, admin on {}",
        net.local_addr(),
        admin.local_addr()
    );

    let specs = mixed_specs(1, env_usize("ADARNET_NET_REQUESTS", 4));
    let report = run_tcp_closed_loop(net.local_addr(), &specs);
    print_report("admin-smoke load", &report);
    assert_ne!(
        report.slowest_trace, "0",
        "every loadgen request is traced, so a slowest trace exists"
    );

    let mut client = AdminClient::connect(admin.local_addr()).unwrap();

    let (st, health) = client.get("/health").unwrap();
    assert_eq!(st, ADMIN_OK, "/health: {health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    let (st, text) = client.get("/metrics").unwrap();
    assert_eq!(st, ADMIN_OK);
    let snap = adarnet_obs::text::parse(&text).expect("/metrics parses back");
    let e2e = snap
        .histogram("serve_e2e_ns")
        .expect("serve_e2e_ns histogram present");
    assert!(e2e.count > 0, "e2e histogram saw the load");
    assert!(
        e2e.exemplar.is_some(),
        "traced load leaves a max-latency exemplar"
    );

    let (st, traces) = client.get("/traces").unwrap();
    assert_eq!(st, ADMIN_OK);
    assert!(
        traces.contains("\"complete\":true"),
        "at least one complete span tree: {traces}"
    );
    for name in ["serve_queue_wait", "serve_infer", "stage_decoder"] {
        assert!(
            traces.contains(name),
            "span `{name}` missing from /traces: {traces}"
        );
    }
    // The report's slowest trace is retained by the tail sampler.
    assert!(
        traces.contains(&report.slowest_trace),
        "slowest trace {} not retained",
        report.slowest_trace
    );
    // Per-trace coherence: no span may claim more time than its
    // request's own e2e (guards against charging pre-arrival batcher
    // idle to the first trace after a quiet period).
    for r in adarnet_obs::trace::sampler().snapshot() {
        for s in &r.trace.spans {
            assert!(
                s.dur_ns <= r.trace.e2e_ns,
                "span {} ({} ns) exceeds trace {:016x} e2e ({} ns)",
                s.name,
                s.dur_ns,
                r.trace.trace_id,
                r.trace.e2e_ns
            );
        }
    }

    admin.shutdown();
    net.shutdown();
    drop(serve);
    println!("admin smoke OK");
}

/// Print retained span trees: from a running admin endpoint when an
/// address is given, else from a fresh in-process run.
fn trace_dump(addr: Option<String>) {
    if let Some(addr) = addr {
        let addr: std::net::SocketAddr = addr.parse().expect("ADMIN_ADDR parses");
        let mut client = AdminClient::connect(addr).unwrap();
        let (st, traces) = client.get("/traces").unwrap();
        assert_eq!(st, ADMIN_OK, "{traces}");
        match render_traces_doc(&traces) {
            Ok(rendered) => print!("{rendered}"),
            Err(e) => {
                eprintln!("trace-dump: /traces payload did not parse ({e}); raw document follows");
                println!("{traces}");
            }
        }
        return;
    }
    let (net, serve) = start_stack(ServeConfig::default(), 8, "127.0.0.1:0");
    let specs = mixed_specs(1, env_usize("ADARNET_NET_REQUESTS", 2));
    let _ = run_tcp_closed_loop(net.local_addr(), &specs);
    net.shutdown();
    drop(serve);
    let retained = adarnet_obs::trace::sampler().snapshot();
    println!(
        "{} retained traces ({} offered)",
        retained.len(),
        adarnet_obs::trace::sampler().offers()
    );
    for r in &retained {
        print!("{}", r.trace.render_tree());
    }
}

/// Render the `/traces` JSON document as the same indented span trees
/// the in-process path prints, so the walkthrough reads identically
/// whether the traces came from this process or a remote admin port.
fn render_traces_doc(text: &str) -> Result<String, String> {
    fn get<'v>(fields: &'v [(String, Value)], name: &str) -> Result<&'v Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{name}`"))
    }
    fn int(fields: &[(String, Value)], name: &str) -> Result<i128, String> {
        match get(fields, name)? {
            Value::Int(n) => Ok(*n),
            v => Err(format!("field `{name}` is {}, expected integer", v.kind())),
        }
    }
    fn walk(
        spans: &[&[(String, Value)]],
        parent: i128,
        depth: usize,
        out: &mut String,
    ) -> Result<(), String> {
        for s in spans {
            if int(s, "parent")? != parent {
                continue;
            }
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(&format!(
                "{} {:.3}ms (+{:.3}ms)",
                get(s, "name")?.as_str().unwrap_or("?"),
                int(s, "dur_ns")? as f64 / 1e6,
                int(s, "start_rel_ns")? as f64 / 1e6
            ));
            let field = get(s, "field")?.as_str().unwrap_or("");
            if !field.is_empty() {
                out.push_str(&format!(" {field}={}", int(s, "value")?));
            }
            out.push('\n');
            if depth < spans.len() {
                walk(spans, int(s, "span_id")?, depth + 1, out)?;
            }
        }
        Ok(())
    }
    let doc = serde_json::parse_value(text).map_err(|e| e.to_string())?;
    let top = doc.as_object().ok_or("top level is not an object")?;
    let mut out = format!(
        "{} retained traces ({} offered)\n",
        int(top, "retained")?,
        int(top, "offers")?
    );
    for entry in get(top, "traces")?
        .as_array()
        .ok_or("`traces` is not an array")?
    {
        let entry = entry.as_object().ok_or("trace entry is not an object")?;
        let t = get(entry, "trace")?
            .as_object()
            .ok_or("`trace` is not an object")?;
        out.push_str(&format!(
            "trace {}: e2e {:.3}ms{}{}\n",
            get(t, "trace_id")?.as_str().unwrap_or("?"),
            int(t, "e2e_ns")? as f64 / 1e6,
            if matches!(get(t, "error")?, Value::Bool(true)) {
                " ERROR"
            } else {
                ""
            },
            if matches!(get(t, "complete")?, Value::Bool(true)) {
                ""
            } else {
                " (incomplete)"
            },
        ));
        let spans = get(t, "spans")?
            .as_array()
            .ok_or("`spans` is not an array")?
            .iter()
            .map(|s| s.as_object().ok_or("span is not an object"))
            .collect::<Result<Vec<_>, &str>>()?;
        walk(&spans, 0, 0, &mut out)?;
    }
    Ok(out)
}

#[derive(Serialize)]
struct LanesVsFifo {
    mode: String,
    report: TcpLoadReport,
}

#[derive(Serialize)]
struct TcpLanesBench {
    interactive_connections: usize,
    bulk_connections: usize,
    interactive_requests_per_conn: usize,
    bulk_requests_per_conn: usize,
    lane_weights: [u64; 3],
    runs: Vec<LanesVsFifo>,
    fifo_interactive_p99_ms: f64,
    lanes_interactive_p99_ms: f64,
    interactive_p99_speedup: f64,
    bulk_completed_under_lanes: u64,
}

fn bench() {
    let scale = match std::env::var("ADARNET_SERVE_SCALE").as_deref() {
        Ok("full") => 4,
        _ => 1,
    };
    let interactive_requests = env_usize("ADARNET_NET_REQUESTS", 8);
    let specs = mixed_specs(scale, interactive_requests);

    // Tight queues + single worker + single-request batches: the
    // scheduler, not spare capacity or in-flight batch length, decides
    // who waits. FIFO side funnels everything into one lane.
    let base = ServeConfig {
        queue_capacity: 512,
        max_batch: 1,
        max_linger: Duration::from_millis(0),
        workers: 1,
        cache_capacity: 0,
        ..ServeConfig::default()
    };
    let mut runs = Vec::new();
    let mut fifo_p99 = 0.0f64;
    let mut lanes_p99 = 0.0f64;
    let mut bulk_completed = 0u64;

    for (mode, fifo_only) in [("fifo", true), ("lanes", false)] {
        let cfg = ServeConfig { fifo_only, ..base };
        let (net, serve) = start_stack(cfg, 8, "127.0.0.1:0");
        let report = run_tcp_closed_loop(net.local_addr(), &specs);
        print_report(mode, &report);
        let interactive = report
            .lane(Priority::Interactive)
            .expect("interactive lane saw traffic");
        match mode {
            "fifo" => fifo_p99 = interactive.p99_ms,
            _ => lanes_p99 = interactive.p99_ms,
        }
        net.shutdown();
        let stats = Arc::try_unwrap(serve)
            .map(|s| s.shutdown())
            .unwrap_or_else(|arc| arc.stats());
        if mode == "lanes" {
            bulk_completed = stats.completed_per_lane[Priority::Bulk.index()];
            assert!(
                bulk_completed > 0,
                "bulk lane starved under the weighted scheduler"
            );
        }
        runs.push(LanesVsFifo {
            mode: mode.to_string(),
            report,
        });
    }

    let speedup = if lanes_p99 > 0.0 {
        fifo_p99 / lanes_p99
    } else {
        0.0
    };
    println!(
        "interactive p99: fifo {fifo_p99:.2} ms vs lanes {lanes_p99:.2} ms -> {speedup:.2}x; bulk completed under lanes: {bulk_completed}"
    );

    let bench = TcpLanesBench {
        interactive_connections: specs[0].connections,
        bulk_connections: specs[1].connections,
        interactive_requests_per_conn: specs[0].requests,
        bulk_requests_per_conn: specs[1].requests,
        lane_weights: base.lane_weights,
        runs,
        fifo_interactive_p99_ms: fifo_p99,
        lanes_interactive_p99_ms: lanes_p99,
        interactive_p99_speedup: speedup,
        bulk_completed_under_lanes: bulk_completed,
    };

    let out_path = std::env::var("ADARNET_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    merge_into_bench_json(&out_path, &bench);
    println!("merged tcp_lanes into {out_path}");
}

/// Insert/replace the `tcp_lanes` key in the (existing or fresh)
/// BENCH_serve.json, preserving everything the serve bin wrote.
fn merge_into_bench_json(path: &str, bench: &TcpLanesBench) {
    use serde::Serialize as _;
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::parse_value(&text).ok())
        .unwrap_or(Value::Object(Vec::new()));
    let fields = match &mut doc {
        Value::Object(fields) => fields,
        _ => {
            doc = Value::Object(Vec::new());
            match &mut doc {
                Value::Object(fields) => fields,
                _ => unreachable!(),
            }
        }
    };
    let entry = bench.to_value();
    match fields.iter_mut().find(|(k, _)| k == "tcp_lanes") {
        Some((_, v)) => *v = entry,
        None => fields.push(("tcp_lanes".to_string(), entry)),
    }
    let json = serde_json::to_string_pretty(&doc).expect("bench report serializes");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    adarnet_obs::init();
    let mode = std::env::args().nth(1).unwrap_or_else(|| "smoke".into());
    match mode.as_str() {
        "smoke" => smoke(),
        "serve" => {
            let addr = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "127.0.0.1:7878".into());
            serve_forever(&addr);
        }
        "bench" => bench(),
        "admin-smoke" => admin_smoke(),
        "trace-dump" => trace_dump(std::env::args().nth(2)),
        other => {
            eprintln!(
                "unknown subcommand '{other}' (expected smoke | serve | bench | admin-smoke | trace-dump)"
            );
            std::process::exit(2);
        }
    }
}
