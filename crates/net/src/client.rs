//! Blocking request/response client for the ADARNet wire protocol.

use std::io::BufWriter;
use std::net::TcpStream;

use adarnet_serve::Priority;
use adarnet_tensor::Tensor;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{decode_response, encode_request, Request, Response};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, framing, CRC).
    Frame(FrameError),
    /// The response body failed to decode.
    Decode(crate::proto::DecodeError),
    /// The server echoed a different request id than we sent.
    IdMismatch {
        /// Id we sent.
        sent: u64,
        /// Id that came back.
        received: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "client frame error: {e}"),
            ClientError::Decode(e) => write!(f, "client decode error: {e}"),
            ClientError::IdMismatch { sent, received } => {
                write!(f, "response id {received} does not match request id {sent}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<crate::proto::DecodeError> for ClientError {
    fn from(e: crate::proto::DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// One connection to a [`crate::NetServer`], issuing requests strictly
/// in sequence (the protocol is request/response per connection; use
/// one client per thread for concurrency).
pub struct NetClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl NetClient {
    /// Connect to `addr` (e.g. the value of
    /// [`crate::NetServer::local_addr`]).
    pub fn connect(addr: std::net::SocketAddr) -> Result<NetClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(FrameError::Io)?;
        stream.set_nodelay(true).map_err(FrameError::Io)?;
        let reader = stream.try_clone().map_err(FrameError::Io)?;
        Ok(NetClient {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Send one field for inference and block for the answer. Mints a
    /// fresh trace id so the request is traceable end to end; use
    /// [`NetClient::request`] to pick the id (or send 0 and let the
    /// server mint). Rides the server's default weight plane; use
    /// [`NetClient::infer_at`] to request a precision explicitly.
    pub fn infer(
        &mut self,
        field: Tensor<f32>,
        priority: Priority,
        tenant: u64,
        deadline_ms: u32,
    ) -> Result<Response, ClientError> {
        self.infer_at(field, priority, tenant, deadline_ms, None)
    }

    /// [`NetClient::infer`] with an explicit weight-plane request:
    /// `Some(p)` pins the request to that plane, `None` defers to the
    /// server's routing (tenant override, else server default).
    pub fn infer_at(
        &mut self,
        field: Tensor<f32>,
        priority: Priority,
        tenant: u64,
        deadline_ms: u32,
        precision: Option<adarnet_serve::Precision>,
    ) -> Result<Response, ClientError> {
        let request_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.request(&Request {
            request_id,
            tenant,
            priority,
            deadline_ms,
            trace_id: adarnet_obs::TraceCtx::mint().trace_id,
            precision,
            field,
        })
    }

    /// Send a fully-specified request and block for the answer,
    /// checking the id echo.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(req))?;
        let body = read_frame(&mut self.reader)?;
        let resp = decode_response(&body)?;
        if resp.request_id != req.request_id {
            return Err(ClientError::IdMismatch {
                sent: req.request_id,
                received: resp.request_id,
            });
        }
        Ok(resp)
    }

    /// Send raw bytes as one frame body (protocol-abuse helper for
    /// tests: well-framed garbage must come back as a typed error, not
    /// a hang or a crash).
    pub fn send_raw(&mut self, body: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, body)?;
        let reply = read_frame(&mut self.reader)?;
        Ok(decode_response(&reply)?)
    }
}
