//! Blocking thread-per-connection TCP front end over
//! [`adarnet_serve::Server`].
//!
//! One acceptor thread takes connections; each connection gets its own
//! handler thread running a strict request→response loop (one request
//! in flight per connection — concurrency comes from connection count,
//! which is exactly the closed-loop load model the serve stack is
//! tuned for). Per frame:
//!
//! * **framing errors** (bad CRC, hostile length) close the connection
//!   — a byte stream cannot be resynchronized after corruption;
//! * **decode errors** (bad version, zero dims, truncated body) answer
//!   with a `status = error` / `bad_request` response and keep the
//!   connection — the framing layer proved the bytes arrived intact;
//! * **out-of-contract fields** (wrong channel count, extents the
//!   patch grid cannot tile) get the same typed `bad_request` and are
//!   never submitted — the serve stack asserts its geometry, so a
//!   hostile shape reaching a worker would panic it and wedge the
//!   data plane;
//! * **valid requests** run the full admission state machine via
//!   [`adarnet_serve::Server::submit_with`]: deadline check, tenant
//!   token bucket, lane push — and the response carries the typed
//!   [`adarnet_serve::RejectReason`] when degraded.
//!
//! Shutdown: handler threads poll a flag via a read timeout, the
//! acceptor is woken by a loopback connection, and every thread is
//! joined before `shutdown()` returns — no detached threads touch the
//! serve stack after it stops.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adarnet_obs::TraceCtx;
use adarnet_serve::{ServeResponse, Server, SubmitOptions};

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{decode_request, encode_response, Response, Status, REJECT_BAD_REQUEST};

/// How often an idle connection handler wakes to check the shutdown
/// flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Why the net server could not start.
#[derive(Debug)]
pub enum NetServerError {
    /// Could not bind or inspect the listening socket.
    Io(std::io::Error),
}

impl std::fmt::Display for NetServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetServerError::Io(e) => write!(f, "net server i/o error: {e}"),
        }
    }
}

impl std::error::Error for NetServerError {}

impl From<std::io::Error> for NetServerError {
    fn from(e: std::io::Error) -> Self {
        NetServerError::Io(e)
    }
}

struct NetShared {
    serve: Arc<Server>,
    shutdown: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A running TCP listener feeding the serve stack.
pub struct NetServer {
    shared: Arc<NetShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting connections against `serve`.
    pub fn start(addr: &str, serve: Arc<Server>) -> Result<NetServer, NetServerError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            serve,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(NetServer {
            shared,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serve stack behind this listener.
    pub fn serve(&self) -> &Arc<Server> {
        &self.shared.serve
    }

    /// Stop accepting, drain in-flight requests, and join every
    /// connection thread. Does NOT shut down the inner serve stack —
    /// the caller owns that (it may be shared with in-process clients).
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns: Vec<JoinHandle<()>> = {
            let mut guard = adarnet_core::sync::lock(&self.shared.conns);
            guard.drain(..).collect()
        };
        for conn in conns {
            let _ = conn.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<NetShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        adarnet_obs::counter!("net_connections_total").inc();
        let handler = {
            let shared = shared.clone();
            std::thread::spawn(move || connection_loop(stream, shared))
        };
        adarnet_core::sync::lock(&shared.conns).push(handler);
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<NetShared>) {
    // A finite read timeout turns an idle blocking read into a
    // shutdown-flag poll; everything else is plain blocking i/o.
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(body) => body,
            Err(e) if e.is_timeout() => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(e) => {
                if !e.is_clean_eof() {
                    adarnet_obs::counter!("net_frame_errors_total").inc();
                    adarnet_obs::recorder().record(
                        adarnet_obs::EventKind::Shed,
                        "net_frame_error",
                        match e {
                            FrameError::Io(_) => "io",
                            FrameError::TooLarge { .. } => "too_large",
                            FrameError::CrcMismatch { .. } => "crc_mismatch",
                        },
                        0,
                        0,
                    );
                }
                return; // framing broken or peer gone: close
            }
        };
        adarnet_obs::counter!("net_frames_rx_total").inc();
        let started = Instant::now();
        let response = match decode_request(&body) {
            // Decoded but outside the model's input contract (wrong
            // channel count, or extents the patch grid cannot tile):
            // typed bad-request, never submitted — the serve stack
            // asserts its geometry and must not see hostile shapes.
            Ok(req) if !shared.serve.field_matches_model(&req.field) => {
                adarnet_obs::counter!("net_bad_requests_total").inc();
                bad_request_response(req.request_id)
            }
            Ok(req) => {
                let deadline = if req.deadline_ms == 0 {
                    None
                } else {
                    Some(started + Duration::from_millis(u64::from(req.deadline_ms)))
                };
                // Client-sent trace id, or a locally minted one for v1
                // (and trace-less v2) peers — every request is
                // traceable either way.
                let ctx = TraceCtx::from_wire(req.trace_id).unwrap_or_else(TraceCtx::mint);
                let opts = SubmitOptions {
                    priority: req.priority,
                    tenant: req.tenant,
                    deadline,
                    trace: Some(ctx),
                    precision: req.precision,
                };
                let served = shared.serve.submit_wait_with(req.field, opts);
                response_from_serve(req.request_id, &served)
            }
            Err(_) => {
                adarnet_obs::counter!("net_bad_requests_total").inc();
                bad_request_response(request_id_hint(&body))
            }
        };
        adarnet_obs::histogram!("net_request_ns").record(started.elapsed().as_nanos() as u64);
        let encoded = encode_response(&response);
        if write_frame(&mut writer, &encoded).is_err() {
            return; // peer gone mid-reply
        }
        adarnet_obs::counter!("net_frames_tx_total").inc();
    }
}

/// Best-effort request-id recovery from a body that failed to decode
/// (the id sits at a fixed offset, so even a semantically-invalid body
/// usually still carries it — letting the client correlate the error).
fn request_id_hint(body: &[u8]) -> u64 {
    match body.get(8..16) {
        Some(b) => u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]),
        None => 0,
    }
}

fn bad_request_response(request_id: u64) -> Response {
    Response {
        request_id,
        status: Status::Error,
        reject: None,
        reject_code: REJECT_BAD_REQUEST,
        priority: adarnet_serve::Priority::Standard,
        generation: 0,
        latency_ns: 0,
        trace_id: 0,
        precision: None,
        npy: 0,
        npx: 0,
        bins: Vec::new(),
        scores: Vec::new(),
    }
}

/// Lower a serve-stack response onto the wire: the refinement decision
/// map (bins + scores over the patch grid), the typed reject reason,
/// and the serving lane.
fn response_from_serve(request_id: u64, served: &ServeResponse) -> Response {
    let npy = served.prediction.layout.npy;
    let npx = served.prediction.layout.npx;
    let cells = npy * npx;
    let mut scores = served.prediction.scores.as_slice().to_vec();
    scores.resize(cells, 0.0);
    let mut bins = served.prediction.binning.bin_of_patch.clone();
    bins.resize(cells, 0);
    Response {
        request_id,
        status: if served.kind.is_degraded() {
            Status::Degraded
        } else {
            Status::Full
        },
        reject: served.kind.reject_reason(),
        reject_code: 0,
        priority: served.priority,
        generation: served.generation,
        latency_ns: served.latency.as_nanos() as u64,
        trace_id: served.trace_id,
        precision: Some(served.precision),
        npy: npy as u16,
        npx: npx as u16,
        bins,
        scores,
    }
}
