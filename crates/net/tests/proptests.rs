//! Property tests for the wire layer: codec round-trip identity on
//! arbitrary requests/responses, frame round-trip, and deterministic
//! rejection of corrupted frames.
//!
//! The corruption property leans on CRC-32's burst-error guarantee:
//! any single flipped byte in the body or the trailer is a burst of at
//! most 8 bits, which CRC-32 detects *always*, not with probability
//! `1 - 2^-32` — so the test can assert a hard `CrcMismatch`, never a
//! flaky one.

use adarnet_net::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameError, Request, Response, Status,
};
use adarnet_serve::{Precision, Priority, RejectReason};
use adarnet_tensor::{Shape, Tensor};
use proptest::prelude::*;

/// Largest field the request property generates: 3 × 7 × 7.
const MAX_CELLS: usize = 3 * 7 * 7;

fn status_from(idx: usize) -> Status {
    match idx % 3 {
        0 => Status::Full,
        1 => Status::Degraded,
        _ => Status::Error,
    }
}

fn precision_from(idx: usize) -> Option<Precision> {
    match idx % 3 {
        0 => None,
        1 => Some(Precision::F32),
        _ => Some(Precision::Bf16),
    }
}

fn reject_from(idx: usize) -> Option<RejectReason> {
    match idx % 6 {
        0 => None,
        1 => Some(RejectReason::QueueFull),
        2 => Some(RejectReason::QuotaExceeded),
        3 => Some(RejectReason::DeadlineExceeded),
        4 => Some(RejectReason::Shutdown),
        _ => Some(RejectReason::InferenceError),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode is the identity on every well-formed request.
    #[test]
    fn request_roundtrip(
        request_id in 0u64..u64::MAX,
        tenant in 0u64..1_000_000,
        pr in 0usize..3,
        deadline_ms in 0u32..600_000,
        trace_id in 0u64..u64::MAX,
        precision_idx in 0usize..3,
        c in 1usize..=3,
        h in 1usize..=7,
        w in 1usize..=7,
        raw in prop::collection::vec(-1e3f32..1e3, MAX_CELLS),
    ) {
        let n = c * h * w;
        let req = Request {
            request_id,
            tenant,
            priority: Priority::from_index(pr).unwrap(),
            deadline_ms,
            trace_id,
            precision: precision_from(precision_idx),
            field: Tensor::from_vec(Shape::d3(c, h, w), raw[..n].to_vec()),
        };
        let back = decode_request(&encode_request(&req)).unwrap();
        prop_assert_eq!(back.request_id, req.request_id);
        prop_assert_eq!(back.tenant, req.tenant);
        prop_assert_eq!(back.priority, req.priority);
        prop_assert_eq!(back.deadline_ms, req.deadline_ms);
        prop_assert_eq!(back.trace_id, req.trace_id);
        prop_assert_eq!(back.precision, req.precision);
        prop_assert_eq!(back.field.shape(), req.field.shape());
        prop_assert_eq!(back.field.as_slice(), req.field.as_slice());

        // The same request re-laid-out as a version-1 body (no
        // trace-id field, precision byte reserved-zero) still decodes,
        // with the trace id defaulting to 0 and no precision request.
        let mut v1 = encode_request(&req);
        v1[4] = 1;
        v1[25] = 0; // 16B header + 8B tenant + 1B priority
        v1.drain(32..40); // 16B header + 8B tenant + 4B pri/pad + 4B deadline
        let old = decode_request(&v1).unwrap();
        prop_assert_eq!(old.trace_id, 0);
        prop_assert_eq!(old.precision, None);
        prop_assert_eq!(old.request_id, req.request_id);
        prop_assert_eq!(old.field.as_slice(), req.field.as_slice());
    }

    /// encode → decode is the identity on every well-formed response.
    #[test]
    fn response_roundtrip(
        request_id in 0u64..u64::MAX,
        status_idx in 0usize..3,
        reject_idx in 0usize..6,
        pr in 0usize..3,
        generation in 0u64..1_000,
        latency_ns in 0u64..u64::MAX,
        trace_id in 0u64..u64::MAX,
        precision_idx in 0usize..3,
        npy in 1u16..=5,
        npx in 1u16..=5,
        raw_bins in prop::collection::vec(0u8..=3, 25),
        raw_scores in prop::collection::vec(-10.0f32..10.0, 25),
    ) {
        let cells = npy as usize * npx as usize;
        let resp = Response {
            request_id,
            status: status_from(status_idx),
            reject: reject_from(reject_idx),
            reject_code: 0,
            priority: Priority::from_index(pr).unwrap(),
            generation,
            latency_ns,
            trace_id,
            precision: precision_from(precision_idx),
            npy,
            npx,
            bins: raw_bins[..cells].to_vec(),
            scores: raw_scores[..cells].to_vec(),
        };
        let back = decode_response(&encode_response(&resp)).unwrap();
        prop_assert_eq!(back.request_id, resp.request_id);
        prop_assert_eq!(back.status, resp.status);
        prop_assert_eq!(back.reject, resp.reject);
        prop_assert_eq!(back.priority, resp.priority);
        prop_assert_eq!(back.generation, resp.generation);
        prop_assert_eq!(back.latency_ns, resp.latency_ns);
        prop_assert_eq!(back.trace_id, resp.trace_id);
        prop_assert_eq!(back.precision, resp.precision);
        prop_assert_eq!((back.npy, back.npx), (resp.npy, resp.npx));
        prop_assert_eq!(back.bins, resp.bins);
        prop_assert_eq!(back.scores, resp.scores);
    }

    /// write_frame → read_frame returns the body bit-exactly.
    #[test]
    fn frame_roundtrip(body in prop::collection::vec(0u8..=255, 0..256)) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        let back = read_frame(&mut framed.as_slice()).unwrap();
        prop_assert_eq!(back, body);
    }

    /// Flipping any byte of the body or the CRC trailer is always
    /// caught as a CRC mismatch — never decoded, never accepted.
    #[test]
    fn corrupt_frame_rejected(
        body in prop::collection::vec(0u8..=255, 1..128),
        flip_at in 0usize..4096,
        flip_mask in 1u8..=255,
    ) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        // Corrupt anywhere past the 4-byte length prefix (prefix
        // corruption de-frames the stream entirely; unit tests cover
        // the hostile-length path).
        let idx = 4 + flip_at % (framed.len() - 4);
        framed[idx] ^= flip_mask;
        let err = read_frame(&mut framed.as_slice()).unwrap_err();
        prop_assert!(matches!(err, FrameError::CrcMismatch { .. }), "{}", err);
    }

    /// A truncated stream (any strict prefix of a frame) fails with a
    /// typed I/O error instead of blocking or mis-parsing.
    #[test]
    fn truncated_frame_rejected(
        body in prop::collection::vec(0u8..=255, 1..64),
        cut in 0usize..4096,
    ) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        let keep = cut % (framed.len() - 1); // strictly shorter
        let err = read_frame(&mut &framed[..keep]).unwrap_err();
        prop_assert!(matches!(err, FrameError::Io(_)), "{}", err);
    }
}
