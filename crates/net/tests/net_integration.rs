//! Loopback end-to-end tests: the full stack (model → serve →
//! net) over real TCP on an ephemeral port.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use adarnet_core::checkpoint;
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig};
use adarnet_net::{NetClient, NetServer, Status, REJECT_BAD_REQUEST};
use adarnet_serve::{field_pool, ModelRegistry, Priority, RejectReason, ServeConfig, Server};
use adarnet_tensor::{Shape, Tensor};

const PATCH: usize = 8;

fn start_stack(cfg: ServeConfig) -> (NetServer, Arc<Server>) {
    let model = AdarNet::new(AdarNetConfig {
        ph: PATCH,
        pw: PATCH,
        seed: 42,
        ..AdarNetConfig::default()
    });
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        "net-test",
        checkpoint::snapshot(&model, &NormStats::identity()),
    );
    registry.activate("net-test").unwrap();
    let serve = Arc::new(Server::start(cfg, registry).unwrap());
    let net = NetServer::start("127.0.0.1:0", serve.clone()).unwrap();
    (net, serve)
}

fn finish(net: NetServer, serve: Arc<Server>) -> adarnet_serve::ServeStats {
    net.shutdown();
    Arc::try_unwrap(serve)
        .map(|s| s.shutdown())
        .unwrap_or_else(|arc| arc.stats())
}

#[test]
fn full_inference_roundtrip_over_loopback() {
    let (net, serve) = start_stack(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = net.local_addr();

    let fields = field_pool(2, 16, 32, 7);
    let mut client = NetClient::connect(addr).unwrap();
    for (i, field) in fields.iter().enumerate() {
        let resp = client
            .infer(field.clone(), Priority::Interactive, 3, 0)
            .unwrap();
        assert_eq!(resp.status, Status::Full, "request {i} must fully infer");
        assert_eq!(resp.reject, None);
        assert_eq!(resp.priority, Priority::Interactive, "lane echo");
        assert!(resp.generation > 0, "a live model generation");
        // 16×32 field over 8×8 patches: a 2×4 decision grid.
        assert_eq!((resp.npy, resp.npx), (2, 4), "patch grid extents");
        let cells = resp.npy as usize * resp.npx as usize;
        assert_eq!(resp.bins.len(), cells, "one bin per patch");
        assert_eq!(resp.scores.len(), cells, "one score per patch");
        assert!(resp.bins.iter().all(|&b| b <= 3), "bins within range");
    }

    let stats = finish(net, serve);
    assert_eq!(stats.completed, fields.len() as u64);
    assert_eq!(
        stats.completed_per_lane[Priority::Interactive.index()],
        fields.len() as u64,
        "all traffic rode the interactive lane"
    );
    assert_eq!(stats.shed_total(), 0);
}

#[test]
fn malformed_body_gets_typed_error_and_connection_survives() {
    let (net, serve) = start_stack(ServeConfig::default());
    let mut client = NetClient::connect(net.local_addr()).unwrap();

    // Well-framed garbage: typed error response, not a hang or close.
    let resp = client.send_raw(&[0u8; 48]).unwrap();
    assert_eq!(resp.status, Status::Error);
    assert_eq!(resp.reject_code, REJECT_BAD_REQUEST);
    assert_eq!((resp.npy, resp.npx), (0, 0), "no decision grid on error");

    // The same connection still serves real requests afterwards.
    let field = field_pool(1, 16, 16, 5).remove(0);
    let resp = client.infer(field, Priority::Standard, 1, 0).unwrap();
    assert_eq!(resp.status, Status::Full, "connection survived bad request");

    finish(net, serve);
}

#[test]
fn out_of_contract_field_is_rejected_without_killing_workers() {
    // A field that decodes fine but violates the model's input contract
    // (wrong channel count, or extents the patch grid cannot tile) must
    // be answered as a typed bad-request at the net boundary — the
    // serve stack asserts its geometry, so letting such a field through
    // would panic a worker and wedge the data plane.
    let (net, serve) = start_stack(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = NetClient::connect(net.local_addr()).unwrap();

    let wrong_channels = Tensor::from_vec(Shape::d3(1, 16, 32), vec![0.0; 16 * 32]);
    let untileable = Tensor::from_vec(Shape::d3(4, 12, 32), vec![0.0; 4 * 12 * 32]);
    for (label, field) in [("channels", wrong_channels), ("tiling", untileable)] {
        let resp = client.infer(field, Priority::Standard, 1, 0).unwrap();
        assert_eq!(resp.status, Status::Error, "{label}: typed error");
        assert_eq!(resp.reject_code, REJECT_BAD_REQUEST, "{label}");
        assert_eq!((resp.npy, resp.npx), (0, 0), "{label}: no decision grid");
    }

    // The single worker never saw the bad fields: the same connection
    // still gets full inference afterwards.
    let field = field_pool(1, 16, 32, 5).remove(0);
    let resp = client.infer(field, Priority::Standard, 1, 0).unwrap();
    assert_eq!(resp.status, Status::Full, "worker survived");

    let stats = finish(net, serve);
    assert_eq!(stats.completed, 1, "only the in-contract request ran");
}

#[test]
fn corrupt_frame_closes_connection() {
    let (net, serve) = start_stack(ServeConfig::default());
    let addr = net.local_addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    let body = b"corrupted in flight";
    raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(body).unwrap();
    raw.write_all(&0x1BAD_C0DEu32.to_le_bytes()).unwrap(); // wrong CRC
    raw.flush().unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut buf = [0u8; 1];
    let n = raw.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server must close, not answer, a corrupt frame");

    // The listener itself is unharmed: fresh connections still work.
    let field = field_pool(1, 16, 16, 9).remove(0);
    let mut client = NetClient::connect(addr).unwrap();
    let resp = client.infer(field, Priority::Bulk, 2, 0).unwrap();
    assert_eq!(resp.status, Status::Full);
    assert_eq!(resp.priority, Priority::Bulk);

    finish(net, serve);
}

#[test]
fn wire_deadline_brownout_is_typed() {
    // deadline_ms is a relative budget stamped at frame receipt; with a
    // saturated single worker and a long bulk queue ahead of it, a
    // 1 ms budget cannot survive the queue wait, so the sweep answers
    // with a typed deadline brownout rather than silently dropping it.
    let (net, serve) = start_stack(ServeConfig {
        workers: 1,
        max_batch: 1,
        max_linger: Duration::from_millis(0),
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    let addr = net.local_addr();

    // Saturate the worker from a second connection with bulk work.
    let big = field_pool(2, 24, 32, 11);
    let bulk = std::thread::spawn(move || {
        let mut c = NetClient::connect(addr).unwrap();
        for f in big.iter().cycle().take(3) {
            c.infer(f.clone(), Priority::Bulk, 9, 0).unwrap();
        }
    });

    // Meanwhile, issue tight-deadline requests; at least one must be
    // browned out while the worker grinds through bulk inference.
    let small = field_pool(1, 16, 16, 3).remove(0);
    let mut client = NetClient::connect(addr).unwrap();
    let mut brownouts = 0;
    for _ in 0..4 {
        let resp = client
            .infer(small.clone(), Priority::Interactive, 4, 1)
            .unwrap();
        match resp.status {
            Status::Degraded => {
                assert_eq!(resp.reject, Some(RejectReason::DeadlineExceeded));
                let cells = resp.npy as usize * resp.npx as usize;
                assert!(cells > 0, "brownout still carries a decision grid");
                assert!(resp.bins.iter().all(|&b| b == 0), "brownout is bin-0");
                brownouts += 1;
            }
            Status::Full => {}
            Status::Error => panic!("deadline must brown out, not error"),
        }
    }
    bulk.join().unwrap();
    assert!(brownouts > 0, "a 1 ms budget under load must brown out");

    let stats = finish(net, serve);
    assert_eq!(stats.brownout_deadline, brownouts as u64);
}

#[test]
fn wire_precision_request_routes_and_echoes() {
    use adarnet_serve::Precision;
    let (net, serve) = start_stack(ServeConfig {
        workers: 1,
        default_precision: Precision::F32,
        ..ServeConfig::default()
    });
    let addr = net.local_addr();
    let field = field_pool(1, 16, 32, 5).pop().unwrap();
    let mut client = NetClient::connect(addr).unwrap();

    // Default routing: the server's f32 plane, echoed on the wire.
    let r = client
        .infer(field.clone(), Priority::Standard, 1, 0)
        .unwrap();
    assert_eq!(r.status, Status::Full);
    assert_eq!(r.precision, Some(Precision::F32));

    // A v3 peer pinning bf16 rides the reduced plane; the refinement
    // decisions must match the f32 plane (the accuracy gate's
    // end-to-end contract, observed through TCP).
    let q = client
        .infer_at(
            field.clone(),
            Priority::Standard,
            1,
            0,
            Some(Precision::Bf16),
        )
        .unwrap();
    assert_eq!(q.status, Status::Full);
    assert_eq!(q.precision, Some(Precision::Bf16));
    assert_eq!(q.bins, r.bins, "bf16 plane changed wire-visible bins");

    let stats = finish(net, serve);
    assert_eq!(stats.completed_per_precision[Precision::F32.index()], 1);
    assert_eq!(stats.completed_per_precision[Precision::Bf16.index()], 1);
}
