//! Repo-specific lint rules over token streams.
//!
//! These are rules clippy cannot express because they encode *this*
//! repo's policies (see DESIGN.md §9):
//!
//! * [`no-panic`](RULE_NO_PANIC) — no `unwrap()` / `expect()` /
//!   `panic!`-family macros in non-test library code; failures must be
//!   typed errors (the `RankerError` / `EngineError` direction).
//! * [`float-eq`](RULE_FLOAT_EQ) — no `==`/`!=` against float literals;
//!   a single NaN ranker score silently corrupts the final mesh, so
//!   float comparisons must be explicit (`<=`, epsilon, or integer
//!   restructure).
//! * [`lossy-cast`](RULE_LOSSY_CAST) — no bare float→int `as` casts in
//!   the `nn`/`tensor`/`cfd` kernels; truncation must be spelled
//!   (`.floor()`, `.ceil()`, `.round()`, `.trunc()`) so grid-index
//!   arithmetic cannot silently drop cells. A second arm (every crate)
//!   flags `f32_to_bf16` narrowing outside `crates/nn/src/quantize.rs`:
//!   dropping 16 mantissa bits is quantize's job alone, behind the
//!   accuracy budget — a stray call site elsewhere silently degrades
//!   precision with no gate.
//! * [`lock-order`](RULE_LOCK_ORDER) — in `serve`, no second lock
//!   acquisition while a `Mutex`/`RwLock` guard is held in the same
//!   function (intra-function lexical scan; cross-function interleaving
//!   hazards are the model checker's domain).
//! * [`no-alloc-in-hot-path`](RULE_NO_ALLOC) — in the convolution
//!   kernel file, no allocating constructors (`vec![`, `Vec::new`,
//!   `Vec::with_capacity`, `Tensor::zeros`, `Tensor::full`, `.to_vec()`)
//!   in non-test code; hot-loop buffers come from the
//!   `adarnet_tensor::workspace` pool so steady-state inference stays
//!   allocation-free.
//! * [`no-println`](RULE_NO_PRINTLN) — no `println!` / `eprintln!` /
//!   `print!` / `eprint!` in library code; libraries report through the
//!   obs layer (metrics, flight-recorder marks) or typed returns, never
//!   by writing to the process's stdio behind its back. Binaries
//!   (`src/bin/`) and test code are exempt.
//! * [`unchecked-arith`](RULE_UNCHECKED_ARITH) — in the wire-protocol
//!   parse files, no bare `+`/`*` where an operand is a length
//!   (`.len()`, `count`, `cells`, ...): attacker-influenced sizes must
//!   go through `checked_*`/`saturating_*`, or carry a waiver arguing
//!   the bound (e.g. `MAX_FRAME` gating upstream).
//! * [`relaxed-ordering`](RULE_RELAXED_ORDERING) — `Ordering::Relaxed`
//!   outside `crates/obs` needs a written justification in
//!   `check/allow.toml`: relaxed atomics are fine for monotonic
//!   counters the obs layer owns, but anywhere else each use must
//!   argue why no synchronization edge is being lost.
//! * [`unsafe-code`](RULE_UNSAFE_CODE) — every `unsafe` keyword in
//!   non-test library code needs a written justification in
//!   `check/allow.toml`. The workspace already carries
//!   `unsafe_code = "deny"`, so any file opting out via
//!   `#![allow(unsafe_code)]` (the SIMD micro-kernels, the aligned
//!   workspace buffer) must pair each site with a waiver arguing its
//!   safety contract — the opt-out attribute alone is not enough.
//! * [`span-registry`](RULE_SPAN_REGISTRY) — every observable name
//!   literal (`span!("...")` sites, `trace::arena().begin/record`
//!   names, `RejectReason::X => "tag"` wire tags) must appear in the
//!   central registry `adarnet_obs::names`; a typo'd or unregistered
//!   name silently orphans its dashboard graph. The driver additionally
//!   requires `span!` site names to be unique across the tree — a
//!   second site feeding the same histogram must be waived with an
//!   argument for why the stages are genuinely the same.
//!
//! The rules are token-level heuristics, deliberately conservative in
//! what they flag; anything intentionally kept is waived — with a
//! reason — in `check/allow.toml`.

use std::path::PathBuf;

use crate::lexer::{test_region_mask, tokenize, Tok, TokKind};

/// Rule id for the panic-free-library rule.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule id for the float-equality rule.
pub const RULE_FLOAT_EQ: &str = "float-eq";
/// Rule id for the lossy float→int cast rule.
pub const RULE_LOSSY_CAST: &str = "lossy-cast";
/// Rule id for the lock-ordering hazard rule.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Rule id for the hot-path allocation rule.
pub const RULE_NO_ALLOC: &str = "no-alloc-in-hot-path";
/// Rule id for the no-stdio-in-libraries rule.
pub const RULE_NO_PRINTLN: &str = "no-println";
/// Rule id for the unchecked-length-arithmetic rule.
pub const RULE_UNCHECKED_ARITH: &str = "unchecked-arith";
/// Rule id for the relaxed-atomic-ordering rule.
pub const RULE_RELAXED_ORDERING: &str = "relaxed-ordering";
/// Rule id for the justified-unsafe rule.
pub const RULE_UNSAFE_CODE: &str = "unsafe-code";
/// Rule id for the registered-and-unique observable-names rule.
pub const RULE_SPAN_REGISTRY: &str = "span-registry";

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// The raw source line (for diagnostics and waiver matching).
    pub line_text: String,
}

/// Which rule families apply to a file (decided by the walker from the
/// file's crate).
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// Apply [`RULE_NO_PANIC`] and [`RULE_FLOAT_EQ`] (all library code).
    pub core_rules: bool,
    /// Apply [`RULE_LOSSY_CAST`] (numeric kernel crates).
    pub lossy_cast: bool,
    /// Apply the f32→bf16-narrowing arm of [`RULE_LOSSY_CAST`] (every
    /// crate except the quantize module itself, which is the one place
    /// allowed to narrow).
    pub bf16_narrowing: bool,
    /// Apply [`RULE_LOCK_ORDER`] (concurrent serving crates).
    pub lock_order: bool,
    /// Apply [`RULE_NO_ALLOC`] (designated hot-path kernel files).
    pub no_alloc: bool,
    /// Apply [`RULE_NO_PRINTLN`] (all library code; bins/tests exempt).
    pub no_println: bool,
    /// Apply [`RULE_UNCHECKED_ARITH`] (designated wire-parse files).
    pub unchecked_arith: bool,
    /// Apply [`RULE_RELAXED_ORDERING`] (every crate except `obs`).
    pub relaxed_ordering: bool,
    /// Apply [`RULE_UNSAFE_CODE`] (every crate; the workspace denies
    /// `unsafe_code`, so each opted-out site needs a waiver).
    pub unsafe_code: bool,
    /// Apply [`RULE_SPAN_REGISTRY`] (every crate: observable-name
    /// literals must be registered in `adarnet_obs::names`).
    pub span_registry: bool,
}

/// Lint one file's source, returning all findings.
pub fn lint_source(path: &std::path::Path, src: &str, rules: RuleSet) -> Vec<Finding> {
    let toks = tokenize(src);
    let mask = test_region_mask(&toks);
    let lines: Vec<&str> = src.lines().collect();
    let line_text = |line: usize| -> String {
        lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut out = Vec::new();
    let mut push = |rule: &'static str, line: usize, message: String| {
        out.push(Finding {
            rule,
            path: path.to_path_buf(),
            line,
            message,
            line_text: line_text(line),
        });
    };

    if rules.core_rules {
        scan_no_panic(&toks, &mask, &mut push);
        scan_float_eq(&toks, &mask, &mut push);
    }
    if rules.lossy_cast {
        scan_lossy_cast(&toks, &mask, &mut push);
    }
    if rules.bf16_narrowing {
        scan_bf16_narrowing(&toks, &mask, &mut push);
    }
    if rules.lock_order {
        scan_lock_order(&toks, &mask, &mut push);
    }
    if rules.no_alloc {
        scan_no_alloc(&toks, &mask, &mut push);
    }
    if rules.no_println {
        scan_no_println(&toks, &mask, &mut push);
    }
    if rules.unchecked_arith {
        scan_unchecked_arith(&toks, &mask, &mut push);
    }
    if rules.relaxed_ordering {
        scan_relaxed_ordering(&toks, &mask, &mut push);
    }
    if rules.unsafe_code {
        scan_unsafe_code(&toks, &mask, &mut push);
    }
    if rules.span_registry {
        scan_span_registry(&toks, &mask, &lines, &mut push);
    }
    out
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Stdio-writing macros banned from library code by
/// [`RULE_NO_PRINTLN`].
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

fn scan_no_println(
    toks: &[Tok],
    mask: &[bool],
    push: &mut impl FnMut(&'static str, usize, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let next_bang = i + 1 < toks.len() && toks[i + 1].is_punct("!");
        if next_bang && PRINT_MACROS.contains(&t.text.as_str()) {
            push(
                RULE_NO_PRINTLN,
                t.line,
                format!(
                    "{}! in library code (report via the obs layer or typed returns)",
                    t.text
                ),
            );
        }
    }
}

fn scan_no_panic(toks: &[Tok], mask: &[bool], push: &mut impl FnMut(&'static str, usize, String)) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let next_open = i + 1 < toks.len() && toks[i + 1].is_punct("(");
        let next_bang = i + 1 < toks.len() && toks[i + 1].is_punct("!");
        if prev_dot && next_open && (t.text == "unwrap" || t.text == "expect") {
            push(
                RULE_NO_PANIC,
                t.line,
                format!(".{}() in non-test library code (use typed errors)", t.text),
            );
        } else if next_bang && PANIC_MACROS.contains(&t.text.as_str()) {
            push(
                RULE_NO_PANIC,
                t.line,
                format!("{}! in non-test library code (use typed errors)", t.text),
            );
        }
    }
}

fn scan_float_eq(toks: &[Tok], mask: &[bool], push: &mut impl FnMut(&'static str, usize, String)) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let prev_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        let next_float = i + 1 < toks.len() && toks[i + 1].kind == TokKind::Float;
        // `x == f32::NAN` / `f64::INFINITY` style constants.
        let next_float_path = i + 1 < toks.len()
            && (toks[i + 1].is_ident("f32") || toks[i + 1].is_ident("f64"))
            && i + 2 < toks.len()
            && toks[i + 2].is_punct("::");
        if prev_float || next_float || next_float_path {
            push(
                RULE_FLOAT_EQ,
                t.line,
                format!(
                    "`{}` against a float literal (use <=/>= restructure or an epsilon)",
                    t.text
                ),
            );
        }
    }
}

/// Integer types a float must not be `as`-cast into without an explicit
/// rounding call.
const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];
/// Explicit-rounding methods that make a float→int cast intentional.
const ROUNDING: &[&str] = &["floor", "ceil", "round", "trunc"];
/// Methods whose result is certainly a float (a bare cast after these is
/// a hidden truncation).
const FLOAT_METHODS: &[&str] = &[
    "sqrt",
    "ln",
    "log2",
    "log10",
    "exp",
    "exp2",
    "powf",
    "powi",
    "sin",
    "cos",
    "tan",
    "atan2",
    "hypot",
    "recip",
    "to_degrees",
    "to_radians",
];

fn scan_lossy_cast(
    toks: &[Tok],
    mask: &[bool],
    push: &mut impl FnMut(&'static str, usize, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !t.is_ident("as") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if !(next.kind == TokKind::Ident && INT_TYPES.contains(&next.text.as_str())) {
            continue;
        }
        let Some(prev) = i.checked_sub(1).and_then(|j| toks.get(j)) else {
            continue;
        };
        let flagged = if prev.kind == TokKind::Float {
            true
        } else if prev.is_ident("f32") || prev.is_ident("f64") {
            // `x as f64 as usize`
            true
        } else if prev.is_punct(")") {
            // Method call result: find the callee before the matching `(`.
            match callee_before_close_paren(toks, i - 1) {
                Some(name) if ROUNDING.contains(&name.as_str()) => false,
                Some(name) => FLOAT_METHODS.contains(&name.as_str()),
                None => false,
            }
        } else {
            false
        };
        if flagged {
            push(
                RULE_LOSSY_CAST,
                t.line,
                format!(
                    "float value cast to `{}` without .floor()/.ceil()/.round()/.trunc()",
                    next.text
                ),
            );
        }
    }
}

/// The f32→bf16-narrowing arm of [`RULE_LOSSY_CAST`]: any mention of
/// `f32_to_bf16` (call or import) outside the quantize module. The
/// walker exempts `crates/nn/src/quantize.rs`; everything else either
/// goes through the packed-panel freeze path (which narrows inside
/// quantize) or carries a waiver arguing why an extra narrowing site is
/// budget-safe.
fn scan_bf16_narrowing(
    toks: &[Tok],
    mask: &[bool],
    push: &mut impl FnMut(&'static str, usize, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !t.is_ident("f32_to_bf16") {
            continue;
        }
        push(
            RULE_LOSSY_CAST,
            t.line,
            "f32→bf16 narrowing outside crates/nn/src/quantize.rs — reduced-precision \
             packing happens only at freeze, behind the accuracy budget"
                .to_string(),
        );
    }
}

/// For a `)` at token index `close`, return the method name `m` if the
/// call has the shape `.m( ... )`.
fn callee_before_close_paren(toks: &[Tok], close: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if toks[j].is_punct(")") {
            depth += 1;
        } else if toks[j].is_punct("(") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j = j.checked_sub(1)?;
    }
    // toks[j] is the matching `(`; callee is `.name` right before it.
    let name = j.checked_sub(1).map(|k| &toks[k])?;
    let dot = j.checked_sub(2).map(|k| &toks[k])?;
    if name.kind == TokKind::Ident && dot.is_punct(".") {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Lock acquisition shapes recognized by [`scan_lock_order`]:
/// `.lock(` / `.read(` / `.write(` and the poison-tolerant helpers
/// `sync::lock(` / `sync::read(` / `sync::write(`.
/// (`sync::wait*` re-acquires an existing guard and is not a new lock.)
fn acquisition_at(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "lock" | "read" | "write") {
        return false;
    }
    if !(i + 1 < toks.len() && toks[i + 1].is_punct("(")) {
        return false;
    }
    let Some(prev) = i.checked_sub(1).map(|j| &toks[j]) else {
        return false;
    };
    if prev.is_punct(".") {
        return true;
    }
    prev.is_punct("::") && i >= 2 && toks[i - 2].is_ident("sync")
}

struct HeldGuard {
    name: Option<String>,
    depth: usize,
    /// Temporaries (no `let` binding) die at the end of the statement.
    statement_scoped: bool,
    line: usize,
}

fn scan_lock_order(
    toks: &[Tok],
    mask: &[bool],
    push: &mut impl FnMut(&'static str, usize, String),
) {
    let mut depth = 0usize;
    let mut guards: Vec<HeldGuard> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if t.is_punct(";") {
            guards.retain(|g| !(g.statement_scoped && g.depth == depth));
        } else if t.is_ident("fn") {
            // Guards cannot flow into a nested fn item.
            guards.clear();
        } else if t.is_ident("drop") && i + 2 < toks.len() && toks[i + 1].is_punct("(") {
            if toks[i + 2].kind == TokKind::Ident {
                let dropped = toks[i + 2].text.clone();
                guards.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
            }
        } else if !mask[i] && acquisition_at(toks, i) {
            if let Some(held) = guards.last() {
                push(
                    RULE_LOCK_ORDER,
                    t.line,
                    format!(
                        "lock acquired while guard {} (line {}) is still held — lock-ordering hazard",
                        held.name.as_deref().map(|n| format!("`{n}`")).unwrap_or_else(|| "<temporary>".into()),
                        held.line
                    ),
                );
            }
            // Determine whether this acquisition becomes a held guard:
            // `let g = ....lock();` (binding, lives to end of block) vs a
            // temporary consumed in a longer expression (lives to `;`).
            let binding_name = let_binding_name(toks, i);
            let ends_at_semicolon = acquisition_is_temporary(toks, i);
            guards.push(HeldGuard {
                name: if ends_at_semicolon {
                    None
                } else {
                    binding_name
                },
                depth,
                statement_scoped: ends_at_semicolon,
                line: t.line,
            });
        }
        i += 1;
    }
}

/// Identifiers that name a length or count in the wire-parse files;
/// bare arithmetic on these is what [`RULE_UNCHECKED_ARITH`] flags.
const LEN_IDENTS: &[&str] = &[
    "len",
    "count",
    "cells",
    "size",
    "pos",
    "offset",
    "extent",
    "remaining",
];
/// Method callees whose result is a length (`x.len() * 4`).
const LEN_CALLEES: &[&str] = &["len", "count", "size", "capacity"];

/// Whether the token at `i` ends an operand (so a following `+`/`*` is
/// binary, not unary/deref).
fn ends_operand(t: &Tok) -> bool {
    t.kind == TokKind::Ident || t.kind == TokKind::Int || t.is_punct(")") || t.is_punct("]")
}

/// Whether tokens at `i..` spell `ident . len ( ` — a length call as
/// the right-hand operand.
fn len_call_ahead(toks: &[Tok], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
        && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
        && toks
            .get(i + 2)
            .is_some_and(|t| t.kind == TokKind::Ident && LEN_CALLEES.contains(&t.text.as_str()))
        && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
}

fn scan_unchecked_arith(
    toks: &[Tok],
    mask: &[bool],
    push: &mut impl FnMut(&'static str, usize, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !(t.is_punct("+") || t.is_punct("*")) {
            continue;
        }
        // Binary position only: `+=`/`*=`/`::` are fused by the lexer,
        // so a lone `+`/`*` with an operand on each side is arithmetic.
        let Some(prev) = i.checked_sub(1).map(|j| &toks[j]) else {
            continue;
        };
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if !ends_operand(prev) || prev.kind == TokKind::Float || next.kind == TokKind::Float {
            continue;
        }
        let prev_len = (prev.kind == TokKind::Ident && LEN_IDENTS.contains(&prev.text.as_str()))
            || (prev.is_punct(")")
                && matches!(
                    callee_before_close_paren(toks, i - 1),
                    Some(name) if LEN_CALLEES.contains(&name.as_str())
                ));
        let next_len = (next.kind == TokKind::Ident && LEN_IDENTS.contains(&next.text.as_str()))
            || len_call_ahead(toks, i + 1);
        if prev_len || next_len {
            push(
                RULE_UNCHECKED_ARITH,
                t.line,
                format!(
                    "bare `{}` on a length in a wire-parse file \
                     (use checked_*/saturating_* or waive with a bound argument)",
                    t.text
                ),
            );
        }
    }
}

fn scan_relaxed_ordering(
    toks: &[Tok],
    mask: &[bool],
    push: &mut impl FnMut(&'static str, usize, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !t.is_ident("Relaxed") {
            continue;
        }
        let path = i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("Ordering");
        if path {
            push(
                RULE_RELAXED_ORDERING,
                t.line,
                "Ordering::Relaxed outside the obs crate \
                 (justify with a waiver or strengthen the ordering)"
                    .into(),
            );
        }
    }
}

/// Which syntactic shape produced a [`SpanNameSite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanSiteKind {
    /// `span!("name", ...)` — a static span site (one histogram each).
    Macro,
    /// `trace::arena().begin(ctx, "name")` / `.record(ctx, "name", ...)`
    /// — a direct trace-span record sharing a `span!` site's name.
    ArenaCall,
    /// `RejectReason::Variant => "tag"` — a reject-reason wire tag.
    RejectTag,
}

/// One observable-name literal found in non-test source.
#[derive(Debug, Clone)]
pub struct SpanNameSite {
    /// 1-based line of the name literal.
    pub line: usize,
    /// The name string itself.
    pub name: String,
    /// Which shape matched.
    pub kind: SpanSiteKind,
}

/// Content of the `n`-th (0-based) double-quoted string on `line`.
///
/// The lexer drops string contents, so the registry scan recovers the
/// name from the raw source line: the `n`-th `Str` token on a line
/// corresponds to the `n`-th quoted literal in its text. Escapes are
/// unwrapped naively — observable names are plain `[a-z_]` idents, so
/// anything exotic simply fails to match the registry and gets flagged.
fn nth_quoted(line: &str, n: usize) -> Option<String> {
    let chars: Vec<char> = line.chars().collect();
    let mut found = 0usize;
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '"' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut s = String::new();
        while j < chars.len() && chars[j] != '"' {
            if chars[j] == '\\' {
                j += 1;
                if let Some(&c) = chars.get(j) {
                    s.push(c);
                }
            } else {
                s.push(chars[j]);
            }
            j += 1;
        }
        if found == n {
            return Some(s);
        }
        found += 1;
        i = j + 1;
    }
    None
}

/// Extract every observable-name literal site from non-test tokens.
///
/// Three shapes are recognized (see [`SpanSiteKind`]); a call whose
/// name argument is not a string literal (e.g. the `span!` macro's own
/// expansion passing `self.site.name`) is deliberately skipped — only
/// literal names can be registry-checked lexically.
pub fn span_name_sites(toks: &[Tok], mask: &[bool], lines: &[&str]) -> Vec<SpanNameSite> {
    let extract = |si: usize| -> Option<(usize, String)> {
        let line = toks[si].line;
        let ord = toks[..si]
            .iter()
            .filter(|t| t.kind == TokKind::Str && t.line == line)
            .count();
        Some((line, nth_quoted(lines.get(line.checked_sub(1)?)?, ord)?))
    };
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        // `span!("name", ...)`
        if t.text == "span"
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Str)
        {
            if let Some((line, name)) = extract(i + 3) {
                out.push(SpanNameSite {
                    line,
                    name,
                    kind: SpanSiteKind::Macro,
                });
            }
            continue;
        }
        // `arena().begin(ctx, "name")` / `arena().record(ctx, "name", ..)`
        // — the first string literal among the call's direct arguments is
        // the span name.
        if t.text == "arena"
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(")"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("."))
            && toks
                .get(i + 4)
                .is_some_and(|t| t.is_ident("begin") || t.is_ident("record"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct("("))
        {
            let mut depth = 1usize;
            let mut j = i + 6;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                } else if depth == 1 && toks[j].kind == TokKind::Str {
                    if let Some((line, name)) = extract(j) {
                        out.push(SpanNameSite {
                            line,
                            name,
                            kind: SpanSiteKind::ArenaCall,
                        });
                    }
                    break;
                }
                j += 1;
            }
            continue;
        }
        // `RejectReason::Variant => "tag"`
        if t.text == "RejectReason"
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.is_punct("=>"))
            && toks.get(i + 4).is_some_and(|t| t.kind == TokKind::Str)
        {
            if let Some((line, name)) = extract(i + 4) {
                out.push(SpanNameSite {
                    line,
                    name,
                    kind: SpanSiteKind::RejectTag,
                });
            }
        }
    }
    out
}

/// Extract non-test `span!` macro sites from raw source: `(line, name)`
/// pairs. Used by the lint driver's cross-file uniqueness pass.
pub fn span_macro_sites(src: &str) -> Vec<(usize, String)> {
    let toks = tokenize(src);
    let mask = test_region_mask(&toks);
    let lines: Vec<&str> = src.lines().collect();
    span_name_sites(&toks, &mask, &lines)
        .into_iter()
        .filter(|s| s.kind == SpanSiteKind::Macro)
        .map(|s| (s.line, s.name))
        .collect()
}

fn scan_span_registry(
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    push: &mut impl FnMut(&'static str, usize, String),
) {
    for site in span_name_sites(toks, mask, lines) {
        let (registered, table) = match site.kind {
            SpanSiteKind::Macro | SpanSiteKind::ArenaCall => (
                adarnet_obs::names::is_registered_span(&site.name),
                "SPAN_SITES",
            ),
            SpanSiteKind::RejectTag => (
                adarnet_obs::names::is_registered_reject(&site.name),
                "REJECT_REASONS",
            ),
        };
        if !registered {
            push(
                RULE_SPAN_REGISTRY,
                site.line,
                format!(
                    "\"{}\" is not registered in obs::names::{table} \
                     (register the name there or fix the typo)",
                    site.name
                ),
            );
        }
    }
}

fn scan_unsafe_code(
    toks: &[Tok],
    mask: &[bool],
    push: &mut impl FnMut(&'static str, usize, String),
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !t.is_ident("unsafe") {
            continue;
        }
        // Note: the lint-level opt-out `#[allow(unsafe_code)]` spells a
        // different identifier (`unsafe_code`) and is deliberately NOT
        // matched — the attribute satisfies rustc, the waiver satisfies
        // this rule, and both are required.
        push(
            RULE_UNSAFE_CODE,
            t.line,
            "`unsafe` in library code (argue the safety contract in check/allow.toml)".into(),
        );
    }
}

/// Allocating `Vec` constructors banned from hot-path kernel files.
const ALLOC_VEC_METHODS: &[&str] = &["new", "with_capacity"];
/// Allocating `Tensor` constructors banned from hot-path kernel files
/// (the pooled variants `pooled_zeroed` / `pooled_scratch` are the
/// sanctioned replacements).
const ALLOC_TENSOR_METHODS: &[&str] = &["zeros", "full"];

fn scan_no_alloc(toks: &[Tok], mask: &[bool], push: &mut impl FnMut(&'static str, usize, String)) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "vec" && i + 1 < toks.len() && toks[i + 1].is_punct("!") {
            push(
                RULE_NO_ALLOC,
                t.line,
                "vec! allocates in a hot-path kernel file (use the workspace pool)".into(),
            );
            continue;
        }
        if t.text == "to_vec"
            && i > 0
            && toks[i - 1].is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
        {
            push(
                RULE_NO_ALLOC,
                t.line,
                ".to_vec() allocates in a hot-path kernel file (use the workspace pool)".into(),
            );
            continue;
        }
        let banned: &[&str] = match t.text.as_str() {
            "Vec" => ALLOC_VEC_METHODS,
            "Tensor" => ALLOC_TENSOR_METHODS,
            _ => continue,
        };
        if let Some(m) = path_method(toks, i) {
            if banned.contains(&m.text.as_str()) {
                push(
                    RULE_NO_ALLOC,
                    m.line,
                    format!(
                        "{}::{} allocates in a hot-path kernel file (use the workspace pool)",
                        t.text, m.text
                    ),
                );
            }
        }
    }
}

/// For a type ident at token `i`, resolve `Type::method` — including the
/// turbofish form `Type::<..>::method` — and return the method token.
fn path_method(toks: &[Tok], i: usize) -> Option<&Tok> {
    let mut j = i + 1;
    if !toks.get(j)?.is_punct("::") {
        return None;
    }
    j += 1;
    if toks.get(j)?.is_punct("<") {
        let mut depth = 0usize;
        loop {
            let t = toks.get(j)?;
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        j += 1;
        if !toks.get(j)?.is_punct("::") {
            return None;
        }
        j += 1;
    }
    let m = toks.get(j)?;
    (m.kind == TokKind::Ident).then_some(m)
}

/// Scan back from an acquisition to the start of its statement; if the
/// statement is a `let`, return the bound identifier.
fn let_binding_name(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return None;
        }
        if t.is_ident("let") {
            let mut k = j + 1;
            while k < i && toks[k].is_ident("mut") {
                k += 1;
            }
            if k < i && toks[k].kind == TokKind::Ident {
                return Some(toks[k].text.clone());
            }
            return None;
        }
    }
    None
}

/// Whether the acquisition's guard is consumed within its statement
/// (method-chained temporary) rather than bound: true when the token
/// after the call's matching `)` is not `;`.
fn acquisition_is_temporary(toks: &[Tok], i: usize) -> bool {
    // toks[i] is the method ident; toks[i+1] is `(`.
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < toks.len() {
        if toks[j].is_punct("(") {
            depth += 1;
        } else if toks[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    // `.lock().unwrap()` / `sync::lock(&m)` followed by `;` ⇒ binding or
    // statement end; anything else (`.`, `)`, `,`) keeps it a temporary.
    !matches!(toks.get(j + 1), Some(t) if t.is_punct(";"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const ALL: RuleSet = RuleSet {
        core_rules: true,
        lossy_cast: true,
        bf16_narrowing: true,
        lock_order: true,
        no_alloc: true,
        no_println: true,
        unchecked_arith: true,
        relaxed_ordering: true,
        unsafe_code: true,
        span_registry: true,
    };

    fn findings(src: &str) -> Vec<Finding> {
        lint_source(Path::new("x.rs"), src, ALL)
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        findings(src).iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_and_expect_flagged_outside_tests() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); }";
        assert_eq!(rules_of(src), vec![RULE_NO_PANIC, RULE_NO_PANIC]);
    }

    #[test]
    fn unwrap_in_cfg_test_is_ignored() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(\"x\"); } }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn panic_family_macros_flagged() {
        let src = "fn f() { panic!(\"a\"); unreachable!(); todo!(); unimplemented!(); }";
        assert_eq!(rules_of(src).len(), 4);
    }

    #[test]
    fn unwrap_in_comment_or_string_ignored() {
        let src = "fn f() { let s = \"x.unwrap()\"; } // y.unwrap()";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or_else(|| 3); x.unwrap_or(0); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn float_eq_flagged_both_sides() {
        let src = "fn f() { if a == 0.0 {} if 1.5 != b {} if c == f32::NAN {} }";
        assert_eq!(
            rules_of(src),
            vec![RULE_FLOAT_EQ, RULE_FLOAT_EQ, RULE_FLOAT_EQ]
        );
    }

    #[test]
    fn int_eq_not_flagged() {
        let src = "fn f() { if a == 0 {} if n != len {} }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn lossy_cast_flags_bare_float_to_int() {
        let src = "fn f() { let a = 1.5 as usize; let b = x.sqrt() as i32; }";
        assert_eq!(rules_of(src), vec![RULE_LOSSY_CAST, RULE_LOSSY_CAST]);
    }

    #[test]
    fn bf16_narrowing_flagged_outside_quantize() {
        let src = "fn f(w: f32) -> u16 { f32_to_bf16(w) }";
        assert_eq!(rules_of(src), vec![RULE_LOSSY_CAST]);
        // Imports count too: pulling the narrower into scope is the
        // same policy breach as calling it.
        let import = "use adarnet_nn::quantize::f32_to_bf16;";
        assert_eq!(rules_of(import), vec![RULE_LOSSY_CAST]);
        // Test regions are exempt, like every other rule.
        let test = "#[cfg(test)]\nmod tests { fn t() { f32_to_bf16(1.0); } }";
        assert!(rules_of(test).is_empty());
        // The widening direction is exact and allowed anywhere.
        let widen = "fn g(b: u16) -> f32 { bf16_to_f32(b) }";
        assert!(rules_of(widen).is_empty());
    }

    #[test]
    fn rounded_cast_is_allowed() {
        let src = "fn f() { let a = x.floor() as usize; let b = y.round() as i64; }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn int_to_int_cast_is_allowed() {
        let src = "fn f() { let a = n as usize; let b = (n + 1) as u64; }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn second_lock_under_held_guard_flagged() {
        let src = "fn f() { let g = a.lock(); let h = b.lock(); }";
        assert_eq!(rules_of(src), vec![RULE_LOCK_ORDER]);
    }

    #[test]
    fn sequential_scopes_are_fine() {
        let src = "fn f() { { let g = a.lock(); } { let h = b.lock(); } }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn dropped_guard_releases() {
        let src = "fn f() { let g = a.lock(); drop(g); let h = b.lock(); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn statement_temporary_releases_at_semicolon() {
        let src = "fn f() { let x = m.lock().unwrap().len(); let g = b.lock(); }";
        // The temporary dies at the `;`, so the second lock is safe —
        // but the chained unwrap still trips no-panic.
        assert_eq!(rules_of(src), vec![RULE_NO_PANIC]);
    }

    #[test]
    fn nested_acquisition_in_one_statement_flagged() {
        let src = "fn f() { let x = a.lock().merge(b.read()); }";
        assert_eq!(rules_of(src), vec![RULE_LOCK_ORDER]);
    }

    #[test]
    fn sync_helper_acquisitions_are_recognized() {
        let src = "fn f() { let g = sync::lock(&m); let h = sync::write(&l); }";
        assert_eq!(rules_of(src), vec![RULE_LOCK_ORDER]);
    }

    #[test]
    fn alloc_constructors_flagged_in_hot_path() {
        let src = "fn f() { let a = vec![0.0; n]; let b = Vec::new(); \
                   let c = Vec::with_capacity(8); let d = x.to_vec(); }";
        assert_eq!(
            rules_of(src),
            vec![RULE_NO_ALLOC, RULE_NO_ALLOC, RULE_NO_ALLOC, RULE_NO_ALLOC]
        );
    }

    #[test]
    fn tensor_constructors_flagged_including_turbofish() {
        let src = "fn f() { let a = Tensor::zeros(s); let b = Tensor::<F>::zeros(s); \
                   let c = Tensor::full(s, 1.0); }";
        assert_eq!(
            rules_of(src),
            vec![RULE_NO_ALLOC, RULE_NO_ALLOC, RULE_NO_ALLOC]
        );
    }

    #[test]
    fn pooled_constructors_and_generics_not_flagged() {
        // Pool-backed constructors, `Vec` in type position, and the
        // collect turbofish are all fine — only allocating constructor
        // *calls* are banned.
        let src = "fn f() { let a = Tensor::<F>::pooled_scratch(s); \
                   let p: Vec<(usize, Vec<f32>)> = it.collect::<Vec<_>>(); \
                   let q = Tensor::from_vec(s, buf); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn alloc_in_cfg_test_is_ignored() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let v = vec![1.0]; \
                   let t = Tensor::zeros(s); } }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn print_macros_flagged_in_library_code() {
        let src = "fn f() { println!(\"a\"); eprintln!(\"b\"); print!(\"c\"); eprint!(\"d\"); }";
        assert_eq!(
            rules_of(src),
            vec![
                RULE_NO_PRINTLN,
                RULE_NO_PRINTLN,
                RULE_NO_PRINTLN,
                RULE_NO_PRINTLN
            ]
        );
    }

    #[test]
    fn print_in_cfg_test_or_string_is_ignored() {
        let src = "#[cfg(test)]\nmod tests { fn t() { println!(\"x\"); } }\n\
                   fn f() { let s = \"println!\"; } // eprintln!(\"y\")";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn writeln_to_explicit_sink_is_not_flagged() {
        // `writeln!` targets a caller-supplied sink — that is the
        // sanctioned way for a library to emit text.
        let src = "fn f(w: &mut W) { writeln!(w, \"x\"); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn unchecked_arith_flags_length_sums_and_products() {
        let src = "fn f() { let a = 16 + 24 + data.len() * 4; let b = cells * 5; \
                   let c = pos + n_bytes; }";
        // `24 + data.len()`, `data.len() * 4`, `cells * 5`, `pos + ...`.
        let got: Vec<_> = rules_of(src)
            .into_iter()
            .filter(|r| *r == RULE_UNCHECKED_ARITH)
            .collect();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn checked_and_saturating_arith_not_flagged() {
        let src = "fn f() { let a = count.checked_mul(4)?; \
                   let b = 40usize.saturating_add(cells.saturating_mul(5)); \
                   let c = self.pos.checked_add(n)?; }";
        assert!(!rules_of(src).contains(&RULE_UNCHECKED_ARITH));
    }

    #[test]
    fn non_length_arith_and_unary_not_flagged() {
        let src = "fn f(p: *const u8) { let a = x + y; let b = 2 * k; \
                   let c = *ptr; let d = w * h; }";
        assert!(!rules_of(src).contains(&RULE_UNCHECKED_ARITH));
    }

    #[test]
    fn float_arith_on_len_words_not_flagged() {
        // Geometry math on floats is not wire-length arithmetic.
        let src = "fn f() { let a = extent * 0.5; let b = 1.0 + size; }";
        assert!(!rules_of(src).contains(&RULE_UNCHECKED_ARITH));
    }

    #[test]
    fn relaxed_ordering_flagged_outside_tests() {
        let src = "fn f() { c.fetch_add(1, Ordering::Relaxed); c.load(Ordering::Relaxed); }";
        let got: Vec<_> = rules_of(src)
            .into_iter()
            .filter(|r| *r == RULE_RELAXED_ORDERING)
            .collect();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn stronger_orderings_and_test_relaxed_not_flagged() {
        let src = "fn f() { c.load(Ordering::Acquire); c.store(1, Ordering::SeqCst); }\n\
                   #[cfg(test)]\nmod tests { fn t() { c.load(Ordering::Relaxed); } }";
        assert!(!rules_of(src).contains(&RULE_RELAXED_ORDERING));
    }

    #[test]
    fn unsafe_blocks_and_fns_flagged_outside_tests() {
        let src = "fn f() { unsafe { ptr.read() } }\nunsafe fn g() {}";
        let got: Vec<_> = rules_of(src)
            .into_iter()
            .filter(|r| *r == RULE_UNSAFE_CODE)
            .collect();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn unsafe_in_tests_comments_and_allow_attr_not_flagged() {
        // `unsafe_code` (the lint name in the opt-out attribute) is a
        // different identifier from `unsafe` and must not fire; nor do
        // comments, strings, or #[cfg(test)] regions.
        let src = "#![allow(unsafe_code)]\n\
                   fn f() { let s = \"unsafe\"; } // unsafe\n\
                   #[cfg(test)]\nmod tests { fn t() { unsafe { x() } } }";
        assert!(!rules_of(src).contains(&RULE_UNSAFE_CODE));
    }

    #[test]
    fn unregistered_span_macro_name_flagged() {
        let src = "fn f() { let _a = span!(\"bogus_span\"); \
                   let _b = adarnet_obs::span!(\"stage_decoder\", bin = b); }";
        let got: Vec<_> = findings(src)
            .into_iter()
            .filter(|f| f.rule == RULE_SPAN_REGISTRY)
            .collect();
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("bogus_span"));
        assert!(got[0].message.contains("SPAN_SITES"));
    }

    #[test]
    fn arena_call_names_are_registry_checked() {
        let src = "fn f() { trace::arena().record(ctx, \"bogus\", ns, \"bin\", 0); \
                   trace::arena().begin(ctx, \"engine_infer\"); }";
        let got: Vec<_> = findings(src)
            .into_iter()
            .filter(|f| f.rule == RULE_SPAN_REGISTRY)
            .collect();
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("bogus"));
    }

    #[test]
    fn reject_tags_are_registry_checked() {
        let src = "fn f(r: RejectReason) -> &'static str { match r { \
                   RejectReason::QueueFull => \"queue_full\", \
                   RejectReason::RateLimited => \"rate_limited\" } }";
        let got: Vec<_> = findings(src)
            .into_iter()
            .filter(|f| f.rule == RULE_SPAN_REGISTRY)
            .collect();
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("rate_limited"));
        assert!(got[0].message.contains("REJECT_REASONS"));
    }

    #[test]
    fn non_literal_names_and_test_regions_skipped() {
        // The span! expansion records via a field, not a literal — no
        // name to check lexically; test regions never fire the rule.
        let src = "fn f() { trace::arena().record(ctx, self.site.name, ns, f, v); }\n\
                   #[cfg(test)]\nmod tests { fn t() { let _s = span!(\"totally_bogus\"); } }";
        assert!(!rules_of(src).contains(&RULE_SPAN_REGISTRY));
    }

    #[test]
    fn span_macro_sites_extracts_names_outside_tests() {
        let src = "fn f() { let _a = span!(\"stage_scorer\"); }\n\
                   fn g() { let _b = obs::span!(\"stage_ranker\", bin = 1u64); }\n\
                   #[cfg(test)]\nmod tests { fn t() { let _c = span!(\"obs_test_span\"); } }";
        let sites = span_macro_sites(src);
        assert_eq!(
            sites,
            vec![(1, "stage_scorer".into()), (2, "stage_ranker".into())]
        );
    }

    #[test]
    fn io_read_method_on_chain_is_tolerated() {
        // `.read(` on a chained temporary is treated as a lock guard until
        // the semicolon, but alone it flags nothing.
        let src = "fn f() { let n = file.read(&mut buf); }";
        assert!(rules_of(src).is_empty());
    }
}
