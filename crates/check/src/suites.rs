//! Model-checking suites: the serve primitives driven against their
//! [`crate::oracle`] shadow models under explored interleavings.
//!
//! Each suite builds a handful of scenarios (small enough for
//! bounded-exhaustive enumeration, larger ones for seeded-random
//! sampling) and reports the merged result. The invariants, per
//! structure:
//!
//! * **queue** — push outcomes (enqueued / saturated / rejected) match
//!   the bounded-FIFO spec, pops are FIFO, and after a full drain every
//!   accepted entry came out exactly once (no lost or duplicated batch
//!   entries: patch-count conservation starts here);
//! * **cache** — lookups, LRU eviction order, and the hit/miss
//!   counters match an exact sequential LRU at every step;
//! * **registry** — activation generations are exactly the linearized
//!   activation count, the published active model is always a
//!   `(generation, name)` pair the model predicts, and the active
//!   checkpoint's weights are always *uniform* — a mixed-constant
//!   tensor would mean a torn (half-swapped) checkpoint; the shared
//!   frozen engine additionally satisfies one-`Arc`-per-generation
//!   identity, and an engine held across a hot swap (an in-flight
//!   batch) keeps the *old* generation's weights bit-for-bit;
//! * **lanes** — the three-lane weighted-deficit queue's push outcomes
//!   (per-lane saturation, shutdown rejection), the lane every pop
//!   selects, per-lane FIFO order, batch lane-purity, and drain-time
//!   conservation (a starved lane is a conservation violation) all
//!   match the naive `PriorityQueueModel` restatement of the pickup
//!   rule at every step;
//! * **quota** — per-tenant token buckets match the `QuotaModel`
//!   admit/deny decisions under a logical clock (including
//!   non-monotonic interleavings), and every tenant's grants respect
//!   the conservation bound `granted ≤ burst + elapsed × rate`;
//! * **recorder** — the obs flight recorder's two-phase
//!   `reserve()`/`commit()` ring matches its order-independent fixed
//!   point (per slot, the highest-seq committed event) under every
//!   interleaving of reserves and laggard commits, and never loses a
//!   committed event from the most recent `capacity` sequence numbers;
//! * **trace** — the trace arena's start/begin/commit/finish lifecycle
//!   matches the flat `TraceModel` restatement (admission iff below
//!   capacity with a fresh id, dense span ids, budget drops, laggard
//!   commits after finish never landing in a successor trace, finished
//!   trees containing only committed spans), and the tail sampler's
//!   retained set sits at the `SamplerModel` fixed point (slowest-N
//!   per window with earliest-wins ties, newest-wins error ring) after
//!   every offer.

use std::sync::Arc;
use std::time::Duration;

use adarnet_core::checkpoint::{ModelCheckpoint, CHECKPOINT_VERSION};
use adarnet_core::engine::InferenceEngine;
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig};
use adarnet_serve::{
    BoundedQueue, LaneQueue, ModelRegistry, PatchCache, PatchKey, Priority, PushOutcome,
    QuotaConfig, QuotaTable,
};
use adarnet_tensor::{Shape, Tensor};

use adarnet_obs::trace::{PendingSpan, TailSampler, TraceArena, TraceCtx};
use adarnet_obs::{EventKind, FlightRecorder};

use crate::dpor::Footprint;
use crate::oracle::{
    LruModel, ModelPush, ModelSpan, PriorityQueueModel, QueueModel, QuotaModel, RecorderModel,
    RegistryModel, SamplerModel, TraceModel,
};
use crate::sched::{Explorer, Mode, Scenario, SuiteStats};

/// Exploration effort: `Full` is the CI gate (≥ 10k interleavings),
/// `Small` the SKIP_SLOW smoke budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Full bounded-exhaustive + random budget.
    Full,
    /// Reduced smoke budget for fast iteration.
    Small,
}

// ---------------------------------------------------------------------
// Queue suite
// ---------------------------------------------------------------------

/// One scripted queue operation.
#[derive(Debug, Clone, Copy)]
pub enum QueueOp {
    /// `push(value)`.
    Push(u64),
    /// `try_pop()`.
    TryPop,
    /// `try_pop_batch(max)`.
    TryPopBatch(usize),
    /// `pop_batch(max, 0)` — skipped when it would block (empty, not
    /// shut down) since the checker owns the only thread.
    PopBatch(usize),
    /// `shutdown()`.
    Shutdown,
}

/// Threads of queue ops over one shared [`BoundedQueue`].
pub struct QueueScenario {
    /// Queue capacity under test.
    pub capacity: usize,
    /// Per-thread op scripts.
    pub scripts: Vec<Vec<QueueOp>>,
}

/// Real queue + shadow model for one interleaving.
pub struct QueueState {
    real: BoundedQueue<u64>,
    model: QueueModel,
}

impl Scenario for QueueScenario {
    type State = QueueState;

    fn name(&self) -> &'static str {
        "serve::queue"
    }

    fn thread_ops(&self) -> Vec<usize> {
        self.scripts.iter().map(Vec::len).collect()
    }

    fn init(&self) -> QueueState {
        QueueState {
            real: BoundedQueue::new(self.capacity),
            model: QueueModel::new(self.capacity),
        }
    }

    fn step(&self, state: &mut QueueState, thread: usize, op: usize) -> Result<(), String> {
        let Some(op) = self.scripts.get(thread).and_then(|s| s.get(op)).copied() else {
            return Err(format!("no op {op} for thread {thread} (bad script)"));
        };
        match op {
            QueueOp::Push(value) => {
                let real = state.real.push(value);
                let model = state.model.push(value);
                let real_kind = match real {
                    PushOutcome::Enqueued => ModelPush::Enqueued,
                    PushOutcome::Saturated(v) if v == value => ModelPush::Saturated,
                    PushOutcome::Rejected(v) if v == value => ModelPush::Rejected,
                    PushOutcome::Saturated(v) | PushOutcome::Rejected(v) => {
                        return Err(format!("push({value}) handed back wrong item {v}"))
                    }
                };
                if real_kind != model {
                    return Err(format!(
                        "push({value}): real {real_kind:?} but spec says {model:?}"
                    ));
                }
            }
            QueueOp::TryPop => {
                let real = state.real.try_pop();
                let model = state.model.try_pop();
                if real != model {
                    return Err(format!("try_pop: real {real:?} but spec says {model:?}"));
                }
            }
            QueueOp::TryPopBatch(max) => {
                let real = state.real.try_pop_batch(max);
                let model = state.model.try_pop_batch(max);
                if real != model {
                    return Err(format!(
                        "try_pop_batch({max}): real {real:?} but spec says {model:?}"
                    ));
                }
            }
            QueueOp::PopBatch(max) => {
                if state.model.is_empty() && !state.model.is_shutdown() {
                    // Would block with no co-runner to wake it; the
                    // blocking path is exercised by the queue's own
                    // cross-thread unit test.
                    return Ok(());
                }
                let real = state.real.pop_batch(max, Duration::ZERO);
                let model = state.model.try_pop_batch(max);
                match real {
                    None => {
                        if !(model.is_empty() && state.model.is_shutdown()) {
                            return Err(format!(
                                "pop_batch({max}): real returned shutdown-None but spec has {model:?}"
                            ));
                        }
                    }
                    Some(batch) => {
                        if batch != model {
                            return Err(format!(
                                "pop_batch({max}): real {batch:?} but spec says {model:?}"
                            ));
                        }
                        if batch.is_empty() {
                            return Err("pop_batch returned an empty batch".into());
                        }
                    }
                }
            }
            QueueOp::Shutdown => {
                state.real.shutdown();
                state.model.shutdown();
            }
        }
        if state.real.len() != state.model.len() {
            return Err(format!(
                "len diverged after {op:?}: real {} vs spec {}",
                state.real.len(),
                state.model.len()
            ));
        }
        Ok(())
    }

    fn finish(&self, state: &mut QueueState) -> Result<(), String> {
        // Drain both sides completely, still in lock-step.
        loop {
            let real = state.real.try_pop();
            let model = state.model.try_pop();
            if real != model {
                return Err(format!("drain diverged: real {real:?} vs spec {model:?}"));
            }
            if real.is_none() {
                break;
            }
        }
        state.model.check_conservation()
    }
}

/// Run the queue suite at the given budget.
///
/// Every queue op serializes on the queue's one lock and observes the
/// shared FIFO order, so the default (fully-dependent) footprint is the
/// honest one: DPOR explores this suite like plain DFS.
pub fn queue_suite(budget: Budget, ex: &mut Explorer) {
    use QueueOp::*;

    // Two producers racing one consumer through a capacity-4 queue:
    // every interleaving of 9 ops, exhaustively (1680 interleavings).
    let contended = QueueScenario {
        capacity: 4,
        scripts: vec![
            vec![Push(100), Push(101), Push(102)],
            vec![Push(200), Push(201), Push(202)],
            vec![TryPop, TryPop, TryPop],
        ],
    };
    // Saturation + shutdown against batched popping, capacity 2
    // (560 interleavings).
    let saturating = QueueScenario {
        capacity: 2,
        scripts: vec![
            vec![Push(1), Push(2), Push(3)],
            vec![Push(10), Push(11), Shutdown],
            vec![TryPopBatch(2), TryPopBatch(2)],
        ],
    };
    // Blocking pop_batch vs producer + shutdown (20 interleavings).
    let blocking = QueueScenario {
        capacity: 4,
        scripts: vec![
            vec![Push(7), Push(8), Shutdown],
            vec![PopBatch(3), PopBatch(3), PopBatch(3)],
        ],
    };
    match budget {
        Budget::Full => {
            ex.exhaustive(&contended);
            ex.exhaustive(&saturating);
            ex.exhaustive(&blocking);
        }
        Budget::Small => {
            ex.random(&contended, 60, 11);
            ex.random(&saturating, 60, 12);
            ex.exhaustive(&blocking);
        }
    }

    // A larger mixed workload, randomly scheduled: three producers, two
    // mixed poppers, a late shutdown — too many interleavings to
    // enumerate, so sample a seeded stream.
    let mixed = QueueScenario {
        capacity: 3,
        scripts: vec![
            vec![Push(1), Push(2), Push(3), Push(4), Push(5)],
            vec![Push(21), Push(22), Push(23), Push(24), Push(25)],
            vec![TryPop, TryPopBatch(2), TryPop, TryPopBatch(3), TryPop],
            vec![PopBatch(2), TryPop, PopBatch(2), TryPop],
            vec![Push(31), Push(32), Shutdown],
        ],
    };
    let trials = match budget {
        Budget::Full => 4000,
        Budget::Small => 200,
    };
    ex.random(&mixed, trials, 0xADA7);
}

// ---------------------------------------------------------------------
// Lane suite
// ---------------------------------------------------------------------

/// One scripted lane-queue operation.
#[derive(Debug, Clone, Copy)]
pub enum LaneOp {
    /// `push(lane, value)` (lane 0 = interactive .. 2 = bulk).
    Push(usize, u64),
    /// `try_pop()`.
    TryPop,
    /// `try_pop_batch(max)`.
    TryPopBatch(usize),
    /// `pop_batch(max, 0)` — skipped when it would block (all lanes
    /// empty, not shut down) since the checker owns the only thread.
    PopBatch(usize),
    /// `shutdown()`.
    Shutdown,
}

/// Threads of lane ops over one shared [`LaneQueue`].
pub struct LaneScenario {
    /// Per-lane capacity under test.
    pub capacity: usize,
    /// Per-cycle lane credits under test.
    pub weights: [u64; 3],
    /// Per-thread op scripts.
    pub scripts: Vec<Vec<LaneOp>>,
}

/// Real lane queue + shadow model for one interleaving.
pub struct LaneState {
    real: LaneQueue<u64>,
    model: PriorityQueueModel,
}

impl LaneState {
    fn lens_diverged(&self) -> Option<String> {
        for lane in 0..3 {
            let p = Priority::from_index(lane)?;
            if self.real.lane_len(p) != self.model.lane_len(lane) {
                return Some(format!(
                    "lane {lane} len diverged: real {} vs spec {}",
                    self.real.lane_len(p),
                    self.model.lane_len(lane)
                ));
            }
        }
        None
    }
}

impl Scenario for LaneScenario {
    type State = LaneState;

    fn name(&self) -> &'static str {
        "serve::lanes"
    }

    fn thread_ops(&self) -> Vec<usize> {
        self.scripts.iter().map(Vec::len).collect()
    }

    fn init(&self) -> LaneState {
        LaneState {
            real: LaneQueue::new(self.capacity, self.weights),
            model: PriorityQueueModel::new(self.capacity, self.weights),
        }
    }

    fn step(&self, state: &mut LaneState, thread: usize, op: usize) -> Result<(), String> {
        let Some(op) = self.scripts.get(thread).and_then(|s| s.get(op)).copied() else {
            return Err(format!("no op {op} for thread {thread} (bad script)"));
        };
        match op {
            LaneOp::Push(lane, value) => {
                let Some(p) = Priority::from_index(lane) else {
                    return Err(format!("script lane {lane} out of range"));
                };
                let real = state.real.push(p, value);
                let model = state.model.push(lane, value);
                let real_kind = match real {
                    PushOutcome::Enqueued => ModelPush::Enqueued,
                    PushOutcome::Saturated(v) if v == value => ModelPush::Saturated,
                    PushOutcome::Rejected(v) if v == value => ModelPush::Rejected,
                    PushOutcome::Saturated(v) | PushOutcome::Rejected(v) => {
                        return Err(format!("push({lane}, {value}) handed back wrong item {v}"))
                    }
                };
                if real_kind != model {
                    return Err(format!(
                        "push({lane}, {value}): real {real_kind:?} but spec says {model:?}"
                    ));
                }
            }
            LaneOp::TryPop => {
                let real = state.real.try_pop().map(|(p, v)| (p.index(), v));
                let model = state.model.try_pop();
                if real != model {
                    return Err(format!(
                        "try_pop: real {real:?} but spec says {model:?} \
                         (wrong lane selected or wrong item)"
                    ));
                }
            }
            LaneOp::TryPopBatch(max) => {
                let real = state.real.try_pop_batch(max).map(|(p, b)| (p.index(), b));
                let model = state.model.try_pop_batch(max);
                if real != model {
                    return Err(format!(
                        "try_pop_batch({max}): real {real:?} but spec says {model:?}"
                    ));
                }
            }
            LaneOp::PopBatch(max) => {
                if state.model.is_empty() && !state.model.is_shutdown() {
                    // Would block with no co-runner to wake it; the
                    // blocking path is exercised by the queue's own
                    // cross-thread unit test.
                    return Ok(());
                }
                let real = state
                    .real
                    .pop_batch(max, Duration::ZERO)
                    .map(|(p, b)| (p.index(), b));
                let model = state.model.try_pop_batch(max);
                match (real, model) {
                    (None, None) if state.model.is_shutdown() => {}
                    (Some((lane, batch)), Some((mlane, mbatch))) => {
                        if lane != mlane || batch != mbatch {
                            return Err(format!(
                                "pop_batch({max}): real lane {lane} {batch:?} but spec \
                                 says lane {mlane} {mbatch:?}"
                            ));
                        }
                        if batch.is_empty() {
                            return Err("pop_batch returned an empty batch".into());
                        }
                    }
                    (real, model) => {
                        return Err(format!(
                            "pop_batch({max}): real {real:?} but spec says {model:?}"
                        ));
                    }
                }
            }
            LaneOp::Shutdown => {
                state.real.shutdown();
                state.model.shutdown();
            }
        }
        if let Some(msg) = state.lens_diverged() {
            return Err(format!("after {op:?}: {msg}"));
        }
        Ok(())
    }

    fn finish(&self, state: &mut LaneState) -> Result<(), String> {
        // Drain both sides completely, still in lock-step — so a lane
        // the real queue never serves (starvation) diverges here or in
        // the conservation check.
        loop {
            let real = state.real.try_pop().map(|(p, v)| (p.index(), v));
            let model = state.model.try_pop();
            if real != model {
                return Err(format!("drain diverged: real {real:?} vs spec {model:?}"));
            }
            if real.is_none() {
                break;
            }
        }
        state.model.check_conservation()
    }

    /// Lane-queue commutativity, as objects: `0` = control plane
    /// (shutdown flag, read by every op), `1 + lane` = one lane's
    /// FIFO, `4` = the weighted-deficit scheduler state (credits +
    /// pickup cursor, consumed by every pop). Pushes to *different*
    /// lanes commute: each appends to its own FIFO and neither moves
    /// the scheduler; everything else conflicts.
    fn footprint(&self, thread: usize, op: usize) -> Footprint {
        match self.scripts[thread][op] {
            LaneOp::Push(lane, _) => Footprint::new(vec![0], vec![1 + lane as u64]),
            LaneOp::TryPop | LaneOp::TryPopBatch(_) | LaneOp::PopBatch(_) => {
                Footprint::new(vec![0], vec![1, 2, 3, 4])
            }
            LaneOp::Shutdown => Footprint::exclusive(0),
        }
    }
}

/// Run the lane suite at the given budget.
pub fn lane_suite(budget: Budget, ex: &mut Explorer) {
    use LaneOp::*;

    // Three producers (one per lane) racing one popper through the
    // default [8, 4, 1] weighting — every interleaving of 9 ops
    // (1680 exhaustively). Every pop's lane choice is cross-checked.
    let contended = LaneScenario {
        capacity: 4,
        weights: [8, 4, 1],
        scripts: vec![
            vec![Push(0, 100), Push(0, 101), Push(0, 102)],
            vec![Push(2, 300), Push(2, 301), Push(2, 302)],
            vec![TryPop, TryPop, TryPop],
        ],
    };
    // Per-lane saturation + shutdown against batched popping,
    // capacity 1 per lane (560 interleavings).
    let saturating = LaneScenario {
        capacity: 1,
        weights: [4, 2, 1],
        scripts: vec![
            vec![Push(0, 1), Push(0, 2), Push(1, 3)],
            vec![Push(2, 10), Push(2, 11), Shutdown],
            vec![TryPopBatch(2), TryPopBatch(2)],
        ],
    };
    // Blocking pop_batch vs producers + shutdown (560 interleavings):
    // batches must stay lane-pure under every arrival order.
    let blocking = LaneScenario {
        capacity: 4,
        weights: [2, 2, 2],
        scripts: vec![
            vec![Push(1, 7), Push(2, 8), Shutdown],
            vec![Push(0, 9), Push(0, 10)],
            vec![PopBatch(3), PopBatch(3)],
        ],
    };
    // DPOR dividend: a deep two-producer burst (4 interactive + 4 bulk
    // pushes) against a 3-pop consumer — 11550 interleavings, which
    // plain DFS could not afford at this budget, but cross-lane pushes
    // commute so DPOR runs ~1.2k representative schedules. This is the
    // burst-arrival shape the PR 6 lanes scenarios could only sample.
    let deep = LaneScenario {
        capacity: 4,
        weights: [8, 4, 1],
        scripts: vec![
            vec![Push(0, 1), Push(0, 2), Push(0, 3), Push(0, 4)],
            vec![Push(2, 21), Push(2, 22), Push(2, 23), Push(2, 24)],
            vec![TryPop, TryPopBatch(2), TryPop],
        ],
    };
    match budget {
        Budget::Full => {
            ex.exhaustive(&contended);
            ex.exhaustive(&saturating);
            ex.exhaustive(&blocking);
            ex.exhaustive(&deep);
        }
        Budget::Small => {
            ex.random(&contended, 60, 41);
            ex.random(&saturating, 60, 42);
            ex.exhaustive(&blocking);
            ex.random(&deep, 150, 43);
        }
    }

    // A larger mixed workload, randomly scheduled: pushers on every
    // lane, mixed poppers, a late shutdown. Too many interleavings to
    // enumerate, so sample a seeded stream.
    let mixed = LaneScenario {
        capacity: 3,
        weights: [4, 2, 1],
        scripts: vec![
            vec![Push(0, 1), Push(1, 2), Push(0, 3), Push(2, 4), Push(0, 5)],
            vec![Push(2, 21), Push(2, 22), Push(1, 23), Push(2, 24)],
            vec![TryPop, TryPopBatch(2), TryPop, TryPopBatch(3), TryPop],
            vec![PopBatch(2), TryPop, PopBatch(2)],
            vec![Push(1, 31), Push(0, 32), Shutdown],
        ],
    };
    let trials = match budget {
        Budget::Full => 4000,
        Budget::Small => 200,
    };
    ex.random(&mixed, trials, 0x1A4E5);
}

// ---------------------------------------------------------------------
// Quota suite
// ---------------------------------------------------------------------

/// One scripted quota operation: `try_take_at(tenant, now_ns)`. Clock
/// values are per-op, so interleavings drive the buckets with
/// non-monotonic clocks — exactly the hostile schedule the bucket must
/// tolerate.
#[derive(Debug, Clone, Copy)]
pub struct QuotaOp {
    /// Tenant id taking a token.
    pub tenant: u64,
    /// Logical clock for this take, nanoseconds.
    pub now_ns: u64,
}

/// Threads of quota takes over one shared [`QuotaTable`].
pub struct QuotaScenario {
    /// Limits enforced for every tenant.
    pub cfg: QuotaConfig,
    /// Per-thread op scripts.
    pub scripts: Vec<Vec<QuotaOp>>,
}

/// Real table + per-tenant shadow buckets for one interleaving.
pub struct QuotaState {
    real: QuotaTable,
    model: std::collections::HashMap<u64, QuotaModel>,
}

impl Scenario for QuotaScenario {
    type State = QuotaState;

    fn name(&self) -> &'static str {
        "serve::quota"
    }

    fn thread_ops(&self) -> Vec<usize> {
        self.scripts.iter().map(Vec::len).collect()
    }

    fn init(&self) -> QuotaState {
        QuotaState {
            real: QuotaTable::new(self.cfg),
            model: std::collections::HashMap::new(),
        }
    }

    fn step(&self, state: &mut QuotaState, thread: usize, op: usize) -> Result<(), String> {
        let Some(op) = self.scripts.get(thread).and_then(|s| s.get(op)).copied() else {
            return Err(format!("no op {op} for thread {thread} (bad script)"));
        };
        let real = state.real.try_take_at(op.tenant, op.now_ns);
        let bucket = state
            .model
            .entry(op.tenant)
            .or_insert_with(|| QuotaModel::new(self.cfg.rate_per_sec, self.cfg.burst, op.now_ns));
        let model = bucket.try_take(op.now_ns);
        if real != model {
            return Err(format!(
                "try_take_at(tenant {}, {} ns): real {real} but spec says {model}",
                op.tenant, op.now_ns
            ));
        }
        Ok(())
    }

    fn finish(&self, state: &mut QuotaState) -> Result<(), String> {
        if state.real.tenants() != state.model.len() {
            return Err(format!(
                "tenant count diverged: real {} vs spec {}",
                state.real.tenants(),
                state.model.len()
            ));
        }
        for (tenant, bucket) in &state.model {
            bucket
                .check_conservation()
                .map_err(|e| format!("tenant {tenant}: {e}"))?;
        }
        Ok(())
    }

    /// Each take touches exactly one tenant's bucket; takes on
    /// *different* tenants commute (the table's one lock serializes
    /// them, but their admit/deny results, per-bucket conservation
    /// bounds, and the final tenant count are all order-independent).
    fn footprint(&self, thread: usize, op: usize) -> Footprint {
        Footprint::exclusive(self.scripts[thread][op].tenant)
    }
}

/// Run the quota suite at the given budget.
pub fn quota_suite(budget: Budget, ex: &mut Explorer) {
    let take = |tenant, now_ns| QuotaOp { tenant, now_ns };
    let ms = 1_000_000u64;

    // Two tenants, three threads with overlapping clock ranges: every
    // interleaving delivers a different (often non-monotonic) clock
    // sequence to each bucket (1680 exhaustively). rate 100/s, burst 2:
    // refills land mid-script (one token per 10 ms).
    let cfg = QuotaConfig {
        rate_per_sec: 100,
        burst: 2,
    };
    let racing = QuotaScenario {
        cfg,
        scripts: vec![
            vec![take(1, 0), take(1, 5 * ms), take(1, 30 * ms)],
            vec![take(1, 10 * ms), take(2, 0), take(2, ms)],
            vec![take(2, 20 * ms), take(1, 15 * ms), take(2, 2 * ms)],
        ],
    };
    // DPOR dividend: two single-tenant burst threads against one
    // cross-tenant prober — 34650 interleavings of (4, 4, 4), far past
    // the per-scenario DFS budget, but only the prober's two overlap
    // takes conflict across threads, so DPOR runs a few dozen
    // representative schedules. The prober's clocks land *inside* the
    // bursts' refill windows, so every representative ordering yields a
    // different admit/deny history for tenants 1 and 2.
    let deep = QuotaScenario {
        cfg,
        scripts: vec![
            vec![
                take(1, 0),
                take(1, 4 * ms),
                take(1, 25 * ms),
                take(1, 12 * ms),
            ],
            vec![
                take(2, 10 * ms),
                take(2, 0),
                take(2, 18 * ms),
                take(2, 40 * ms),
            ],
            vec![
                take(1, 8 * ms),
                take(3, 0),
                take(3, 15 * ms),
                take(2, 22 * ms),
            ],
        ],
    };
    match budget {
        Budget::Full => {
            ex.exhaustive(&racing);
            ex.exhaustive(&deep);
        }
        Budget::Small => {
            ex.random(&racing, 80, 51);
            ex.random(&deep, 150, 53);
        }
    }

    // Heavier churn: four tenants, dense takes, clocks that jump both
    // ways — randomly scheduled.
    let churn = QuotaScenario {
        cfg: QuotaConfig {
            rate_per_sec: 1000,
            burst: 3,
        },
        scripts: (0..4)
            .map(|t| {
                (0..6)
                    .map(|k| take(1 + (t as u64 + k) % 4, (k * 7 + t as u64 * 3) * ms))
                    .collect()
            })
            .collect(),
    };
    let trials = match budget {
        Budget::Full => 4000,
        Budget::Small => 200,
    };
    ex.random(&churn, trials, 0x900A);
}

// ---------------------------------------------------------------------
// Cache suite
// ---------------------------------------------------------------------

/// One scripted cache operation over small integer keys.
#[derive(Debug, Clone, Copy)]
pub enum CacheOp {
    /// `get(key(k))`.
    Get(u64),
    /// `insert(key(k), value(k))`.
    Insert(u64),
    /// `clear()`.
    Clear,
}

/// Threads of cache ops over one shared [`PatchCache`].
pub struct CacheScenario {
    /// Cache capacity under test.
    pub capacity: usize,
    /// Per-thread op scripts.
    pub scripts: Vec<Vec<CacheOp>>,
    /// Pre-built keys, indexed by the small-key id (so per-interleaving
    /// init does no hashing work).
    keys: Vec<PatchKey>,
}

impl CacheScenario {
    /// Build a scenario; `max_key` bounds the key ids used in scripts.
    pub fn new(capacity: usize, scripts: Vec<Vec<CacheOp>>, max_key: u64) -> CacheScenario {
        let keys = (0..=max_key)
            .map(|k| PatchKey::new(0, 0, &Tensor::from_vec(Shape::d1(1), vec![k as f32])))
            .collect();
        CacheScenario {
            capacity,
            scripts,
            keys,
        }
    }

    fn key(&self, k: u64) -> Result<&PatchKey, String> {
        self.keys
            .get(k as usize)
            .ok_or_else(|| format!("script key {k} out of range (bad script)"))
    }
}

/// The cached value for key `k` — deterministic so hits are checkable.
fn cache_value(k: u64) -> Tensor<f32> {
    Tensor::from_vec(Shape::d1(1), vec![(k * 10 + 7) as f32])
}

/// Real cache + shadow model for one interleaving.
pub struct CacheState {
    real: PatchCache,
    model: LruModel,
}

impl Scenario for CacheScenario {
    type State = CacheState;

    fn name(&self) -> &'static str {
        "serve::cache"
    }

    fn thread_ops(&self) -> Vec<usize> {
        self.scripts.iter().map(Vec::len).collect()
    }

    fn init(&self) -> CacheState {
        CacheState {
            real: PatchCache::new(self.capacity),
            model: LruModel::new(self.capacity),
        }
    }

    fn step(&self, state: &mut CacheState, thread: usize, op: usize) -> Result<(), String> {
        let Some(op) = self.scripts.get(thread).and_then(|s| s.get(op)).copied() else {
            return Err(format!("no op {op} for thread {thread} (bad script)"));
        };
        match op {
            CacheOp::Get(k) => {
                let real = state.real.get(self.key(k)?);
                let model = state.model.get(k);
                match (real, model) {
                    (None, None) => {}
                    (Some(t), Some(v)) => {
                        if t != cache_value(v) {
                            return Err(format!(
                                "get({k}): hit returned wrong tensor (spec value {v})"
                            ));
                        }
                    }
                    (real, model) => {
                        return Err(format!(
                            "get({k}): real {} but spec says {}",
                            if real.is_some() { "hit" } else { "miss" },
                            if model.is_some() { "hit" } else { "miss" }
                        ));
                    }
                }
            }
            CacheOp::Insert(k) => {
                state.real.insert(self.key(k)?, cache_value(k));
                state.model.insert(k, k);
            }
            CacheOp::Clear => {
                state.real.clear();
                state.model.clear();
            }
        }
        if state.real.len() != state.model.len() {
            return Err(format!(
                "len diverged after {op:?}: real {} vs spec {}",
                state.real.len(),
                state.model.len()
            ));
        }
        if state.real.hits() != state.model.hits || state.real.misses() != state.model.misses {
            return Err(format!(
                "counters diverged after {op:?}: real {}h/{}m vs spec {}h/{}m",
                state.real.hits(),
                state.real.misses(),
                state.model.hits,
                state.model.misses
            ));
        }
        Ok(())
    }

    fn finish(&self, state: &mut CacheState) -> Result<(), String> {
        // Final sweep: every key agrees on hit/miss and value.
        for k in 0..self.keys.len() as u64 {
            let real = state.real.get(self.key(k)?);
            let model = state.model.get(k);
            if real.is_some() != model.is_some() {
                return Err(format!(
                    "final sweep: key {k} real {} vs spec {}",
                    if real.is_some() { "hit" } else { "miss" },
                    if model.is_some() { "hit" } else { "miss" }
                ));
            }
        }
        Ok(())
    }
}

/// Run the cache suite at the given budget.
///
/// Every cache op moves the one shared LRU recency list (even a `get`
/// reorders it), so the default (fully-dependent) footprint is the
/// honest one: DPOR explores this suite like plain DFS.
pub fn cache_suite(budget: Budget, ex: &mut Explorer) {
    use CacheOp::*;

    // Capacity-2 cache, three threads contending on four keys with an
    // eviction-heavy mix (1680 interleavings exhaustively).
    let evicting = CacheScenario::new(
        2,
        vec![
            vec![Insert(0), Get(0), Insert(1)],
            vec![Insert(2), Get(1), Get(2)],
            vec![Get(0), Insert(3), Get(3)],
        ],
        4,
    );
    match budget {
        Budget::Full => ex.exhaustive(&evicting),
        Budget::Small => ex.random(&evicting, 80, 21),
    }

    // Bigger key space + clears, randomly scheduled.
    let churning = CacheScenario::new(
        3,
        vec![
            vec![Insert(0), Insert(1), Insert(2), Get(0), Get(1)],
            vec![Get(2), Insert(3), Get(3), Insert(4), Get(4)],
            vec![Insert(1), Get(1), Clear, Insert(0), Get(0)],
            vec![Get(4), Get(0), Insert(2), Get(2)],
        ],
        4,
    );
    let trials = match budget {
        Budget::Full => 4000,
        Budget::Small => 200,
    };
    ex.random(&churning, trials, 0xCAC4E);
}

// ---------------------------------------------------------------------
// Registry suite
// ---------------------------------------------------------------------

/// One scripted registry operation.
#[derive(Debug, Clone, Copy)]
pub enum RegistryOp {
    /// `activate(names[i])`.
    Activate(usize),
    /// `active()` + generation/name/torn-checkpoint assertions.
    ReadActive,
    /// `replica()` — skipped before any activation.
    Replica,
    /// `shared()` — the fetched engine's generation must be the spec's
    /// current one, its weights untorn, and repeated fetches at one
    /// generation must return the *same* `Arc` (one resident engine per
    /// generation). The thread retains the `Arc` as its in-flight
    /// engine.
    Shared,
    /// Re-check the thread's retained shared engine: its weights must
    /// still be the untorn weights of the generation it was fetched at,
    /// even after later activations — an in-flight batch completes on
    /// the old generation. No-op if the thread holds nothing yet.
    UseHeld,
}

/// One name's constant-filled `(scorer, decoder)` weight set.
type WeightSet = (Vec<Tensor<f32>>, Vec<Tensor<f32>>);

/// Threads of registry ops over one shared [`ModelRegistry`] holding
/// constant-weight checkpoints (one constant per name — the torn-swap
/// detector).
pub struct RegistryScenario {
    /// Per-thread op scripts.
    pub scripts: Vec<Vec<RegistryOp>>,
    names: Vec<String>,
    /// Per-name constant-filled weights.
    weights: Vec<WeightSet>,
    cfg: AdarNetConfig,
}

/// The uniform weight constant assigned to name index `i`.
fn name_constant(i: usize) -> f32 {
    (i + 1) as f32
}

impl RegistryScenario {
    /// Build a scenario over `names.len()` constant-weight checkpoints.
    pub fn new(names: &[&str], scripts: Vec<Vec<RegistryOp>>) -> RegistryScenario {
        let cfg = AdarNetConfig {
            ph: 8,
            pw: 8,
            seed: 1,
            ..AdarNetConfig::default()
        };
        let model = AdarNet::new(cfg);
        let base = adarnet_core::checkpoint::snapshot(&model, &NormStats::identity());
        let weights = (0..names.len())
            .map(|i| {
                let fill = |ts: &[Tensor<f32>]| {
                    ts.iter()
                        .map(|t| {
                            let mut t = t.clone();
                            t.as_mut_slice().fill(name_constant(i));
                            t
                        })
                        .collect::<Vec<_>>()
                };
                (fill(&base.scorer), fill(&base.decoder))
            })
            .collect();
        RegistryScenario {
            scripts,
            names: names.iter().map(|s| s.to_string()).collect(),
            weights,
            cfg,
        }
    }

    fn checkpoint(&self, i: usize) -> ModelCheckpoint {
        let (scorer, decoder) = &self.weights[i.min(self.weights.len() - 1)];
        ModelCheckpoint {
            version: CHECKPOINT_VERSION,
            in_channels: self.cfg.in_channels,
            ph: self.cfg.ph,
            pw: self.cfg.pw,
            bins: self.cfg.bins,
            norm: NormStats::identity(),
            scorer: scorer.clone(),
            decoder: decoder.clone(),
        }
    }

    fn constant_of(&self, name: &str) -> Option<f32> {
        self.names.iter().position(|n| n == name).map(name_constant)
    }
}

/// Real registry + shadow model for one interleaving.
pub struct RegistryState {
    real: ModelRegistry,
    model: RegistryModel,
    /// Per-thread in-flight shared engine: `(generation, active name at
    /// fetch time, engine)`.
    held: Vec<Option<(u64, String, Arc<InferenceEngine>)>>,
    /// The most recent `shared()` result, for one-Arc-per-generation
    /// identity checks.
    last_shared: Option<(u64, Arc<InferenceEngine>)>,
}

/// All weights uniformly equal to `c` — anything else is a torn swap.
fn is_uniform(ckpt: &ModelCheckpoint, c: f32) -> bool {
    ckpt.scorer
        .iter()
        .chain(ckpt.decoder.iter())
        .all(|t| t.as_slice().iter().all(|&v| (v - c).abs() < f32::EPSILON))
}

impl Scenario for RegistryScenario {
    type State = RegistryState;

    fn name(&self) -> &'static str {
        "serve::registry"
    }

    fn thread_ops(&self) -> Vec<usize> {
        self.scripts.iter().map(Vec::len).collect()
    }

    fn init(&self) -> RegistryState {
        let real = ModelRegistry::new();
        for (i, name) in self.names.iter().enumerate() {
            real.register(name.clone(), self.checkpoint(i));
        }
        RegistryState {
            real,
            model: RegistryModel::new(),
            held: vec![None; self.scripts.len()],
            last_shared: None,
        }
    }

    fn step(&self, state: &mut RegistryState, thread: usize, op: usize) -> Result<(), String> {
        let Some(op) = self.scripts.get(thread).and_then(|s| s.get(op)).copied() else {
            return Err(format!("no op {op} for thread {thread} (bad script)"));
        };
        match op {
            RegistryOp::Activate(i) => {
                let Some(name) = self.names.get(i) else {
                    return Err(format!("script name index {i} out of range"));
                };
                let real = state
                    .real
                    .activate(name)
                    .map_err(|e| format!("activate({name}) failed: {e}"))?;
                let model = state.model.activate(name);
                if real != model {
                    return Err(format!(
                        "activate({name}): real generation {real} but spec says {model}"
                    ));
                }
            }
            RegistryOp::ReadActive => {
                let real = state.real.active();
                match (&real, &state.model.active) {
                    (None, None) => {}
                    (Some(a), Some((generation, name))) => {
                        if a.generation != *generation || &a.name != name {
                            return Err(format!(
                                "active: real ({}, {:?}) but spec says ({generation}, {name:?})",
                                a.generation, a.name
                            ));
                        }
                        let Some(c) = self.constant_of(&a.name) else {
                            return Err(format!("active name {:?} never registered", a.name));
                        };
                        if !is_uniform(&a.checkpoint, c) {
                            return Err(format!(
                                "torn checkpoint: active {:?} has non-uniform weights \
                                 (expected all {c})",
                                a.name
                            ));
                        }
                    }
                    (real, model) => {
                        return Err(format!(
                            "active: real {} but spec says {}",
                            if real.is_some() { "Some" } else { "None" },
                            if model.is_some() { "Some" } else { "None" }
                        ));
                    }
                }
            }
            RegistryOp::Replica => {
                if state.model.active.is_none() {
                    // Pre-activation replica is a typed error by contract;
                    // nothing to cross-check.
                    if state.real.replica().is_ok() {
                        return Err("replica succeeded with no active model".into());
                    }
                    return Ok(());
                }
                let (generation, engine) = state
                    .real
                    .replica()
                    .map_err(|e| format!("replica failed with an active model: {e}"))?;
                let Some((model_generation, _)) = &state.model.active else {
                    return Err("spec lost its active model".into());
                };
                if generation != *model_generation {
                    return Err(format!(
                        "replica generation {generation} but spec says {model_generation}"
                    ));
                }
                if engine.config().ph != self.cfg.ph {
                    return Err("replica restored with wrong patch geometry".into());
                }
            }
            RegistryOp::Shared => {
                if state.model.active.is_none() {
                    if state.real.shared().is_ok() {
                        return Err("shared succeeded with no active model".into());
                    }
                    return Ok(());
                }
                let (generation, engine) = state
                    .real
                    .shared()
                    .map_err(|e| format!("shared failed with an active model: {e}"))?;
                let Some((model_generation, model_name)) = state.model.active.clone() else {
                    return Err("spec lost its active model".into());
                };
                if generation != model_generation {
                    return Err(format!(
                        "shared generation {generation} but spec says {model_generation}"
                    ));
                }
                let Some(c) = self.constant_of(&model_name) else {
                    return Err(format!("active name {model_name:?} never registered"));
                };
                if !is_uniform(&engine.checkpoint(), c) {
                    return Err(format!(
                        "torn shared engine: generation {generation} ({model_name:?}) has \
                         non-uniform weights (expected all {c})"
                    ));
                }
                if let Some((last_generation, last_engine)) = &state.last_shared {
                    if *last_generation == generation && !Arc::ptr_eq(last_engine, &engine) {
                        return Err(format!(
                            "two shared() calls at generation {generation} returned distinct \
                             engines (weights must be resident once per generation)"
                        ));
                    }
                }
                state.last_shared = Some((generation, engine.clone()));
                state.held[thread] = Some((generation, model_name, engine));
            }
            RegistryOp::UseHeld => {
                let Some((generation, name, engine)) = &state.held[thread] else {
                    return Ok(());
                };
                let Some(c) = self.constant_of(name) else {
                    return Err(format!("held name {name:?} never registered"));
                };
                if !is_uniform(&engine.checkpoint(), c) {
                    return Err(format!(
                        "in-flight engine from generation {generation} lost its weights \
                         after a hot swap (expected all {c})"
                    ));
                }
            }
        }
        if state.real.generation() != state.model.generation {
            return Err(format!(
                "generation diverged after {op:?}: real {} vs spec {}",
                state.real.generation(),
                state.model.generation
            ));
        }
        Ok(())
    }

    fn finish(&self, state: &mut RegistryState) -> Result<(), String> {
        // The final published model must be the last linearized
        // activation, with intact (untorn) weights.
        let real = state.real.active();
        match (&real, &state.model.active) {
            (None, None) => Ok(()),
            (Some(a), Some((generation, name)))
                if a.generation == *generation && &a.name == name =>
            {
                Ok(())
            }
            _ => Err("final active model diverged from the spec".into()),
        }
    }

    /// Object `0` is the published active slot (generation + name +
    /// checkpoint); object `1` the one-resident-engine cell behind
    /// `shared()`. Reads of the active slot commute with each other but
    /// not with activations; two `shared()` calls conflict (both may
    /// instantiate the resident engine). `UseHeld` only reads the
    /// thread's retained `Arc`, but is declared a reader of `0` anyway
    /// so DPOR still explores it on *both* sides of every activation —
    /// the in-flight-engine-survives-a-hot-swap orderings are the whole
    /// point of those scenarios.
    fn footprint(&self, thread: usize, op: usize) -> Footprint {
        match self.scripts[thread][op] {
            RegistryOp::Activate(_) => Footprint::new(vec![], vec![0, 1]),
            RegistryOp::ReadActive | RegistryOp::Replica | RegistryOp::UseHeld => {
                Footprint::reads(&[0])
            }
            RegistryOp::Shared => Footprint::new(vec![0], vec![1]),
        }
    }
}

/// Run the registry suite at the given budget.
pub fn registry_suite(budget: Budget, ex: &mut Explorer) {
    use RegistryOp::*;

    // Two activators racing a reader (90 interleavings exhaustively) —
    // this is the scenario that catches the generation-outside-lock
    // race the fix in `ModelRegistry::activate` addresses.
    let racing = RegistryScenario::new(
        &["a", "b", "c"],
        vec![
            vec![Activate(0), Activate(2)],
            vec![Activate(1), ReadActive],
            vec![ReadActive, Replica],
        ],
    );
    ex.exhaustive(&racing);

    // Longer random-schedule churn with replicas in the mix.
    let churn = RegistryScenario::new(
        &["a", "b"],
        vec![
            vec![Activate(0), Activate(1), Activate(0), ReadActive],
            vec![ReadActive, Activate(1), ReadActive, Activate(0)],
            vec![ReadActive, Replica, ReadActive],
        ],
    );
    let trials = match budget {
        Budget::Full => 2000,
        Budget::Small => 100,
    };
    ex.random(&churn, trials, 0x9E6);

    // Hot swap under shared engines: a swapper races two "workers" that
    // fetch the shared engine and then keep using it — every
    // interleaving of fetch vs. activate vs. in-flight use (210
    // exhaustively). The `UseHeld` steps after an `Activate` are the
    // in-flight-batch-completes-on-old-generation guarantee.
    let hot_swap = RegistryScenario::new(
        &["a", "b"],
        vec![
            vec![Activate(0), Activate(1)],
            vec![Shared, UseHeld, Shared],
            vec![Shared, UseHeld],
        ],
    );
    ex.exhaustive(&hot_swap);

    // Longer random-schedule churn mixing swaps, shared fetches, and
    // in-flight re-use across three worker threads.
    let shared_churn = RegistryScenario::new(
        &["a", "b", "c"],
        vec![
            vec![Activate(0), Activate(1), Activate(2), Activate(0)],
            vec![Shared, UseHeld, Shared, UseHeld],
            vec![Shared, UseHeld, UseHeld, Shared],
            vec![ReadActive, Shared, UseHeld, ReadActive],
        ],
    );
    let shared_trials = match budget {
        Budget::Full => 1500,
        Budget::Small => 80,
    };
    ex.random(&shared_churn, shared_trials, 0x5A4ED);
}

// ---------------------------------------------------------------------
// Flight-recorder suite
// ---------------------------------------------------------------------

/// One scripted recorder operation. `Commit(k)` publishes the `k`-th
/// sequence number *this thread* reserved earlier in its own script
/// (scripts are written so every commit follows its reserve), which is
/// exactly how span guards behave: reserve at drop, commit immediately,
/// but with arbitrary cross-thread interleaving in between.
#[derive(Debug, Clone, Copy)]
pub enum RecorderOp {
    /// `reserve()` one sequence number.
    Reserve,
    /// `commit(thread's k-th reserved seq, unique payload)`.
    Commit(usize),
}

/// Threads of reserve/commit ops over one shared [`FlightRecorder`].
pub struct RecorderScenario {
    /// Ring capacity under test.
    pub capacity: usize,
    /// Per-thread op scripts.
    pub scripts: Vec<Vec<RecorderOp>>,
}

/// Real ring + shadow model for one interleaving.
pub struct RecorderState {
    real: FlightRecorder,
    model: RecorderModel,
    /// Sequence numbers each thread has reserved so far.
    reserved: Vec<Vec<u64>>,
}

/// Unique committed payload for thread `t`'s `k`-th reservation.
fn recorder_payload(thread: usize, k: usize) -> u64 {
    (thread as u64) * 100 + k as u64
}

impl Scenario for RecorderScenario {
    type State = RecorderState;

    fn name(&self) -> &'static str {
        "obs::recorder"
    }

    fn thread_ops(&self) -> Vec<usize> {
        self.scripts.iter().map(Vec::len).collect()
    }

    fn init(&self) -> RecorderState {
        RecorderState {
            real: FlightRecorder::with_capacity(self.capacity),
            model: RecorderModel::new(self.capacity),
            reserved: vec![Vec::new(); self.scripts.len()],
        }
    }

    fn step(&self, state: &mut RecorderState, thread: usize, op: usize) -> Result<(), String> {
        let Some(op) = self.scripts.get(thread).and_then(|s| s.get(op)).copied() else {
            return Err(format!("no op {op} for thread {thread} (bad script)"));
        };
        match op {
            RecorderOp::Reserve => {
                let real = state.real.reserve();
                let model = state.model.reserve();
                if real != model {
                    return Err(format!(
                        "reserve: real seq {real} but spec says {model} \
                         (sequence numbers must be dense)"
                    ));
                }
                state.reserved[thread].push(real);
            }
            RecorderOp::Commit(k) => {
                let Some(&seq) = state.reserved[thread].get(k) else {
                    return Err(format!(
                        "thread {thread} commits its reservation {k} before making it (bad script)"
                    ));
                };
                let value = recorder_payload(thread, k);
                state.real.commit(seq, EventKind::Mark, "mc", "", value, 0);
                state.model.commit(seq, value);
            }
        }
        // The ring's contents must sit at the model's fixed point after
        // *every* step — newest-wins means no transient state where a
        // laggard shadows a newer event.
        let real: Vec<(u64, u64)> = state
            .real
            .recent()
            .iter()
            .map(|e| (e.seq, e.value))
            .collect();
        let expected = state.model.expected_survivors();
        if real != expected {
            return Err(format!(
                "ring diverged after {op:?}: real {real:?} but spec says {expected:?}"
            ));
        }
        Ok(())
    }

    fn finish(&self, state: &mut RecorderState) -> Result<(), String> {
        let survivors: Vec<(u64, u64)> = state
            .real
            .recent()
            .iter()
            .map(|e| (e.seq, e.value))
            .collect();
        if state.real.recorded() != state.model.reserved {
            return Err(format!(
                "recorded() {} but spec reserved {}",
                state.real.recorded(),
                state.model.reserved
            ));
        }
        state.model.check_tail(&survivors)
    }
}

/// Run the flight-recorder suite at the given budget.
///
/// Every reserve bumps the shared sequence counter and every commit
/// lands in the one shared ring (and the per-step `recent()` check
/// reads all of it), so the default (fully-dependent) footprint is the
/// honest one: DPOR explores this suite like plain DFS.
pub fn recorder_suite(budget: Budget, ex: &mut Explorer) {
    use RecorderOp::*;

    // Three span-like threads (reserve, reserve, then commit newest
    // first — the laggard shape) over a 2-slot ring: every slot sees
    // cross-thread laggard/newer collisions (34650 interleavings for
    // (4,4,4) exhaustively).
    let laggards = RecorderScenario {
        capacity: 2,
        scripts: vec![
            vec![Reserve, Reserve, Commit(1), Commit(0)],
            vec![Reserve, Reserve, Commit(1), Commit(0)],
            vec![Reserve, Reserve, Commit(0), Commit(1)],
        ],
    };
    // A writer that never commits one reservation (a crashed thread)
    // racing orderly writers over a 1-slot ring — the gap must not
    // resurrect older events (3150 interleavings for (3,4) + a reader
    // thread is implicit in the per-step recent() comparison).
    let crashed = RecorderScenario {
        capacity: 1,
        scripts: vec![
            vec![Reserve, Reserve, Commit(1)],
            vec![Reserve, Commit(0), Reserve, Commit(1)],
        ],
    };
    match budget {
        Budget::Full => {
            ex.exhaustive(&laggards);
            ex.exhaustive(&crashed);
        }
        Budget::Small => {
            ex.random(&laggards, 120, 31);
            ex.exhaustive(&crashed);
        }
    }

    // Bigger churn, randomly scheduled: four threads wrapping a 4-slot
    // ring several times with mixed laggard commits.
    let churn = RecorderScenario {
        capacity: 4,
        scripts: (0..4)
            .map(|t| {
                let mut script = Vec::new();
                for k in 0..4 {
                    script.push(Reserve);
                    // Odd threads lag one commit behind their reserves.
                    if t % 2 == 0 {
                        script.push(Commit(k));
                    } else if k > 0 {
                        script.push(Commit(k - 1));
                    }
                }
                if t % 2 != 0 {
                    script.push(Commit(3));
                }
                script
            })
            .collect(),
    };
    let trials = match budget {
        Budget::Full => 4000,
        Budget::Small => 200,
    };
    ex.random(&churn, trials, 0x0B5);
}

// ---------------------------------------------------------------------
// Trace arena + tail sampler suite
// ---------------------------------------------------------------------

/// One scripted trace operation. Trace identity is per *owner thread*
/// and incarnation (`trace_id_for`), so cross-thread ops — a worker
/// recording spans into a requester's trace, a laggard committing
/// after the requester finished — are expressible by naming the owner.
#[derive(Debug, Clone, Copy)]
pub enum TraceOp {
    /// `start()` the acting thread's own trace (current incarnation).
    Start,
    /// `begin(owner's trace, name)`; the pending span is held by the
    /// *acting* thread (the laggard shape).
    Begin(usize),
    /// `commit(acting thread's k-th pending span)`.
    Commit(usize),
    /// `record(owner's trace, name, dur)` — begin + commit in one call.
    Record(usize),
    /// `finish(own trace, e2e, error)` and offer it to the sampler;
    /// the thread's next `Start` uses a fresh trace id.
    Finish(bool),
}

/// Threads of trace ops over one shared [`TraceArena`] + [`TailSampler`].
pub struct TraceScenario {
    /// Arena trace-slot capacity under test.
    pub capacity: usize,
    /// Per-trace span budget under test.
    pub spans_per_trace: usize,
    /// Tail sampler `(slow_cap, error_cap, window)`.
    pub sampler: (usize, usize, u64),
    /// Per-thread op scripts.
    pub scripts: Vec<Vec<TraceOp>>,
}

/// Real arena + sampler and their shadow models for one interleaving.
pub struct TraceState {
    real: TraceArena,
    sampler: TailSampler,
    model: TraceModel,
    smodel: SamplerModel,
    /// Current incarnation per owner thread (bumped at `Finish`).
    incarnation: Vec<u64>,
    /// Pending spans held by each acting thread:
    /// `(real pending, trace_id, model idx, span_id)`.
    pendings: Vec<Vec<(PendingSpan, u64, usize, u64)>>,
}

/// Deterministic nonzero trace id for thread `t`'s `k`-th trace. All
/// ids are odd, so with an even slot count every trace probes from the
/// same home slot — maximal probe collision.
fn trace_id_for(thread: usize, incarnation: u64) -> u64 {
    1 + 2 * (thread as u64 + 16 * incarnation)
}

/// Deterministic e2e latency for thread `t`'s `k`-th trace: a small
/// set of repeating values, so sampler tie-breaks and displacements
/// both occur under exploration.
fn trace_e2e_for(thread: usize, incarnation: u64) -> u64 {
    ((thread as u64 * 7 + incarnation * 3) % 5 + 1) * 10
}

impl TraceScenario {
    fn owner_ctx(&self, state: &TraceState, owner: usize) -> TraceCtx {
        TraceCtx {
            trace_id: trace_id_for(owner, state.incarnation[owner]),
            span_id: 0,
        }
    }
}

impl Scenario for TraceScenario {
    type State = TraceState;

    fn name(&self) -> &'static str {
        "obs::trace"
    }

    fn thread_ops(&self) -> Vec<usize> {
        self.scripts.iter().map(Vec::len).collect()
    }

    fn init(&self) -> TraceState {
        // The arena's admission gate reads the global obs enable flag;
        // the suite asserts the enabled contract.
        adarnet_obs::set_enabled(true);
        let (slow, err, window) = self.sampler;
        TraceState {
            real: TraceArena::with_capacity(self.capacity, self.spans_per_trace),
            sampler: TailSampler::new(slow, err, window),
            model: TraceModel::new(self.capacity, self.spans_per_trace),
            smodel: SamplerModel::new(slow, err, window),
            incarnation: vec![0; self.scripts.len()],
            pendings: vec![Vec::new(); self.scripts.len()],
        }
    }

    fn step(&self, state: &mut TraceState, thread: usize, op: usize) -> Result<(), String> {
        let Some(op) = self.scripts.get(thread).and_then(|s| s.get(op)).copied() else {
            return Err(format!("no op {op} for thread {thread} (bad script)"));
        };
        match op {
            TraceOp::Start => {
                let ctx = self.owner_ctx(state, thread);
                let real = state.real.start(ctx);
                let model = state.model.start(ctx.trace_id);
                if real != model {
                    return Err(format!(
                        "start({:#x}): real {real} but spec says {model}",
                        ctx.trace_id
                    ));
                }
            }
            TraceOp::Begin(owner) => {
                let ctx = self.owner_ctx(state, owner);
                let real = state.real.begin(ctx, "mc_begin");
                let model = state.model.begin(ctx.trace_id, 0, "mc_begin");
                match (real, model) {
                    (Some(p), Some((span_id, idx))) => {
                        if p.span_id != span_id {
                            return Err(format!(
                                "begin on {:#x}: real span id {} but spec says {span_id}",
                                ctx.trace_id, p.span_id
                            ));
                        }
                        state.pendings[thread].push((p, ctx.trace_id, idx, span_id));
                    }
                    (None, None) => {}
                    (real, model) => {
                        return Err(format!(
                            "begin on {:#x}: real {} but spec says {}",
                            ctx.trace_id,
                            real.is_some(),
                            model.is_some()
                        ));
                    }
                }
            }
            TraceOp::Commit(k) => {
                let Some(&(p, trace_id, idx, span_id)) = state.pendings[thread].get(k) else {
                    // The matching Begin hit a budget/not-in-flight
                    // branch in this interleaving; nothing to commit.
                    return Ok(());
                };
                let dur = 100 + k as u64;
                let real = state.real.commit(p, dur, "k", k as u64);
                let model = state
                    .model
                    .commit(trace_id, idx, span_id, dur, "k", k as u64);
                if real != model {
                    return Err(format!(
                        "commit span {span_id} of {trace_id:#x}: real {real} but spec says {model}"
                    ));
                }
            }
            TraceOp::Record(owner) => {
                let ctx = self.owner_ctx(state, owner);
                let dur = 7 * (owner as u64 + 1);
                let real = state
                    .real
                    .record(ctx, "mc_record", dur, "owner", owner as u64);
                let model =
                    state
                        .model
                        .record(ctx.trace_id, 0, "mc_record", dur, "owner", owner as u64);
                if real != model {
                    return Err(format!(
                        "record on {:#x}: real {real:?} but spec says {model:?}",
                        ctx.trace_id
                    ));
                }
            }
            TraceOp::Finish(error) => {
                let ctx = self.owner_ctx(state, thread);
                let e2e = trace_e2e_for(thread, state.incarnation[thread]);
                let real = state.real.finish(ctx, e2e, error);
                let model = state.model.finish(ctx.trace_id);
                match (real, model) {
                    (Some(fin), Some((spans, dropped))) => {
                        let got: Vec<ModelSpan> = fin
                            .spans
                            .iter()
                            .map(|s| ModelSpan {
                                span_id: s.span_id,
                                parent: s.parent,
                                name: s.name,
                                dur_ns: s.dur_ns,
                                field: s.field,
                                value: s.value,
                            })
                            .collect();
                        if got != spans {
                            return Err(format!(
                                "finish {:#x}: spans {got:?} but spec says {spans:?} \
                                 (torn or lost span)",
                                ctx.trace_id
                            ));
                        }
                        if fin.dropped_spans != dropped {
                            return Err(format!(
                                "finish {:#x}: dropped {} but spec says {dropped}",
                                ctx.trace_id, fin.dropped_spans
                            ));
                        }
                        state.sampler.offer(fin);
                        state.smodel.offer(e2e, error);
                        let got: Vec<u64> = state
                            .sampler
                            .snapshot()
                            .iter()
                            .map(|r| r.offer_seq)
                            .collect();
                        let want = state.smodel.expected();
                        if got != want {
                            return Err(format!("sampler snapshot {got:?} but spec says {want:?}"));
                        }
                    }
                    (None, None) => {}
                    (real, model) => {
                        return Err(format!(
                            "finish {:#x}: real {} but spec says {}",
                            ctx.trace_id,
                            real.is_some(),
                            model.is_some()
                        ));
                    }
                }
                state.incarnation[thread] += 1;
            }
        }
        // Slot bookkeeping must agree after every step — a leaked slot
        // here is a slow arena-exhaustion leak in production.
        if state.real.in_flight() != state.model.in_flight() {
            return Err(format!(
                "in_flight {} after {op:?} but spec says {}",
                state.real.in_flight(),
                state.model.in_flight()
            ));
        }
        Ok(())
    }

    fn finish(&self, state: &mut TraceState) -> Result<(), String> {
        // Drain: every still-live trace must finish exactly once, with
        // real and spec agreeing on liveness; afterwards the arena must
        // be empty and the sampler must sit at the model's fixed point.
        for thread in 0..self.scripts.len() {
            for inc in 0..=state.incarnation[thread] {
                let id = trace_id_for(thread, inc);
                let ctx = TraceCtx {
                    trace_id: id,
                    span_id: 0,
                };
                let real = state.real.finish(ctx, 1, false);
                let model = state.model.finish(id);
                if real.is_some() != model.is_some() {
                    return Err(format!(
                        "drain finish {id:#x}: real {} but spec says {}",
                        real.is_some(),
                        model.is_some()
                    ));
                }
            }
        }
        if state.real.in_flight() != 0 {
            return Err(format!(
                "{} trace slot(s) leaked after drain",
                state.real.in_flight()
            ));
        }
        if state.sampler.offers() != state.smodel.offers() {
            return Err(format!(
                "sampler offers {} but spec says {}",
                state.sampler.offers(),
                state.smodel.offers()
            ));
        }
        Ok(())
    }
}

/// Run the trace arena + tail sampler suite at the given budget.
///
/// Like the recorder suite, every op hits the one shared arena (and
/// the per-step checks read all of it), so the default fully-dependent
/// footprint is honest and DPOR degenerates to DFS here.
pub fn trace_suite(budget: Budget, ex: &mut Explorer) {
    use TraceOp::*;

    // Three requests over a 2-slot arena with colliding home slots:
    // admission races, span-budget drops (thread 2 begins three spans
    // against a budget of 2), and an errored finish all interleave
    // (90090 interleavings for (4,4,5) exhaustively).
    let contention = TraceScenario {
        capacity: 2,
        spans_per_trace: 2,
        sampler: (2, 2, 4),
        scripts: vec![
            vec![Start, Begin(0), Commit(0), Finish(false)],
            vec![Start, Record(1), Record(1), Finish(true)],
            vec![Start, Record(2), Record(2), Record(2), Finish(false)],
        ],
    };
    // The laggard shape on a 1-slot arena: thread 1 begins a span on
    // thread 0's trace; depending on the schedule, thread 0 finishes
    // first and thread 1's own trace re-claims the slot — the laggard
    // commit must never land in the successor trace.
    let laggard = TraceScenario {
        capacity: 1,
        spans_per_trace: 2,
        sampler: (1, 1, 2),
        scripts: vec![
            vec![Start, Finish(false)],
            vec![Begin(0), Start, Commit(0), Finish(true)],
        ],
    };
    match budget {
        Budget::Full => {
            ex.exhaustive(&contention);
            ex.exhaustive(&laggard);
        }
        Budget::Small => {
            ex.random(&contention, 150, 47);
            ex.exhaustive(&laggard);
        }
    }

    // Incarnation churn, randomly scheduled: three threads each running
    // two traced requests back-to-back, recording into each other's
    // traces, with enough finishes to roll the sampler window.
    let churn = TraceScenario {
        capacity: 2,
        spans_per_trace: 2,
        sampler: (2, 2, 4),
        scripts: (0..3)
            .map(|t| {
                vec![
                    Start,
                    Record(t),
                    Finish(t == 1),
                    Start,
                    Record((t + 1) % 3),
                    Finish(t == 2),
                ]
            })
            .collect(),
    };
    let trials = match budget {
        Budget::Full => 4000,
        Budget::Small => 250,
    };
    ex.random(&churn, trials, 0x17ACE);
}

/// Run every suite under `mode`, returning `(suite name, stats)` per
/// suite.
pub fn run_all(budget: Budget, mode: Mode) -> Vec<(&'static str, SuiteStats)> {
    fn run(
        name: &'static str,
        budget: Budget,
        mode: Mode,
        suite: fn(Budget, &mut Explorer),
    ) -> (&'static str, SuiteStats) {
        let mut ex = Explorer::new(mode);
        suite(budget, &mut ex);
        (name, ex.stats)
    }
    // The recorder's ops are all fully dependent (every one hits the
    // shared ring), so DPOR provably degenerates to DFS there; under
    // Compare that would re-enumerate its ~38k exhaustive schedules a
    // second time for zero information. The queue and cache suites stay
    // in Compare as the degenerate-footprint cross-check — they are an
    // order of magnitude smaller.
    let recorder_mode = if mode == Mode::Compare {
        Mode::Dpor
    } else {
        mode
    };
    vec![
        run("queue", budget, mode, queue_suite),
        run("lanes", budget, mode, lane_suite),
        run("quota", budget, mode, quota_suite),
        run("cache", budget, mode, cache_suite),
        run("registry", budget, mode, registry_suite),
        run("recorder", budget, recorder_mode, recorder_suite),
        run("trace", budget, recorder_mode, trace_suite),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpor::explore_dpor;
    use crate::sched::{explore_exhaustive, interleaving_count};
    use adarnet_core::sync;
    use std::sync::Mutex;

    #[test]
    fn small_budget_suites_pass() {
        for (name, stats) in run_all(Budget::Small, Mode::Dpor) {
            assert!(
                stats.violations.is_empty(),
                "{name}: {:?}",
                stats.violations
            );
            assert!(
                stats.mismatches.is_empty(),
                "{name}: {:?}",
                stats.mismatches
            );
            assert!(stats.explored() > 0, "{name} explored nothing");
            assert!(
                stats.covered() >= stats.explored(),
                "{name} covered < explored"
            );
        }
    }

    #[test]
    fn dfs_and_dpor_agree_on_the_quota_footprints() {
        // A small exhaustive space where the per-tenant footprints do
        // real commuting: Compare cross-checks the DPOR reduction
        // against full DFS — verdicts and covered counts must match.
        let take = |tenant, now_ns| QuotaOp { tenant, now_ns };
        let ms = 1_000_000u64;
        let racing = QuotaScenario {
            cfg: QuotaConfig {
                rate_per_sec: 100,
                burst: 1,
            },
            scripts: vec![
                vec![take(1, 0), take(1, 5 * ms), take(2, 10 * ms)],
                vec![take(2, 0), take(1, 3 * ms), take(2, 7 * ms)],
            ],
        };
        let mut ex = Explorer::new(Mode::Compare);
        ex.exhaustive(&racing);
        assert!(ex.stats.mismatches.is_empty(), "{:?}", ex.stats.mismatches);
        assert!(ex.stats.violations.is_empty(), "{:?}", ex.stats.violations);
        assert!(
            ex.stats.exh_explored < ex.stats.exh_covered,
            "tenant footprints should commute somewhere ({} of {})",
            ex.stats.exh_explored,
            ex.stats.exh_covered
        );
    }

    #[test]
    fn dfs_and_dpor_agree_on_the_registry_footprints() {
        use RegistryOp::*;
        let hot_swap = RegistryScenario::new(
            &["a", "b"],
            vec![
                vec![Activate(0), Activate(1)],
                vec![Shared, UseHeld, Shared],
                vec![Shared, UseHeld],
            ],
        );
        let mut ex = Explorer::new(Mode::Compare);
        ex.exhaustive(&hot_swap);
        assert!(ex.stats.mismatches.is_empty(), "{:?}", ex.stats.mismatches);
        assert!(ex.stats.violations.is_empty(), "{:?}", ex.stats.violations);
    }

    #[test]
    fn dpor_reduces_the_deep_lane_burst_at_least_five_fold() {
        use LaneOp::*;
        // Same shape as lane_suite's `deep` scenario: two commuting
        // burst producers against one popper.
        let deep = LaneScenario {
            capacity: 4,
            weights: [8, 4, 1],
            scripts: vec![
                vec![Push(0, 1), Push(0, 2), Push(0, 3), Push(0, 4)],
                vec![Push(2, 21), Push(2, 22), Push(2, 23), Push(2, 24)],
                vec![TryPop, TryPopBatch(2), TryPop],
            ],
        };
        let d = explore_dpor(&deep);
        assert!(d.result.violations.is_empty(), "{:?}", d.result.violations);
        assert_eq!(d.covered, interleaving_count(&[4, 4, 3]));
        assert!(
            d.result.interleavings * 5 <= d.covered,
            "DPOR explored {} of {} — reduction under 5x",
            d.result.interleavings,
            d.covered
        );
    }

    /// Deliberately racy: both threads write shared location `1`, but
    /// thread 1 guards its write with the *wrong* lock, so the two
    /// writes are unordered by happens-before in every schedule.
    struct RacyPair;
    impl Scenario for RacyPair {
        type State = (Mutex<u64>, Mutex<u64>);
        fn name(&self) -> &'static str {
            "seeded-racy-pair"
        }
        fn thread_ops(&self) -> Vec<usize> {
            vec![1, 1]
        }
        fn init(&self) -> Self::State {
            (Mutex::new(0), Mutex::new(0))
        }
        fn step(&self, state: &mut Self::State, thread: usize, _op: usize) -> Result<(), String> {
            if thread == 0 {
                let mut g = sync::lock(&state.0);
                sync::trace::write(1);
                *g += 1;
            } else {
                // Bug under test: location 1 is supposed to be guarded
                // by the first mutex.
                let mut g = sync::lock(&state.1);
                sync::trace::write(1);
                *g += 1;
            }
            Ok(())
        }
        fn finish(&self, _: &mut Self::State) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn race_detector_flags_a_seeded_two_lock_race() {
        let r = explore_exhaustive(&RacyPair);
        assert!(!r.violations.is_empty(), "seeded race must be caught");
        let v = &r.violations[0];
        assert!(v.message.contains("data race"), "{}", v.message);
        assert!(!v.trace.is_empty(), "violation must carry a schedule");
        let d = explore_dpor(&RacyPair);
        assert!(
            d.result
                .violations
                .iter()
                .any(|v| v.message.contains("data race")),
            "DPOR must catch the same race: {:?}",
            d.result.violations
        );
    }

    /// Deliberate lock-order inversion: thread 0 nests `a` then `b`,
    /// thread 1 nests `b` then `a`. The mini-loom serializes steps so
    /// no schedule actually deadlocks — the acquisition-graph cycle
    /// check must flag the hazard anyway.
    struct InvertedLocks;
    impl Scenario for InvertedLocks {
        type State = (Mutex<u64>, Mutex<u64>);
        fn name(&self) -> &'static str {
            "seeded-inverted-locks"
        }
        fn thread_ops(&self) -> Vec<usize> {
            vec![1, 1]
        }
        fn init(&self) -> Self::State {
            (Mutex::new(0), Mutex::new(0))
        }
        fn step(&self, state: &mut Self::State, thread: usize, _op: usize) -> Result<(), String> {
            if thread == 0 {
                let _a = sync::lock(&state.0);
                let mut b = sync::lock(&state.1);
                *b += 1;
            } else {
                let _b = sync::lock(&state.1);
                let mut a = sync::lock(&state.0);
                *a += 1;
            }
            Ok(())
        }
        fn finish(&self, _: &mut Self::State) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn cycle_detector_flags_a_seeded_lock_inversion() {
        let r = explore_exhaustive(&InvertedLocks);
        assert!(!r.violations.is_empty(), "seeded inversion must be caught");
        let v = &r.violations[0];
        assert!(v.message.contains("lock-order inversion"), "{}", v.message);
        assert!(!v.trace.is_empty(), "violation must carry a schedule");
        let d = explore_dpor(&InvertedLocks);
        assert!(
            d.result
                .violations
                .iter()
                .any(|v| v.message.contains("lock-order inversion")),
            "DPOR must catch the same inversion: {:?}",
            d.result.violations
        );
    }

    #[test]
    fn oracle_catches_a_seeded_recorder_bug() {
        // A real ring one slot smaller than the model believes loses
        // part of the tail the spec protects — the harness must see it.
        struct Buggy(RecorderScenario);
        impl Scenario for Buggy {
            type State = RecorderState;
            fn name(&self) -> &'static str {
                "buggy-recorder"
            }
            fn thread_ops(&self) -> Vec<usize> {
                self.0.thread_ops()
            }
            fn init(&self) -> RecorderState {
                RecorderState {
                    real: FlightRecorder::with_capacity(1),
                    model: RecorderModel::new(2),
                    reserved: vec![Vec::new(); self.0.scripts.len()],
                }
            }
            fn step(&self, s: &mut RecorderState, t: usize, o: usize) -> Result<(), String> {
                self.0.step(s, t, o)
            }
            fn finish(&self, s: &mut RecorderState) -> Result<(), String> {
                self.0.finish(s)
            }
        }
        use RecorderOp::*;
        let buggy = Buggy(RecorderScenario {
            capacity: 2,
            scripts: vec![
                vec![Reserve, Commit(0), Reserve, Commit(1)],
                vec![Reserve, Commit(0)],
            ],
        });
        let r = explore_exhaustive(&buggy);
        assert!(
            !r.violations.is_empty(),
            "seeded undersized ring must be caught"
        );
    }

    #[test]
    fn oracle_catches_a_seeded_trace_arena_size_bug() {
        // A real arena one slot smaller than the spec believes must
        // diverge on some start's admission decision.
        struct Buggy(TraceScenario);
        impl Scenario for Buggy {
            type State = TraceState;
            fn name(&self) -> &'static str {
                "buggy-trace"
            }
            fn thread_ops(&self) -> Vec<usize> {
                self.0.thread_ops()
            }
            fn init(&self) -> TraceState {
                let mut s = self.0.init();
                s.real = TraceArena::with_capacity(1, self.0.spans_per_trace);
                s
            }
            fn step(&self, s: &mut TraceState, t: usize, o: usize) -> Result<(), String> {
                self.0.step(s, t, o)
            }
            fn finish(&self, s: &mut TraceState) -> Result<(), String> {
                self.0.finish(s)
            }
        }
        use TraceOp::*;
        let buggy = Buggy(TraceScenario {
            capacity: 2,
            spans_per_trace: 2,
            sampler: (2, 2, 4),
            scripts: vec![
                vec![Start, Record(0), Finish(false)],
                vec![Start, Record(1), Finish(false)],
            ],
        });
        let r = explore_exhaustive(&buggy);
        assert!(
            !r.violations.is_empty(),
            "seeded undersized arena must be caught"
        );
    }

    #[test]
    fn oracle_catches_a_seeded_lane_weight_bug() {
        // A real queue configured with different weights than the spec
        // believes must diverge on some pop's lane choice.
        struct Buggy(LaneScenario);
        impl Scenario for Buggy {
            type State = LaneState;
            fn name(&self) -> &'static str {
                "buggy-lanes"
            }
            fn thread_ops(&self) -> Vec<usize> {
                self.0.thread_ops()
            }
            fn init(&self) -> LaneState {
                LaneState {
                    // Real weights favor bulk; the spec expects [4,2,1].
                    real: LaneQueue::new(self.0.capacity, [1, 1, 4]),
                    model: PriorityQueueModel::new(self.0.capacity, [4, 2, 1]),
                }
            }
            fn step(&self, s: &mut LaneState, t: usize, o: usize) -> Result<(), String> {
                self.0.step(s, t, o)
            }
            fn finish(&self, s: &mut LaneState) -> Result<(), String> {
                self.0.finish(s)
            }
        }
        use LaneOp::*;
        let buggy = Buggy(LaneScenario {
            capacity: 8,
            weights: [4, 2, 1],
            scripts: vec![
                vec![Push(0, 1), Push(0, 2), Push(0, 3)],
                vec![Push(2, 10), Push(2, 11), Push(2, 12)],
            ],
        });
        let r = explore_exhaustive(&buggy);
        assert!(
            !r.violations.is_empty(),
            "seeded weight mismatch must be caught at drain time"
        );
    }

    #[test]
    fn oracle_catches_a_seeded_quota_bug() {
        // A real table admitting at double the spec's rate must diverge.
        struct Buggy(QuotaScenario);
        impl Scenario for Buggy {
            type State = QuotaState;
            fn name(&self) -> &'static str {
                "buggy-quota"
            }
            fn thread_ops(&self) -> Vec<usize> {
                self.0.thread_ops()
            }
            fn init(&self) -> QuotaState {
                QuotaState {
                    real: QuotaTable::new(QuotaConfig {
                        rate_per_sec: self.0.cfg.rate_per_sec * 2,
                        burst: self.0.cfg.burst,
                    }),
                    model: std::collections::HashMap::new(),
                }
            }
            fn step(&self, s: &mut QuotaState, t: usize, o: usize) -> Result<(), String> {
                self.0.step(s, t, o)
            }
            fn finish(&self, s: &mut QuotaState) -> Result<(), String> {
                self.0.finish(s)
            }
        }
        let take = |tenant, now_ns| QuotaOp { tenant, now_ns };
        let buggy = Buggy(QuotaScenario {
            cfg: QuotaConfig {
                rate_per_sec: 100,
                burst: 1,
            },
            scripts: vec![
                // 100/s = one token per 10 ms; at 2× rate the 5 ms take
                // after exhaustion is wrongly admitted.
                vec![take(1, 0), take(1, 5_000_000), take(1, 10_000_000)],
            ],
        });
        let r = explore_exhaustive(&buggy);
        assert!(
            !r.violations.is_empty(),
            "seeded double-rate table must be caught"
        );
    }

    #[test]
    fn oracle_catches_a_seeded_queue_bug() {
        // Sanity that the harness *can* fail: a wrong-capacity shadow
        // model must diverge from the real queue.
        struct Buggy(QueueScenario);
        impl Scenario for Buggy {
            type State = QueueState;
            fn name(&self) -> &'static str {
                "buggy"
            }
            fn thread_ops(&self) -> Vec<usize> {
                self.0.thread_ops()
            }
            fn init(&self) -> QueueState {
                // Real queue one slot smaller than the model believes.
                QueueState {
                    real: BoundedQueue::new(1),
                    model: QueueModel::new(2),
                }
            }
            fn step(&self, s: &mut QueueState, t: usize, o: usize) -> Result<(), String> {
                self.0.step(s, t, o)
            }
            fn finish(&self, s: &mut QueueState) -> Result<(), String> {
                self.0.finish(s)
            }
        }
        let buggy = Buggy(QueueScenario {
            capacity: 1,
            scripts: vec![
                vec![QueueOp::Push(1), QueueOp::Push(2)],
                vec![QueueOp::TryPop],
            ],
        });
        let r = explore_exhaustive(&buggy);
        assert!(
            !r.violations.is_empty(),
            "seeded capacity bug must be caught"
        );
    }
}
