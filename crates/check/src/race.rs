//! Dynamic race and lock-order-inversion detection over sync traces.
//!
//! Input: the event stream captured by `adarnet_core::sync::trace`
//! during one scheduled interleaving (the scheduler runs every logical
//! thread on one OS thread, so the stream is a total order). Output:
//! every pair of conflicting annotated accesses *not* ordered by
//! happens-before, and every cycle in the lock-acquisition graph.
//!
//! # Happens-before rules (vector clocks)
//!
//! Each thread `t` owns a clock `C[t]`, ticked at every event. Each
//! lock `m` carries two release clocks: `W[m]` (joined at every
//! exclusive release, including condvar-wait entry) and `R[m]` (joined
//! at every shared release). An exclusive acquire joins `W[m] ⊔ R[m]`
//! into the acquirer (a writer is ordered after all prior readers); a
//! shared acquire joins only `W[m]` (readers are ordered after the
//! last writer but not after each other). Annotated accesses snapshot
//! the acting thread's clock; two conflicting accesses (same location,
//! at least one write, different threads) race iff neither snapshot
//! `≤` the other's current clock.
//!
//! Because the scheduler explores interleavings exhaustively (or via
//! DPOR, which preserves race coverage per Mazurkiewicz trace), a race
//! reported in *any* explored schedule is a real race of the scenario;
//! the violation carries that schedule for replay.
//!
//! # Lock-order inversion
//!
//! While replaying, each `Acquire` of `m` with locks `h…` still held
//! adds edges `h → m` to an acquisition graph (witnessed by the event
//! index). A cycle means two threads acquire the same locks in
//! opposite orders somewhere in the schedule — a latent deadlock even
//! if this particular schedule completed. Scenario scripts are fixed,
//! so both halves of an inversion appear in every schedule and
//! per-schedule detection is complete for the scripted behaviors.

use std::collections::HashMap;

use adarnet_core::sync::trace::{Event, EventKind};

use crate::clock::VectorClock;

/// Classification of a reported problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// Two conflicting accesses unordered by happens-before.
    DataRace,
    /// A cycle in the lock-acquisition graph.
    LockInversion,
}

/// One analysis finding, with a human-readable witness.
#[derive(Debug, Clone)]
pub struct Problem {
    /// What kind of defect this is.
    pub kind: ProblemKind,
    /// Witness description (event indices refer to the replayed
    /// trace; lock numbers are first-seen order within the schedule).
    pub message: String,
}

/// Cap on reported problems per trace; a broken scenario repeats the
/// same race at every subsequent access.
const MAX_PROBLEMS: usize = 8;

/// A recorded access: who, where in the trace, and its clock snapshot.
#[derive(Debug, Clone)]
struct Access {
    thread: usize,
    event: usize,
    clock: VectorClock,
}

/// Replay one schedule's event stream; report races and inversions.
pub fn analyze(events: &[Event]) -> Vec<Problem> {
    let threads = events
        .iter()
        .map(|e| e.thread as usize + 1)
        .max()
        .unwrap_or(0);
    let mut clocks: Vec<VectorClock> = (0..threads).map(|_| VectorClock::new(threads)).collect();
    // Per-lock release clocks: (exclusive-release join, shared-release join).
    let mut lock_clocks: HashMap<usize, (VectorClock, VectorClock)> = HashMap::new();
    // Per-thread stack of (lock, shared) currently held.
    let mut held: Vec<Vec<(usize, bool)>> = vec![Vec::new(); threads];
    // Acquisition-graph edges with their first witness:
    // (held, acquired) -> (thread, event index).
    let mut edges: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    // Stable display numbering for lock addresses.
    let mut lock_names: HashMap<usize, usize> = HashMap::new();
    // Last write and per-thread latest reads per annotated location.
    let mut last_write: HashMap<u64, Access> = HashMap::new();
    let mut last_reads: HashMap<u64, Vec<Access>> = HashMap::new();

    let mut problems: Vec<Problem> = Vec::new();
    let race = |problems: &mut Vec<Problem>, message: String| {
        if problems.len() < MAX_PROBLEMS && !problems.iter().any(|p| p.message == message) {
            problems.push(Problem {
                kind: ProblemKind::DataRace,
                message,
            });
        }
    };

    for (i, ev) in events.iter().enumerate() {
        let t = ev.thread as usize;
        clocks[t].tick(t);
        match ev.kind {
            EventKind::Acquire { lock, shared } => {
                let next_name = lock_names.len();
                lock_names.entry(lock).or_insert(next_name);
                if let Some((w, r)) = lock_clocks.get(&lock) {
                    let (w, r) = (w.clone(), r.clone());
                    clocks[t].join(&w);
                    if !shared {
                        clocks[t].join(&r);
                    }
                }
                for &(h, _) in &held[t] {
                    if h != lock {
                        edges.entry((h, lock)).or_insert((t, i));
                    }
                }
                held[t].push((lock, shared));
            }
            EventKind::Release { lock } | EventKind::Wait { lock } => {
                let shared = match held[t].iter().rposition(|&(l, _)| l == lock) {
                    Some(pos) => held[t].remove(pos).1,
                    None => false, // unbalanced release: treat as exclusive
                };
                let entry = lock_clocks
                    .entry(lock)
                    .or_insert_with(|| (VectorClock::new(threads), VectorClock::new(threads)));
                if shared {
                    entry.1.join(&clocks[t]);
                } else {
                    entry.0.join(&clocks[t]);
                }
            }
            EventKind::Read { loc } => {
                if let Some(w) = last_write.get(&loc) {
                    if w.thread != t && !w.clock.le(&clocks[t]) {
                        race(
                            &mut problems,
                            format!(
                                "data race on loc {loc}: thread {t} read (event {i}) is \
                                 concurrent with thread {} write (event {})",
                                w.thread, w.event
                            ),
                        );
                    }
                }
                let reads = last_reads.entry(loc).or_default();
                reads.retain(|a| a.thread != t);
                reads.push(Access {
                    thread: t,
                    event: i,
                    clock: clocks[t].clone(),
                });
            }
            EventKind::Write { loc } => {
                if let Some(w) = last_write.get(&loc) {
                    if w.thread != t && !w.clock.le(&clocks[t]) {
                        race(
                            &mut problems,
                            format!(
                                "data race on loc {loc}: thread {t} write (event {i}) is \
                                 concurrent with thread {} write (event {})",
                                w.thread, w.event
                            ),
                        );
                    }
                }
                for r in last_reads.get(&loc).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if r.thread != t && !r.clock.le(&clocks[t]) {
                        race(
                            &mut problems,
                            format!(
                                "data race on loc {loc}: thread {t} write (event {i}) is \
                                 concurrent with thread {} read (event {})",
                                r.thread, r.event
                            ),
                        );
                    }
                }
                last_reads.remove(&loc);
                last_write.insert(
                    loc,
                    Access {
                        thread: t,
                        event: i,
                        clock: clocks[t].clone(),
                    },
                );
            }
        }
    }

    if let Some(cycle) = find_cycle(&edges) {
        let name = |l: usize| lock_names.get(&l).copied().unwrap_or(usize::MAX);
        let mut path = String::new();
        for (a, b) in &cycle {
            let (wt, wi) = edges[&(*a, *b)];
            path.push_str(&format!(
                "lock#{} -> lock#{} (thread {wt}, event {wi}); ",
                name(*a),
                name(*b)
            ));
        }
        problems.push(Problem {
            kind: ProblemKind::LockInversion,
            message: format!("lock-order inversion: {}", path.trim_end_matches("; ")),
        });
    }

    problems
}

/// Find one cycle in the acquisition graph, as the list of edges along
/// it, or `None` if the graph is acyclic.
fn find_cycle(edges: &HashMap<(usize, usize), (usize, usize)>) -> Option<Vec<(usize, usize)>> {
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    for &(a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    for v in adj.values_mut() {
        v.sort_unstable(); // deterministic traversal order
    }
    // DFS with an explicit path; a back edge to a node on the current
    // path closes a cycle.
    let mut visited: std::collections::HashSet<usize> = Default::default();
    let mut nodes: Vec<usize> = adj.keys().copied().collect();
    nodes.sort_unstable();
    for &start in &nodes {
        if visited.contains(&start) {
            continue;
        }
        let mut path: Vec<usize> = Vec::new();
        let mut on_path: std::collections::HashSet<usize> = Default::default();
        // Stack of (node, next-neighbor index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        path.push(start);
        on_path.insert(start);
        visited.insert(start);
        while let Some(top) = stack.last_mut() {
            let node = top.0;
            let idx = top.1;
            top.1 += 1;
            let neighbors = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
            if idx >= neighbors.len() {
                stack.pop();
                path.pop();
                on_path.remove(&node);
                continue;
            }
            let m = neighbors[idx];
            if on_path.contains(&m) {
                // Close the cycle from m .. node -> m.
                let from = path.iter().position(|&p| p == m).unwrap_or(0);
                let mut cycle: Vec<(usize, usize)> = Vec::new();
                for w in path[from..].windows(2) {
                    cycle.push((w[0], w[1]));
                }
                cycle.push((node, m));
                return Some(cycle);
            }
            if !visited.contains(&m) {
                visited.insert(m);
                on_path.insert(m);
                path.push(m);
                stack.push((m, 0));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use adarnet_core::sync::trace::EventKind::{Acquire, Read, Release, Wait, Write};

    fn ev(thread: u32, kind: EventKind) -> Event {
        Event { thread, kind }
    }

    #[test]
    fn mutex_protected_accesses_do_not_race() {
        let events = vec![
            ev(
                0,
                Acquire {
                    lock: 1,
                    shared: false,
                },
            ),
            ev(0, Write { loc: 7 }),
            ev(0, Release { lock: 1 }),
            ev(
                1,
                Acquire {
                    lock: 1,
                    shared: false,
                },
            ),
            ev(1, Read { loc: 7 }),
            ev(1, Release { lock: 1 }),
        ];
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn unprotected_conflicting_writes_race() {
        let events = vec![ev(0, Write { loc: 7 }), ev(1, Write { loc: 7 })];
        let problems = analyze(&events);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert_eq!(problems[0].kind, ProblemKind::DataRace);
        assert!(problems[0].message.contains("loc 7"));
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let events = vec![
            ev(0, Write { loc: 7 }),
            ev(0, Read { loc: 7 }),
            ev(0, Write { loc: 7 }),
        ];
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn one_lock_held_only_by_the_writer_still_races() {
        // The reader never takes the lock, so the writer's critical
        // section orders nothing.
        let events = vec![
            ev(
                0,
                Acquire {
                    lock: 1,
                    shared: false,
                },
            ),
            ev(0, Write { loc: 3 }),
            ev(0, Release { lock: 1 }),
            ev(1, Read { loc: 3 }),
        ];
        let problems = analyze(&events);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].message.contains("read (event 3)"));
    }

    #[test]
    fn rwlock_readers_are_ordered_with_writer_not_each_other() {
        let events = vec![
            ev(
                0,
                Acquire {
                    lock: 1,
                    shared: false,
                },
            ),
            ev(0, Write { loc: 9 }),
            ev(0, Release { lock: 1 }),
            ev(
                1,
                Acquire {
                    lock: 1,
                    shared: true,
                },
            ),
            ev(1, Read { loc: 9 }),
            ev(1, Release { lock: 1 }),
            ev(
                2,
                Acquire {
                    lock: 1,
                    shared: true,
                },
            ),
            ev(2, Read { loc: 9 }),
            ev(2, Release { lock: 1 }),
            // A second writer joins BOTH readers' release clocks.
            ev(
                0,
                Acquire {
                    lock: 1,
                    shared: false,
                },
            ),
            ev(0, Write { loc: 9 }),
            ev(0, Release { lock: 1 }),
        ];
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn write_under_read_lock_races_with_other_reader() {
        // Shared acquires do not order readers against each other, so
        // a write under a read lock is a race waiting to happen.
        let events = vec![
            ev(
                0,
                Acquire {
                    lock: 1,
                    shared: true,
                },
            ),
            ev(0, Write { loc: 2 }),
            ev(0, Release { lock: 1 }),
            ev(
                1,
                Acquire {
                    lock: 1,
                    shared: true,
                },
            ),
            ev(1, Read { loc: 2 }),
            ev(1, Release { lock: 1 }),
        ];
        let problems = analyze(&events);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert_eq!(problems[0].kind, ProblemKind::DataRace);
    }

    #[test]
    fn wait_acts_as_release_for_ordering() {
        let events = vec![
            ev(
                0,
                Acquire {
                    lock: 1,
                    shared: false,
                },
            ),
            ev(0, Write { loc: 5 }),
            ev(0, Wait { lock: 1 }), // releases the mutex, blocks
            ev(
                1,
                Acquire {
                    lock: 1,
                    shared: false,
                },
            ),
            ev(1, Read { loc: 5 }),
            ev(1, Release { lock: 1 }),
            ev(
                0,
                Acquire {
                    lock: 1,
                    shared: false,
                },
            ), // wake-up
            ev(0, Release { lock: 1 }),
        ];
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn opposite_acquisition_orders_form_a_cycle() {
        let events = vec![
            ev(
                0,
                Acquire {
                    lock: 10,
                    shared: false,
                },
            ),
            ev(
                0,
                Acquire {
                    lock: 20,
                    shared: false,
                },
            ),
            ev(0, Release { lock: 20 }),
            ev(0, Release { lock: 10 }),
            ev(
                1,
                Acquire {
                    lock: 20,
                    shared: false,
                },
            ),
            ev(
                1,
                Acquire {
                    lock: 10,
                    shared: false,
                },
            ),
            ev(1, Release { lock: 10 }),
            ev(1, Release { lock: 20 }),
        ];
        let problems = analyze(&events);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert_eq!(problems[0].kind, ProblemKind::LockInversion);
        assert!(
            problems[0].message.contains("lock#0 -> lock#1"),
            "{}",
            problems[0].message
        );
        assert!(problems[0].message.contains("lock#1 -> lock#0"));
    }

    #[test]
    fn nested_same_order_acquisition_is_fine() {
        let events = vec![
            ev(
                0,
                Acquire {
                    lock: 10,
                    shared: false,
                },
            ),
            ev(
                0,
                Acquire {
                    lock: 20,
                    shared: false,
                },
            ),
            ev(0, Release { lock: 20 }),
            ev(0, Release { lock: 10 }),
            ev(
                1,
                Acquire {
                    lock: 10,
                    shared: false,
                },
            ),
            ev(
                1,
                Acquire {
                    lock: 20,
                    shared: false,
                },
            ),
            ev(1, Release { lock: 20 }),
            ev(1, Release { lock: 10 }),
        ];
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn wait_does_not_leave_a_phantom_held_lock() {
        // After Wait, the mutex is no longer held: a later acquire of
        // another lock must not create an edge from it.
        let events = vec![
            ev(
                0,
                Acquire {
                    lock: 10,
                    shared: false,
                },
            ),
            ev(0, Wait { lock: 10 }),
            ev(
                0,
                Acquire {
                    lock: 20,
                    shared: false,
                },
            ),
            ev(0, Release { lock: 20 }),
            ev(
                0,
                Acquire {
                    lock: 10,
                    shared: false,
                },
            ), // wake-up
            ev(0, Release { lock: 10 }),
            // Opposite textual order on thread 1 — but 10 was not held
            // when 20 was acquired on thread 0, so no cycle.
            ev(
                1,
                Acquire {
                    lock: 20,
                    shared: false,
                },
            ),
            ev(
                1,
                Acquire {
                    lock: 10,
                    shared: false,
                },
            ),
            ev(1, Release { lock: 10 }),
            ev(1, Release { lock: 20 }),
        ];
        assert!(analyze(&events).is_empty());
    }
}
