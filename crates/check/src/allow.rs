//! Waiver allowlist for the lint pass.
//!
//! `check/allow.toml` (at the repo root) holds explicit, reasoned
//! waivers. Each `[[allow]]` entry must carry a `reason`; `path` is a
//! suffix match on the repo-relative path and `contains` a substring
//! match on the offending source line, so a waiver can be as narrow as
//! one line or as wide as one pattern across a crate. Unused waivers
//! are reported so the file cannot silently rot.
//!
//! The parser is a deliberately tiny TOML subset (tables of string
//! key/values) — enough for this file, zero dependencies.

use std::fmt;

use crate::rules::Finding;

/// One waiver entry from `check/allow.toml`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id this waiver applies to (required).
    pub rule: String,
    /// Repo-relative path suffix the finding's path must end with.
    pub path: Option<String>,
    /// Substring the offending source line must contain.
    pub contains: Option<String>,
    /// Why this is intentionally kept (required).
    pub reason: String,
    /// Line in allow.toml (for diagnostics).
    pub line: usize,
}

/// Parse failure in `allow.toml`.
#[derive(Debug)]
pub struct AllowParseError {
    /// 1-based line in the allowlist file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allow.toml:{}: {}", self.line, self.message)
    }
}

/// Parse the `[[allow]]` entries of an allowlist file.
pub fn parse_allowlist(src: &str) -> Result<Vec<Waiver>, AllowParseError> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut current: Option<(usize, Vec<(String, String)>)> = None;
    let mut finish =
        |current: &mut Option<(usize, Vec<(String, String)>)>| -> Result<(), AllowParseError> {
            let Some((start, kvs)) = current.take() else {
                return Ok(());
            };
            let get = |k: &str| kvs.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
            for (key, _) in &kvs {
                if !matches!(key.as_str(), "rule" | "path" | "contains" | "reason") {
                    return Err(AllowParseError {
                        line: start,
                        message: format!("unknown key `{key}` in [[allow]] entry"),
                    });
                }
            }
            let rule = get("rule").ok_or(AllowParseError {
                line: start,
                message: "[[allow]] entry missing required `rule`".into(),
            })?;
            let reason = get("reason").ok_or(AllowParseError {
                line: start,
                message: "[[allow]] entry missing required `reason` (waivers must say why)".into(),
            })?;
            if reason.trim().is_empty() {
                return Err(AllowParseError {
                    line: start,
                    message: "[[allow]] entry has an empty `reason`".into(),
                });
            }
            waivers.push(Waiver {
                rule,
                path: get("path"),
                contains: get("contains"),
                reason,
                line: start,
            });
            Ok(())
        };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut current)?;
            current = Some((lineno, Vec::new()));
            continue;
        }
        if line.starts_with('[') {
            return Err(AllowParseError {
                line: lineno,
                message: format!("unexpected table `{line}` (only [[allow]] is supported)"),
            });
        }
        let Some(eq) = line.find('=') else {
            return Err(AllowParseError {
                line: lineno,
                message: format!("expected `key = \"value\"`, got `{line}`"),
            });
        };
        let key = line[..eq].trim().to_string();
        let value = parse_string_value(line[eq + 1..].trim()).ok_or_else(|| AllowParseError {
            line: lineno,
            message: format!("value for `{key}` must be a double-quoted string"),
        })?;
        match &mut current {
            Some((_, kvs)) => kvs.push((key, value)),
            None => {
                return Err(AllowParseError {
                    line: lineno,
                    message: "key/value outside any [[allow]] entry".into(),
                })
            }
        }
    }
    finish(&mut current)?;
    Ok(waivers)
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string_value(s: &str) -> Option<String> {
    let rest = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            },
            '"' => {
                // Only trailing whitespace may follow the closing quote.
                return chars.as_str().trim().is_empty().then_some(out);
            }
            other => out.push(other),
        }
    }
    None
}

impl Waiver {
    /// Whether this waiver covers `finding`.
    pub fn matches(&self, finding: &Finding) -> bool {
        if self.rule != finding.rule {
            return false;
        }
        if let Some(path) = &self.path {
            let fp = finding.path.to_string_lossy().replace('\\', "/");
            if !fp.ends_with(path.as_str()) {
                return false;
            }
        }
        if let Some(needle) = &self.contains {
            if !finding.line_text.contains(needle.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Result of filtering findings through the allowlist.
pub struct Screened {
    /// Findings not covered by any waiver — these fail the build.
    pub violations: Vec<Finding>,
    /// `(finding, waiver-index)` pairs for covered findings.
    pub waived: Vec<(Finding, usize)>,
    /// Indices of waivers that matched nothing (stale entries).
    pub unused: Vec<usize>,
}

/// Split findings into violations and waived, tracking waiver usage.
pub fn screen(findings: Vec<Finding>, waivers: &[Waiver]) -> Screened {
    let mut used = vec![false; waivers.len()];
    let mut violations = Vec::new();
    let mut waived = Vec::new();
    for f in findings {
        match waivers.iter().position(|w| w.matches(&f)) {
            Some(i) => {
                used[i] = true;
                waived.push((f, i));
            }
            None => violations.push(f),
        }
    }
    let unused = (0..waivers.len()).filter(|&i| !used[i]).collect();
    Screened {
        violations,
        waived,
        unused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(rule: &'static str, path: &str, text: &str) -> Finding {
        Finding {
            rule,
            path: PathBuf::from(path),
            line: 1,
            message: "m".into(),
            line_text: text.into(),
        }
    }

    #[test]
    fn parses_entries_with_comments() {
        let src = r#"
# global comment
[[allow]]
rule = "no-panic"            # trailing comment
path = "core/src/network.rs"
contains = "panic!(\"{e}\")"
reason = "legacy adapter"

[[allow]]
rule = "float-eq"
reason = "wide"
"#;
        let ws = parse_allowlist(src).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].rule, "no-panic");
        assert_eq!(ws[0].contains.as_deref(), Some("panic!(\"{e}\")"));
        assert!(ws[1].path.is_none());
    }

    #[test]
    fn missing_reason_rejected() {
        let err = parse_allowlist("[[allow]]\nrule = \"no-panic\"\n").unwrap_err();
        assert!(err.message.contains("reason"));
    }

    #[test]
    fn unknown_key_rejected() {
        let src = "[[allow]]\nrule = \"x\"\nreason = \"y\"\nfile = \"z\"\n";
        let err = parse_allowlist(src).unwrap_err();
        assert!(err.message.contains("unknown key"));
    }

    #[test]
    fn screening_tracks_usage() {
        let waivers = parse_allowlist(
            "[[allow]]\nrule = \"no-panic\"\ncontains = \"legacy\"\nreason = \"r\"\n\
             [[allow]]\nrule = \"float-eq\"\nreason = \"r\"\n",
        )
        .unwrap();
        let fs = vec![
            finding("no-panic", "a.rs", "legacy panic!()"),
            finding("no-panic", "a.rs", "fresh panic!()"),
        ];
        let s = screen(fs, &waivers);
        assert_eq!(s.violations.len(), 1);
        assert_eq!(s.waived.len(), 1);
        assert_eq!(s.unused, vec![1]);
    }

    #[test]
    fn path_is_suffix_matched() {
        let waivers = parse_allowlist(
            "[[allow]]\nrule = \"no-panic\"\npath = \"core/src/network.rs\"\nreason = \"r\"\n",
        )
        .unwrap();
        let hit = finding("no-panic", "crates/core/src/network.rs", "x");
        let miss = finding("no-panic", "crates/serve/src/server.rs", "x");
        assert!(waivers[0].matches(&hit));
        assert!(!waivers[0].matches(&miss));
    }
}
