//! Sleep-set dynamic partial-order reduction for the mini-loom.
//!
//! Exhaustive DFS explores every interleaving; most differ only by the
//! order of *independent* steps (operating on disjoint state) and are
//! equivalent up to Mazurkiewicz traces — they execute the same
//! happens-before partial order and can't disagree on any invariant.
//! Sleep sets prune those: after a node explores its child `t`, `t` is
//! put to sleep for the node's remaining children, and stays asleep
//! down a sibling subtree until some step *conflicts* with `t`'s
//! pending step (which would give a genuinely different trace). For
//! the fixed, always-enabled scripts our scenarios use, this explores
//! exactly one schedule per trace — no equivalence class is lost, none
//! is visited twice. See DESIGN.md §14 for the argument and its limits.
//!
//! Independence is *declared* by the scenario through
//! [`crate::sched::Scenario::footprint`]: each (thread, op) names the
//! logical objects it reads and writes, and two steps conflict iff one
//! writes something the other touches. The default footprint makes
//! every pair conflict, degenerating DPOR to plain DFS — sound by
//! construction; reduction is opt-in per scenario. A wrong declaration
//! (claiming independence for non-commuting ops) would prune real
//! coverage, which is why CI's compare mode runs DFS and DPOR
//! side-by-side and fails on any verdict divergence, and why the
//! seeded-bug scenarios are asserted to be caught under DPOR too.

use crate::sched::{interleaving_count, run_one, ExploreResult, Scenario, Violation};

/// The logical objects one scenario step reads and writes.
///
/// Object ids are scenario-chosen (lane indices, tenant ids, a
/// whole-structure id — whatever captures commutativity). Two steps
/// are *dependent* iff their footprints [`conflict`](Footprint::conflicts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Objects read by the step.
    pub reads: Vec<u64>,
    /// Objects written by the step.
    pub writes: Vec<u64>,
}

impl Footprint {
    /// Reads and writes, spelled out.
    pub fn new(reads: Vec<u64>, writes: Vec<u64>) -> Footprint {
        Footprint { reads, writes }
    }

    /// A step that exclusively owns `obj` — conflicts with every other
    /// step touching it. `Footprint::exclusive(0)` is the safe default
    /// making all steps pairwise dependent.
    pub fn exclusive(obj: u64) -> Footprint {
        Footprint {
            reads: Vec::new(),
            writes: vec![obj],
        }
    }

    /// A read-only step over `objs`.
    pub fn reads(objs: &[u64]) -> Footprint {
        Footprint {
            reads: objs.to_vec(),
            writes: Vec::new(),
        }
    }

    /// Whether the two steps are dependent: one's writes intersect the
    /// other's reads or writes. Symmetric.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        self.writes
            .iter()
            .any(|w| other.writes.contains(w) || other.reads.contains(w))
            || other.writes.iter().any(|w| self.reads.contains(w))
    }
}

/// Outcome of a DPOR exploration: the schedules actually run, plus the
/// interleaving count they stand in for.
#[derive(Debug, Default)]
pub struct DporResult {
    /// Violations and the number of schedules *executed*
    /// (`result.interleavings` = explored representatives).
    pub result: ExploreResult,
    /// Interleavings the exploration covers — the full multinomial
    /// count, every member of which is trace-equivalent to some
    /// explored representative.
    pub covered: u64,
    /// `covered - explored`: schedules skipped as equivalent.
    pub skipped: u64,
}

/// Explore one representative per Mazurkiewicz trace of the scenario,
/// using sleep sets over the scenario's declared footprints.
pub fn explore_dpor<S: Scenario>(scenario: &S) -> DporResult {
    let ops = scenario.thread_ops();
    let footprints: Vec<Vec<Footprint>> = (0..ops.len())
        .map(|t| (0..ops[t]).map(|o| scenario.footprint(t, o)).collect())
        .collect();
    let mut result = ExploreResult::default();
    let mut prefix: Vec<usize> = Vec::new();
    explore_node(scenario, &ops, &footprints, &mut prefix, &[], &mut result);
    let covered = interleaving_count(&ops);
    let skipped = covered.saturating_sub(result.interleavings);
    DporResult {
        result,
        covered,
        skipped,
    }
}

/// One node of the schedule tree: `prefix` already chosen, `sleep` =
/// threads whose pending step was fully explored by an elder sibling
/// and has not conflicted with anything since.
fn explore_node<S: Scenario>(
    scenario: &S,
    ops: &[usize],
    footprints: &[Vec<Footprint>],
    prefix: &mut Vec<usize>,
    sleep: &[usize],
    result: &mut ExploreResult,
) {
    let mut cursors = vec![0usize; ops.len()];
    for &t in prefix.iter() {
        cursors[t] += 1;
    }
    let enabled: Vec<usize> = (0..ops.len()).filter(|&t| cursors[t] < ops[t]).collect();
    if enabled.is_empty() {
        run_schedule(scenario, ops, prefix, result);
        return;
    }
    let mut sleeping: Vec<usize> = sleep.to_vec();
    for &t in &enabled {
        if sleeping.contains(&t) {
            continue;
        }
        let step = &footprints[t][cursors[t]];
        // A sleeper stays asleep below `t` only while independent of
        // `t`'s step: a conflict means orders now differ observably.
        let child_sleep: Vec<usize> = sleeping
            .iter()
            .copied()
            .filter(|&s| !footprints[s][cursors[s]].conflicts(step))
            .collect();
        prefix.push(t);
        explore_node(scenario, ops, footprints, prefix, &child_sleep, result);
        prefix.pop();
        sleeping.push(t);
    }
}

/// Execute one complete schedule (a leaf of the tree) for real.
fn run_schedule<S: Scenario>(
    scenario: &S,
    ops: &[usize],
    schedule: &[usize],
    result: &mut ExploreResult,
) {
    let mut next = 0usize;
    let (trace, failed) = run_one(scenario, ops, |runnable| {
        let want = schedule.get(next).copied().unwrap_or(usize::MAX);
        next += 1;
        runnable.iter().position(|&r| r == want).unwrap_or(0)
    });
    result.interleavings += 1;
    if let Some(message) = failed {
        result.record(Violation {
            scenario: scenario.name(),
            trace,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::explore_exhaustive;
    use std::cell::RefCell;
    use std::collections::BTreeSet;

    /// Scripted scenario: thread t's op k writes `state[objs[t][k]] = (t, k)`
    /// with a declared footprint, collecting final states across runs.
    struct Scripted {
        /// Per-thread, per-op: (footprint, object mutated for real).
        plan: Vec<Vec<Footprint>>,
        finals: RefCell<BTreeSet<Vec<(usize, usize)>>>,
    }

    impl Scripted {
        fn new(plan: Vec<Vec<Footprint>>) -> Scripted {
            Scripted {
                plan,
                finals: RefCell::new(BTreeSet::new()),
            }
        }
    }

    impl Scenario for Scripted {
        type State = Vec<(usize, usize)>; // per-object: last writer (thread, op)
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn thread_ops(&self) -> Vec<usize> {
            self.plan.iter().map(|p| p.len()).collect()
        }
        fn init(&self) -> Self::State {
            vec![(usize::MAX, usize::MAX); 16]
        }
        fn step(&self, state: &mut Self::State, thread: usize, op: usize) -> Result<(), String> {
            // Mutate exactly the declared write set, so two schedules
            // are observably equal iff their traces are equivalent.
            for &w in &self.plan[thread][op].writes {
                state[w as usize] = (thread, op);
            }
            Ok(())
        }
        fn finish(&self, state: &mut Self::State) -> Result<(), String> {
            self.finals.borrow_mut().insert(state.clone());
            Ok(())
        }
        fn footprint(&self, thread: usize, op: usize) -> Footprint {
            self.plan[thread][op].clone()
        }
    }

    #[test]
    fn default_footprint_degenerates_to_dfs() {
        // Two threads, two fully-conflicting ops each (all write obj 0).
        let s = Scripted::new(vec![
            vec![Footprint::exclusive(0), Footprint::exclusive(0)],
            vec![Footprint::exclusive(0), Footprint::exclusive(0)],
        ]);
        let d = explore_dpor(&s);
        assert_eq!(d.covered, 6, "C(4,2)");
        assert_eq!(d.result.interleavings, 6, "no independence, no pruning");
        assert_eq!(d.skipped, 0);
    }

    #[test]
    fn fully_independent_threads_collapse_to_one_schedule() {
        let s = Scripted::new(vec![
            vec![Footprint::exclusive(1), Footprint::exclusive(1)],
            vec![Footprint::exclusive(2), Footprint::exclusive(2)],
        ]);
        let d = explore_dpor(&s);
        assert_eq!(d.covered, 6);
        assert_eq!(d.result.interleavings, 1, "one trace representative");
        assert_eq!(d.skipped, 5);
    }

    #[test]
    fn mixed_dependence_counts_traces_exactly() {
        // a ⊥ b, but both conflict with c: the 6 interleavings fall
        // into 4 traces ({abc,bac}, {acb}, {bca}, {cab,cba}).
        let s = Scripted::new(vec![
            vec![Footprint::exclusive(1)],
            vec![Footprint::exclusive(2)],
            vec![Footprint::new(vec![], vec![1, 2])],
        ]);
        let d = explore_dpor(&s);
        assert_eq!(d.covered, 6);
        assert_eq!(d.result.interleavings, 4);
    }

    #[test]
    fn dpor_reaches_every_distinct_final_state() {
        // Crossed writes: T0 = [w1, w2], T1 = [w2, w1]. Orders of the
        // two writes to obj 1 and to obj 2 both matter.
        let plan = vec![
            vec![Footprint::exclusive(1), Footprint::exclusive(2)],
            vec![Footprint::exclusive(2), Footprint::exclusive(1)],
        ];
        let dfs = Scripted::new(plan.clone());
        let r = explore_exhaustive(&dfs);
        let dpor = Scripted::new(plan);
        let d = explore_dpor(&dpor);
        assert!(d.result.interleavings < r.interleavings);
        assert_eq!(
            dfs.finals.borrow().clone(),
            dpor.finals.borrow().clone(),
            "every observably-distinct outcome must keep a representative"
        );
    }

    #[test]
    fn order_dependent_bug_is_still_caught() {
        // Fails only when thread 1 runs before thread 0 — a conflict,
        // so DPOR must keep both orders.
        struct OrderBug;
        impl Scenario for OrderBug {
            type State = bool; // "thread 1 ran first"
            fn name(&self) -> &'static str {
                "order-bug"
            }
            fn thread_ops(&self) -> Vec<usize> {
                vec![1, 1]
            }
            fn init(&self) -> bool {
                false
            }
            fn step(&self, state: &mut bool, thread: usize, _: usize) -> Result<(), String> {
                if thread == 1 && !*state {
                    return Err("thread 1 won the race".into());
                }
                if thread == 0 {
                    *state = true;
                }
                Ok(())
            }
            fn finish(&self, _: &mut bool) -> Result<(), String> {
                Ok(())
            }
        }
        let d = explore_dpor(&OrderBug);
        assert_eq!(d.result.interleavings, 2);
        assert_eq!(d.result.violations.len(), 1);
        assert_eq!(d.result.violations[0].trace, vec![1, 0]);
    }

    #[test]
    fn conflicts_is_symmetric_and_read_aware() {
        let w1 = Footprint::exclusive(1);
        let r1 = Footprint::reads(&[1]);
        let w2 = Footprint::exclusive(2);
        assert!(w1.conflicts(&r1) && r1.conflicts(&w1), "write vs read");
        assert!(w1.conflicts(&w1.clone()), "write vs write");
        assert!(!r1.conflicts(&r1.clone()), "read vs read is independent");
        assert!(!w1.conflicts(&w2), "disjoint objects");
    }
}
