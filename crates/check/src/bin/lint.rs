//! `cargo run -p check --bin lint [-- --verbose]`
//!
//! Exit codes: 0 = clean (possibly via waivers), 1 = unwaived
//! violations, 2 = driver error (I/O, malformed allow.toml).

use check::lint::{run_lint, workspace_root};

fn main() {
    let verbose = std::env::args().any(|a| a == "--verbose" || a == "-v");
    let root = workspace_root();
    match run_lint(&root) {
        Ok(report) => {
            let (text, code) = report.render(verbose);
            print!("{text}");
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("lint: error: {e}");
            std::process::exit(2);
        }
    }
}
