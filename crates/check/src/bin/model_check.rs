//! `cargo run -p check --bin model-check [-- --budget full|small]
//! [--min-interleavings N]`
//!
//! Drives the serve primitives through explored interleavings against
//! their shadow oracles. Exit codes: 0 = all invariants held and the
//! interleaving floor was met, 1 = violations or a short exploration,
//! 2 = bad arguments.

use check::suites::{run_all, Budget};

fn main() {
    let mut budget = Budget::Full;
    let mut min_interleavings: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => match args.next().as_deref() {
                Some("full") => budget = Budget::Full,
                Some("small") => budget = Budget::Small,
                other => {
                    eprintln!("model-check: --budget expects full|small, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--min-interleavings" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("model-check: --min-interleavings expects a number");
                    std::process::exit(2);
                };
                min_interleavings = n;
            }
            other => {
                eprintln!("model-check: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut total: u64 = 0;
    let mut failed = false;
    for (name, result) in run_all(budget) {
        total += result.interleavings;
        println!(
            "model-check: suite {name}: {} interleavings, {} violation(s)",
            result.interleavings,
            result.violations.len()
        );
        for v in &result.violations {
            failed = true;
            println!("  VIOLATION {v}");
        }
    }
    println!("model-check: {total} interleavings total ({budget:?} budget)");
    if min_interleavings > 0 && total < min_interleavings {
        println!(
            "model-check: FAIL — explored {total} < required {min_interleavings} interleavings"
        );
        failed = true;
    }
    std::process::exit(if failed { 1 } else { 0 });
}
