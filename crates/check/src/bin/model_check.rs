//! `cargo run -p check --bin model-check [-- --budget full|small]
//! [--min-interleavings N] [--dpor|--no-dpor|--compare]`
//!
//! Drives the serve primitives through explored interleavings against
//! their shadow oracles, with every schedule's sync-event stream
//! replayed through the vector-clock race detector (DESIGN.md §14).
//! Exhaustive spaces default to sleep-set DPOR (`--dpor`); `--no-dpor`
//! forces plain DFS and `--compare` runs both, cross-checking verdicts
//! and coverage and enforcing the ≥5× schedule-reduction floor on the
//! footprint-bearing suites. Exit codes: 0 = all invariants held and
//! the floors were met, 1 = violations, mismatches, or a short
//! exploration, 2 = bad arguments.

use check::suites::{run_all, Budget};
use check::Mode;

/// Suites with declared footprints, counted toward the DPOR reduction
/// floor under `--compare`. The recorder suite is excluded: its ops
/// are fully dependent by design, so it is run as plain DPOR (≡ DFS)
/// rather than enumerated twice.
const REDUCTION_SUITES: [&str; 5] = ["queue", "lanes", "quota", "cache", "registry"];

/// Minimum `covered / explored` ratio `--compare` must demonstrate
/// across [`REDUCTION_SUITES`].
const MIN_REDUCTION: u64 = 5;

fn main() {
    let mut budget = Budget::Full;
    let mut min_interleavings: u64 = 0;
    let mut mode = Mode::Dpor;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => match args.next().as_deref() {
                Some("full") => budget = Budget::Full,
                Some("small") => budget = Budget::Small,
                other => {
                    eprintln!("model-check: --budget expects full|small, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--min-interleavings" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("model-check: --min-interleavings expects a number");
                    std::process::exit(2);
                };
                min_interleavings = n;
            }
            "--dpor" => mode = Mode::Dpor,
            "--no-dpor" => mode = Mode::Dfs,
            "--compare" => mode = Mode::Compare,
            other => {
                eprintln!("model-check: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut covered: u64 = 0;
    let mut explored: u64 = 0;
    let mut reduction_covered: u64 = 0;
    let mut reduction_explored: u64 = 0;
    let mut failed = false;
    for (name, stats) in run_all(budget, mode) {
        covered += stats.covered();
        explored += stats.explored();
        if REDUCTION_SUITES.contains(&name) {
            reduction_covered += stats.exh_covered;
            reduction_explored += stats.exh_explored;
        }
        println!(
            "model-check: suite {name}: {} schedules explored ({} exhaustive + {} random), \
             {} skipped as trace-equivalent, {} interleavings covered, {} violation(s)",
            stats.explored(),
            stats.exh_explored,
            stats.random_explored,
            stats.exh_skipped,
            stats.covered(),
            stats.violations.len()
        );
        for v in &stats.violations {
            failed = true;
            println!("  VIOLATION {v}");
        }
        for m in &stats.mismatches {
            failed = true;
            println!("  MISMATCH {m}");
        }
    }
    println!(
        "model-check: explored {explored} schedules covering {covered} interleavings \
         ({budget:?} budget, {mode:?} mode)"
    );
    if mode == Mode::Compare {
        let ratio_x10 = reduction_covered
            .saturating_mul(10)
            .checked_div(reduction_explored)
            .unwrap_or(0);
        println!(
            "model-check: dpor explored {reduction_explored} vs {reduction_covered} exhaustive \
             on the footprint suites ({}.{}x reduction)",
            ratio_x10 / 10,
            ratio_x10 % 10
        );
        if ratio_x10 < MIN_REDUCTION * 10 {
            println!(
                "model-check: FAIL — DPOR reduction under {MIN_REDUCTION}x on \
                 {REDUCTION_SUITES:?}"
            );
            failed = true;
        }
    }
    if min_interleavings > 0 && covered < min_interleavings {
        println!(
            "model-check: FAIL — covered {covered} < required {min_interleavings} interleavings"
        );
        failed = true;
    }
    std::process::exit(if failed { 1 } else { 0 });
}
