//! Workspace lint driver: walks first-party sources, applies the rule
//! families from [`crate::rules`], screens findings through
//! `check/allow.toml`, and reports.
//!
//! Scope policy (documented in DESIGN.md §9):
//!
//! * every first-party crate under `crates/*/src` plus the root
//!   workspace library `src/` is linted;
//! * `src/bin/` CLI entry points are exempt — a `main` that `expect`s
//!   its argv is fine, libraries are not;
//! * `vendor/` stand-ins and `target/` are never scanned;
//! * [`rules::RULE_LOSSY_CAST`] applies to the numeric kernel crates
//!   (`nn`, `tensor`, `cfd`); [`rules::RULE_LOCK_ORDER`] to the
//!   concurrent serving crate (`serve`);
//! * [`rules::RULE_NO_ALLOC`] is per-file, not per-crate: it applies to
//!   the designated hot-path kernel files ([`NO_ALLOC_FILES`]), where
//!   every buffer must come from the `adarnet_tensor::workspace` pool;
//! * [`rules::RULE_NO_PRINTLN`] applies to every linted library file:
//!   libraries report through the obs layer or typed returns, never by
//!   printing (`src/bin/` and test regions are already out of scope);
//! * [`rules::RULE_UNCHECKED_ARITH`] is per-file: it applies to the
//!   wire-parse files ([`UNCHECKED_ARITH_FILES`]), where lengths are
//!   attacker-controlled;
//! * [`rules::RULE_RELAXED_ORDERING`] applies to every crate except
//!   `obs` ([`RELAXED_ORDERING_EXEMPT_CRATE`]); surviving uses carry
//!   per-site justifications in `check/allow.toml`;
//! * [`rules::RULE_UNSAFE_CODE`] applies to every crate: the workspace
//!   denies `unsafe_code`, and the files that opt out of that deny (the
//!   AVX2 micro-kernels, the aligned workspace buffer) must justify
//!   every `unsafe` site with a waiver in `check/allow.toml`;
//! * [`rules::RULE_SPAN_REGISTRY`] applies to every crate, in two
//!   parts: per file, every observable-name literal (`span!` sites,
//!   `trace::arena().begin/record` names, `RejectReason` wire tags)
//!   must be registered in `adarnet_obs::names`; across the tree, each
//!   `span!` site name must be unique — a deliberate second site
//!   feeding the same histogram carries a waiver arguing the stages are
//!   genuinely the same.

use std::fs;
use std::path::{Path, PathBuf};

use crate::allow::{parse_allowlist, screen, Waiver};
use crate::rules::{lint_source, span_macro_sites, Finding, RuleSet, RULE_SPAN_REGISTRY};

/// Crates whose float→int casts index grids and tensors.
const LOSSY_CAST_CRATES: &[&str] = &["nn", "tensor", "cfd"];
/// The one file allowed to narrow f32→bf16: the quantize module, where
/// round-to-nearest-even packing lives behind the accuracy budget.
/// Everywhere else `f32_to_bf16` is a lossy-cast finding.
const BF16_NARROWING_EXEMPT_FILE: &str = "crates/nn/src/quantize.rs";
/// Crates with cross-thread locking.
const LOCK_ORDER_CRATES: &[&str] = &["serve", "net"];
/// Hot-path kernel files (repo-relative) where allocating constructors
/// are banned outright — buffers come from the workspace pool so the
/// zero-allocation inference contract cannot silently regress.
const NO_ALLOC_FILES: &[&str] = &[
    "crates/nn/src/kernels.rs",
    "crates/nn/src/device/driver.rs",
    "crates/nn/src/device/cpu_scalar.rs",
    "crates/nn/src/device/cpu_simd.rs",
];
/// Wire-parse files (repo-relative) where bare `+`/`*` on lengths is
/// banned — these are the only places attacker-controlled sizes enter
/// the process, so overflow handling must be spelled out (or waived
/// with a bound argument, e.g. `MAX_FRAME` gating upstream).
const UNCHECKED_ARITH_FILES: &[&str] = &["crates/net/src/frame.rs", "crates/net/src/proto.rs"];
/// The one crate allowed bare `Ordering::Relaxed`: its metrics and
/// flight-recorder cells are monotonic counters by design. Everywhere
/// else each use needs a written waiver.
const RELAXED_ORDERING_EXEMPT_CRATE: &str = "obs";

/// Aggregate outcome of a lint run.
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not covered by any waiver.
    pub violations: Vec<Finding>,
    /// Findings covered by a waiver, with that waiver.
    pub waived: Vec<(Finding, Waiver)>,
    /// Waivers that matched nothing.
    pub unused_waivers: Vec<Waiver>,
}

/// Driver failure (I/O or a malformed allowlist), distinct from lint
/// findings.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem problem while walking or reading.
    Io(PathBuf, std::io::Error),
    /// `check/allow.toml` is missing or malformed.
    Allowlist(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            LintError::Allowlist(m) => write!(f, "{m}"),
        }
    }
}

/// Locate the workspace root from the check crate's manifest dir.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Run the full lint over the workspace at `root`.
pub fn run_lint(root: &Path) -> Result<LintReport, LintError> {
    let allow_path = root.join("check").join("allow.toml");
    let allow_src = fs::read_to_string(&allow_path)
        .map_err(|e| LintError::Allowlist(format!("{}: {e}", allow_path.display())))?;
    let waivers = parse_allowlist(&allow_src).map_err(|e| LintError::Allowlist(e.to_string()))?;

    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    let mut macro_sites: Vec<SpanMacroSite> = Vec::new();
    for (dir, crate_name) in lint_targets(root)? {
        let rules = rule_set_for(&crate_name);
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        for file in files {
            let src = fs::read_to_string(&file).map_err(|e| LintError::Io(file.clone(), e))?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            findings.extend(lint_source(&rel, &src, rules_for_file(rules, &rel)));
            for (line, name) in span_macro_sites(&src) {
                let line_text = src
                    .lines()
                    .nth(line.saturating_sub(1))
                    .map(str::trim)
                    .unwrap_or_default()
                    .to_string();
                macro_sites.push(SpanMacroSite {
                    path: rel.clone(),
                    line,
                    name,
                    line_text,
                });
            }
            files_scanned += 1;
        }
    }
    findings.extend(duplicate_span_sites(&mut macro_sites));
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));

    let screened = screen(findings, &waivers);
    let waived = screened
        .waived
        .into_iter()
        .map(|(f, i)| (f, waivers[i].clone()))
        .collect();
    let unused_waivers = screened
        .unused
        .into_iter()
        .map(|i| waivers[i].clone())
        .collect();
    Ok(LintReport {
        files_scanned,
        violations: screened.violations,
        waived,
        unused_waivers,
    })
}

/// `(source dir, crate name)` pairs to lint: each `crates/<name>/src`
/// plus the workspace root library as crate `"adarnet-repro"`.
fn lint_targets(root: &Path) -> Result<Vec<(PathBuf, String)>, LintError> {
    let crates_dir = root.join("crates");
    let mut targets = Vec::new();
    let entries = fs::read_dir(&crates_dir).map_err(|e| LintError::Io(crates_dir.clone(), e))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    for name in names {
        let src = crates_dir.join(&name).join("src");
        if src.is_dir() {
            targets.push((src, name));
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        targets.push((root_src, "adarnet-repro".into()));
    }
    Ok(targets)
}

fn rule_set_for(crate_name: &str) -> RuleSet {
    RuleSet {
        core_rules: true,
        lossy_cast: LOSSY_CAST_CRATES.contains(&crate_name),
        bf16_narrowing: true,
        lock_order: LOCK_ORDER_CRATES.contains(&crate_name),
        no_alloc: false,
        no_println: true,
        unchecked_arith: false,
        relaxed_ordering: crate_name != RELAXED_ORDERING_EXEMPT_CRATE,
        unsafe_code: true,
        span_registry: true,
    }
}

/// One non-test `span!` site, accumulated across the walk for the
/// cross-file uniqueness pass.
struct SpanMacroSite {
    path: PathBuf,
    line: usize,
    name: String,
    line_text: String,
}

/// Flag every `span!` site whose name already appeared at an earlier
/// `(path, line)` — each span name is one histogram, so a second site
/// must argue (via waiver) that it times the same logical stage.
fn duplicate_span_sites(sites: &mut [SpanMacroSite]) -> Vec<Finding> {
    sites.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    let mut first: std::collections::HashMap<&str, (&Path, usize)> =
        std::collections::HashMap::new();
    let mut out = Vec::new();
    for site in sites.iter() {
        match first.get(site.name.as_str()) {
            Some((fp, fl)) => out.push(Finding {
                rule: RULE_SPAN_REGISTRY,
                path: site.path.clone(),
                line: site.line,
                message: format!(
                    "duplicate span! site for \"{}\" (first at {}:{fl}) — \
                     span names are one histogram each; waive only if the \
                     stages are genuinely the same",
                    site.name,
                    fp.display()
                ),
                line_text: site.line_text.clone(),
            }),
            None => {
                first.insert(&site.name, (&site.path, site.line));
            }
        }
    }
    out
}

/// Specialize a crate's rule set for one file: the no-alloc and
/// unchecked-arith rules are scoped to designated files only.
fn rules_for_file(base: RuleSet, rel: &Path) -> RuleSet {
    RuleSet {
        no_alloc: NO_ALLOC_FILES.iter().any(|f| rel == Path::new(f)),
        unchecked_arith: UNCHECKED_ARITH_FILES.iter().any(|f| rel == Path::new(f)),
        bf16_narrowing: base.bf16_narrowing && rel != Path::new(BF16_NARROWING_EXEMPT_FILE),
        ..base
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            // CLI entry points are exempt (see module docs).
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

impl LintReport {
    /// Render the report to stderr-style text; returns the process exit
    /// code (0 = clean or fully waived, 1 = violations remain).
    pub fn render(&self, verbose: bool) -> (String, i32) {
        let mut out = String::new();
        for f in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.path.display(),
                f.line,
                f.rule,
                f.message,
                f.line_text
            ));
        }
        if verbose {
            for (f, w) in &self.waived {
                out.push_str(&format!(
                    "{}:{}: [{}] waived (allow.toml:{}: {})\n",
                    f.path.display(),
                    f.line,
                    f.rule,
                    w.line,
                    w.reason
                ));
            }
        }
        for w in &self.unused_waivers {
            out.push_str(&format!(
                "warning: allow.toml:{}: waiver for `{}` matched nothing (stale?)\n",
                w.line, w.rule
            ));
        }
        out.push_str(&format!(
            "lint: {} files scanned, {} violation(s), {} waived, {} stale waiver(s)\n",
            self.files_scanned,
            self.violations.len(),
            self.waived.len(),
            self.unused_waivers.len()
        ));
        let code = if self.violations.is_empty() { 0 } else { 1 };
        (out, code)
    }
}

#[allow(unused_imports)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_points_at_repo() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file(), "{}", root.display());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn rule_scoping_matches_policy() {
        assert!(rule_set_for("nn").lossy_cast);
        assert!(rule_set_for("serve").lock_order);
        assert!(rule_set_for("net").lock_order);
        assert!(!rule_set_for("serve").lossy_cast);
        assert!(!rule_set_for("core").lock_order);
        assert!(rule_set_for("core").core_rules);
        // no-alloc is per-file: only the designated kernel files get it
        // (the dispatch façade plus both device kernel planes).
        let nn = rule_set_for("nn");
        assert!(rules_for_file(nn, Path::new("crates/nn/src/kernels.rs")).no_alloc);
        assert!(rules_for_file(nn, Path::new("crates/nn/src/device/driver.rs")).no_alloc);
        assert!(rules_for_file(nn, Path::new("crates/nn/src/device/cpu_scalar.rs")).no_alloc);
        assert!(rules_for_file(nn, Path::new("crates/nn/src/device/cpu_simd.rs")).no_alloc);
        assert!(!rules_for_file(nn, Path::new("crates/nn/src/device/mod.rs")).no_alloc);
        assert!(!rules_for_file(nn, Path::new("crates/nn/src/model.rs")).no_alloc);
        assert!(rules_for_file(nn, Path::new("crates/nn/src/kernels.rs")).lossy_cast);
        // bf16-narrowing applies everywhere except the quantize module
        // itself — the one sanctioned place to drop mantissa bits.
        assert!(rule_set_for("serve").bf16_narrowing);
        assert!(rule_set_for("core").bf16_narrowing);
        assert!(rules_for_file(nn, Path::new("crates/nn/src/packed.rs")).bf16_narrowing);
        assert!(!rules_for_file(nn, Path::new("crates/nn/src/quantize.rs")).bf16_narrowing);
        // unchecked-arith is per-file: only the wire-parse files get it.
        let net = rule_set_for("net");
        assert!(rules_for_file(net, Path::new("crates/net/src/frame.rs")).unchecked_arith);
        assert!(rules_for_file(net, Path::new("crates/net/src/proto.rs")).unchecked_arith);
        assert!(!rules_for_file(net, Path::new("crates/net/src/server.rs")).unchecked_arith);
        // relaxed-ordering applies everywhere except the obs crate.
        assert!(rule_set_for("serve").relaxed_ordering);
        assert!(rule_set_for("net").relaxed_ordering);
        assert!(!rule_set_for("obs").relaxed_ordering);
        // unsafe-code applies everywhere: opting out of the workspace
        // deny never opts out of the waiver requirement.
        assert!(rule_set_for("nn").unsafe_code);
        assert!(rule_set_for("tensor").unsafe_code);
        assert!(rule_set_for("obs").unsafe_code);
        // span-registry applies everywhere: any crate can record a span
        // or map a reject tag, and every name must be registered.
        assert!(rule_set_for("obs").span_registry);
        assert!(rule_set_for("serve").span_registry);
        assert!(rule_set_for("cfd").span_registry);
    }

    #[test]
    fn duplicate_span_sites_flags_later_sites_only() {
        let mk = |path: &str, line: usize, name: &str| SpanMacroSite {
            path: PathBuf::from(path),
            line,
            name: name.into(),
            line_text: format!("span!(\"{name}\")"),
        };
        let mut sites = vec![
            mk("crates/b/src/x.rs", 10, "stage_decoder"),
            mk("crates/a/src/y.rs", 5, "stage_decoder"),
            mk("crates/a/src/y.rs", 9, "serve_infer"),
        ];
        let dups = duplicate_span_sites(&mut sites);
        // After (path, line) ordering, a/y.rs:5 is the canonical site;
        // b/x.rs:10 is the duplicate; serve_infer is unique.
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].path, PathBuf::from("crates/b/src/x.rs"));
        assert_eq!(dups[0].line, 10);
        assert!(dups[0].message.contains("crates/a/src/y.rs:5"));
    }

    #[test]
    fn full_workspace_lint_is_clean() {
        // The real acceptance gate, also runnable as a plain unit test:
        // every finding in the tree is either fixed or explicitly waived.
        let report = run_lint(&workspace_root()).expect("lint driver must run");
        let rendered = report.render(true).0;
        assert!(
            report.violations.is_empty(),
            "unwaived lint violations:\n{rendered}"
        );
        assert!(report.files_scanned > 40, "walker found too few files");
    }
}
