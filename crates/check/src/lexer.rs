//! A minimal Rust lexer for the lint pass.
//!
//! The lint rules need token streams, not syntax trees: "`.unwrap()`
//! outside test code" or "`==` next to a float literal" are decidable
//! from tokens plus brace tracking. A full parser (syn) is neither
//! available offline nor necessary. The lexer therefore handles exactly
//! the lexical features that would otherwise cause false positives:
//! line/block/doc comments, string/char/byte/raw-string literals,
//! lifetimes vs char literals, and numeric literal classification
//! (int vs float) — everything else is an identifier or punctuation
//! token carrying its source line for diagnostics.

/// Token classification, as coarse as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f32`, ...).
    Float,
    /// String literal of any flavor (content dropped).
    Str,
    /// Char or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation; multi-char operators are fused (`==`, `::`, ...).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Token text (empty for string literals).
    pub text: String,
    /// 1-based line number.
    pub line: usize,
}

impl Tok {
    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Whether this token is the exact identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// Two-character operators fused into single tokens (order matters:
/// longest match first is unnecessary because all entries are length 2).
const TWO_CHAR_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "::", "..", "->", "=>", "+=", "-=", "*=", "/=", "%=", "^=",
    "|=", "&=", "<<", ">>",
];

/// Tokenize Rust source. Unterminated literals are tolerated (the rest
/// of the file is consumed) — the lint must never panic on odd input.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = b.len();

    macro_rules! bump_lines {
        ($range:expr) => {
            for k in $range {
                if b[k] == '\n' {
                    line += 1;
                }
            }
        };
    }

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also //! and ///).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            let start = i;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            bump_lines!(start..i.min(n));
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."#, any # count.
        if (c == 'r' || c == 'b') && raw_string_len(&b[i..]).is_some() {
            let len = raw_string_len(&b[i..]).unwrap_or(n - i);
            bump_lines!(i..i + len);
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            i += len;
            continue;
        }
        // Plain or byte string.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            i += if c == 'b' { 2 } else { 1 };
            while i < n {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < n && b[i + 2] == '\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            } else {
                // Char literal (possibly escaped).
                let mut j = i + 1;
                while j < n {
                    match b[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i = j;
            }
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // Fractional part: a dot followed by a digit (so `1..x`
                // and `1.max()` stay integers).
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                } else if i < n
                    && b[i] == '.'
                    && !(i + 1 < n
                        && (b[i + 1] == '.' || b[i + 1].is_alphabetic() || b[i + 1] == '_'))
                {
                    // Trailing-dot float like `1.`.
                    is_float = true;
                    i += 1;
                }
                // Exponent.
                if i < n && (b[i] == 'e' || b[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (b[j] == '+' || b[j] == '-') {
                        j += 1;
                    }
                    if j < n && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Type suffix.
                let suf_start = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let suffix: String = b[suf_start..i].iter().collect();
                if suffix == "f32" || suffix == "f64" {
                    is_float = true;
                }
            }
            toks.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifier / keyword (including r#ident raw identifiers).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Punctuation, fusing known two-char operators.
        if i + 1 < n {
            let two: String = b[i..i + 2].iter().collect();
            if TWO_CHAR_OPS.contains(&two.as_str()) {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: two,
                    line,
                });
                i += 2;
                continue;
            }
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// If `rest` starts a raw (byte) string, its total char length.
fn raw_string_len(rest: &[char]) -> Option<usize> {
    let mut i = 0;
    if rest.first() == Some(&'b') {
        i += 1;
    }
    if rest.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while rest.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if rest.get(i) != Some(&'"') {
        return None;
    }
    i += 1;
    // Scan for `"` followed by `hashes` hashes.
    while i < rest.len() {
        if rest[i] == '"' {
            let mut k = 0;
            while k < hashes && rest.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return Some(i + 1 + hashes);
            }
        }
        i += 1;
    }
    Some(rest.len())
}

/// Mark tokens that belong to test-only code: items annotated with
/// `#[test]`, `#[cfg(test)]` (or any `cfg(...)` attribute mentioning
/// `test`), including the entire body of `#[cfg(test)] mod tests { .. }`.
pub fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut mentions_test = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                } else if toks[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if mentions_test {
                // Skip further attributes, then mark the item. A `;`
                // before any `{` means a brace-less item (e.g. a `use`):
                // nothing to mark beyond the attribute itself.
                let mut k = j;
                while k < toks.len() && toks[k].is_punct("#") {
                    // Skip the chained attribute.
                    let mut d = 0;
                    k += 1;
                    if k < toks.len() && toks[k].is_punct("[") {
                        d = 1;
                        k += 1;
                        while k < toks.len() && d > 0 {
                            if toks[k].is_punct("[") {
                                d += 1;
                            } else if toks[k].is_punct("]") {
                                d -= 1;
                            }
                            k += 1;
                        }
                    }
                    let _ = d;
                }
                let mut body_start = None;
                let mut m = k;
                while m < toks.len() {
                    if toks[m].is_punct(";") {
                        break;
                    }
                    if toks[m].is_punct("{") {
                        body_start = Some(m);
                        break;
                    }
                    m += 1;
                }
                if let Some(open) = body_start {
                    let mut d = 1;
                    let mut e = open + 1;
                    while e < toks.len() && d > 0 {
                        if toks[e].is_punct("{") {
                            d += 1;
                        } else if toks[e].is_punct("}") {
                            d -= 1;
                        }
                        e += 1;
                    }
                    for slot in mask.iter_mut().take(e).skip(i) {
                        *slot = true;
                    }
                    i = e;
                    continue;
                }
                // Brace-less item: mark attribute through the `;`.
                for slot in mask.iter_mut().take(m + 1).skip(i) {
                    *slot = true;
                }
                i = m + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_disappear() {
        let toks = tokenize("a // unwrap()\n/* == */ b \"x == 0.0\" 'c' 'a");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn float_vs_int_classification() {
        let toks = tokenize("1 1.0 2e3 0x10 1f32 7usize 1..3 x.0");
        let kinds: Vec<TokKind> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Int,   // 1
                TokKind::Float, // 1.0
                TokKind::Float, // 2e3
                TokKind::Int,   // 0x10
                TokKind::Float, // 1f32
                TokKind::Int,   // 7usize
                TokKind::Int,   // 1 (of 1..3)
                TokKind::Int,   // 3
                TokKind::Int,   // 0 (tuple index)
            ]
        );
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let toks = tokenize("r#\"unwrap() == 0.0\"# x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("&'a str 'b' '\\n'");
        assert_eq!(toks[1].kind, TokKind::Lifetime);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn tail() {}";
        let toks = tokenize(src);
        let mask = test_region_mask(&toks);
        for (t, &m) in toks.iter().zip(&mask) {
            if t.is_ident("unwrap") {
                assert!(m, "unwrap inside cfg(test) must be masked");
            }
            if t.is_ident("lib") || t.is_ident("tail") {
                assert!(!m, "library items must not be masked");
            }
        }
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn real() { }";
        let toks = tokenize(src);
        let mask = test_region_mask(&toks);
        for (t, &m) in toks.iter().zip(&mask) {
            if t.is_ident("unwrap") {
                assert!(m);
            }
            if t.is_ident("real") {
                assert!(!m);
            }
        }
    }
}
