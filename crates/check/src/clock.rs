//! Vector clocks for happens-before analysis.
//!
//! A [`VectorClock`] maps each logical thread to a count of the events
//! that thread had executed at some point in the trace. Clock `a`
//! happens-before clock `b` iff `a ≤ b` component-wise; two clocks
//! where neither dominates describe *concurrent* points. The race
//! detector in [`crate::race`] keeps one clock per thread (its own
//! history), joins in the release clocks of every lock it acquires, and
//! compares access snapshots for the ordering check. See DESIGN.md §14.

/// A per-thread event counter vector. Index = logical thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The zero clock for `threads` threads.
    pub fn new(threads: usize) -> VectorClock {
        VectorClock(vec![0; threads])
    }

    /// This thread executed one more event.
    pub fn tick(&mut self, thread: usize) {
        if thread >= self.0.len() {
            self.0.resize(thread + 1, 0);
        }
        self.0[thread] = self.0[thread].saturating_add(1);
    }

    /// Component-wise maximum: afterwards `self` dominates both inputs
    /// (the join models "learned everything the other point knew").
    pub fn join(&mut self, other: &VectorClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, &o) in self.0.iter_mut().zip(&other.0) {
            *s = (*s).max(o);
        }
    }

    /// Component `thread` (0 if never ticked).
    pub fn get(&self, thread: usize) -> u32 {
        self.0.get(thread).copied().unwrap_or(0)
    }

    /// Happens-before-or-equal: every component of `self` is ≤ the
    /// matching component of `other`. `!a.le(b) && !b.le(a)` means the
    /// two points are concurrent.
    pub fn le(&self, other: &VectorClock) -> bool {
        let n = self.0.len().max(other.0.len());
        (0..n).all(|t| self.get(t) <= other.get(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VectorClock::new(2);
        c.tick(0);
        c.tick(0);
        c.tick(1);
        assert_eq!(c.get(0), 2);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.get(7), 0, "unseen threads read as zero");
    }

    #[test]
    fn join_is_component_max() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let mut b = VectorClock::new(2);
        b.tick(1);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(1), 2);
    }

    #[test]
    fn ordering_and_concurrency() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let mut b = a.clone();
        b.tick(1);
        assert!(a.le(&b), "a is a prefix of b's history");
        assert!(!b.le(&a));
        // Concurrent: each ticked its own component past the other.
        let mut c = VectorClock::new(2);
        c.tick(0);
        let mut d = VectorClock::new(2);
        d.tick(1);
        assert!(!c.le(&d) && !d.le(&c), "concurrent points");
        // Equal clocks are ordered both ways (le is reflexive).
        assert!(a.le(&a));
    }

    #[test]
    fn join_grows_to_longer_clock() {
        let mut a = VectorClock::new(1);
        let mut b = VectorClock::new(4);
        b.tick(3);
        a.join(&b);
        assert_eq!(a.get(3), 1);
        assert!(b.le(&a));
    }
}
