//! Deterministic interleaving exploration (a miniature loom).
//!
//! A [`Scenario`] is a fixed set of logical threads, each a fixed
//! sequence of operations against a shared structure plus a sequential
//! shadow model. The explorer runs every operation *on the caller's
//! thread*, in an interleaving it controls, so every run is exactly
//! reproducible from its choice trace — no real parallelism, no timing
//! dependence.
//!
//! Why this is sound for the serve primitives: every public operation
//! on [`adarnet_serve::BoundedQueue`], [`adarnet_serve::PatchCache`]
//! and [`adarnet_serve::ModelRegistry`] is atomic under that
//! structure's internal lock, so any concurrent execution is equivalent
//! to *some* linearization of the operations — and the explorer visits
//! those linearizations exhaustively (or by seeded random sampling for
//! the larger spaces). What this cannot see is a non-linearizable
//! implementation (e.g. a torn multi-lock update); the lock-order lint
//! and the uniform-checkpoint torn-read oracle cover that flank. See
//! DESIGN.md §9 for the full argument and its limits.
//!
//! Two exploration modes:
//!
//! * [`explore_exhaustive`] — depth-first over *all* interleavings
//!   (the count for thread op-lengths `(a, b, c)` is the multinomial
//!   `(a+b+c)! / (a! b! c!)`);
//! * [`explore_random`] — uniformly random scheduler choices from a
//!   seeded [`rand_chacha::ChaCha8Rng`], for spaces too large to
//!   enumerate.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use adarnet_core::sync::trace;

use crate::dpor::{explore_dpor, Footprint};
use crate::race;

/// A model-checking scenario: threads of operations over shared state.
pub trait Scenario {
    /// Per-interleaving state (the real structure plus its shadow
    /// model).
    type State;

    /// Scenario name for reports.
    fn name(&self) -> &'static str;

    /// Number of operations each logical thread performs.
    fn thread_ops(&self) -> Vec<usize>;

    /// Fresh state for one interleaving.
    fn init(&self) -> Self::State;

    /// Run operation `op` (0-based within the thread) of `thread`.
    /// `Err` is an invariant violation; the message should say what
    /// diverged between the real structure and the shadow model.
    fn step(&self, state: &mut Self::State, thread: usize, op: usize) -> Result<(), String>;

    /// End-of-interleaving invariants (e.g. conservation after a full
    /// drain).
    fn finish(&self, state: &mut Self::State) -> Result<(), String>;

    /// Declared read/write footprint of `op` on `thread`, used by
    /// [`crate::dpor::explore_dpor`] to decide which steps commute.
    /// The default makes every pair of steps conflict, so DPOR
    /// degenerates to plain DFS — sound without any declaration.
    fn footprint(&self, _thread: usize, _op: usize) -> Footprint {
        Footprint::exclusive(0)
    }
}

/// One invariant violation with its reproducing schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Scenario that failed.
    pub scenario: &'static str,
    /// Thread index chosen at each scheduling point — replaying these
    /// choices reproduces the failure exactly.
    pub trace: Vec<usize>,
    /// What diverged.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} [schedule: {:?}]",
            self.scenario, self.message, self.trace
        )
    }
}

/// Outcome of an exploration.
#[derive(Debug, Default)]
pub struct ExploreResult {
    /// Interleavings executed.
    pub interleavings: u64,
    /// Invariant violations found (empty = pass).
    pub violations: Vec<Violation>,
}

impl ExploreResult {
    /// Fold another result into this one.
    pub fn merge(&mut self, other: ExploreResult) {
        self.interleavings += other.interleavings;
        self.violations.extend(other.violations);
    }

    /// Record a violation, capped at [`MAX_VIOLATIONS`].
    pub(crate) fn record(&mut self, v: Violation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }
}

/// Cap on recorded violations per exploration; past this the run is
/// thoroughly broken and more traces add nothing.
const MAX_VIOLATIONS: usize = 8;

/// Run one interleaving, with scheduling decided by `choose(runnable)`,
/// which must return an index into the runnable-thread list. Returns
/// the trace and the first violation (if any).
///
/// Every step runs with the `adarnet_core::sync::trace` recorder
/// armed and attributed to the acting logical thread; after the last
/// step the captured acquire/release/wait/read/write stream is
/// replayed through [`race::analyze`], so a data race or lock-order
/// inversion surfaces as a violation of the schedule that exhibited
/// it — even when every oracle check passed. `init` and `finish` run
/// outside the recording window: they are single-threaded prologue /
/// epilogue, not concurrent behavior.
pub(crate) fn run_one<S: Scenario>(
    scenario: &S,
    ops: &[usize],
    mut choose: impl FnMut(&[usize]) -> usize,
) -> (Vec<usize>, Option<String>) {
    let mut remaining = ops.to_vec();
    let mut cursor = vec![0usize; ops.len()];
    let mut state = scenario.init();
    let mut trace_out = Vec::new();
    let mut failed: Option<String> = None;
    trace::begin();
    loop {
        let runnable: Vec<usize> = (0..remaining.len()).filter(|&t| remaining[t] > 0).collect();
        if runnable.is_empty() {
            break;
        }
        let pick = choose(&runnable).min(runnable.len() - 1);
        let t = runnable[pick];
        trace_out.push(t);
        if failed.is_none() {
            trace::set_thread(t as u32);
            if let Err(m) = scenario.step(&mut state, t, cursor[t]) {
                failed = Some(m);
            }
        }
        cursor[t] += 1;
        remaining[t] -= 1;
    }
    let events = trace::end();
    if failed.is_none() {
        if let Some(p) = race::analyze(&events).into_iter().next() {
            failed = Some(p.message);
        }
    }
    if failed.is_none() {
        if let Err(m) = scenario.finish(&mut state) {
            failed = Some(m);
        }
    }
    (trace_out, failed)
}

/// Depth-first enumeration of every interleaving of the scenario's
/// threads (per-thread program order preserved).
pub fn explore_exhaustive<S: Scenario>(scenario: &S) -> ExploreResult {
    let ops = scenario.thread_ops();
    let mut result = ExploreResult::default();
    // DFS stack of (choice, option-count) at each scheduling depth. A
    // replay reuses the stack prefix, then extends with first-choice
    // (0) entries; `advance` rolls the stack like an odometer.
    let mut stack: Vec<(usize, usize)> = Vec::new();
    loop {
        let mut depth = 0usize;
        let (trace, failed) = run_one(scenario, &ops, |runnable| {
            let pick = if depth < stack.len() {
                stack[depth].0
            } else {
                stack.push((0, runnable.len()));
                0
            };
            depth += 1;
            pick
        });
        result.interleavings += 1;
        if let Some(message) = failed {
            if result.violations.len() < MAX_VIOLATIONS {
                result.violations.push(Violation {
                    scenario: scenario.name(),
                    trace,
                    message,
                });
            }
        }
        // Advance to the next interleaving: drop exhausted tail
        // entries, bump the deepest non-exhausted choice.
        let advanced = loop {
            match stack.pop() {
                None => break false,
                Some((choice, options)) if choice + 1 < options => {
                    stack.push((choice + 1, options));
                    break true;
                }
                Some(_) => {}
            }
        };
        if !advanced {
            return result;
        }
    }
}

/// `trials` interleavings with uniformly random scheduler choices from
/// a ChaCha8 stream seeded with `seed` — fully reproducible.
pub fn explore_random<S: Scenario>(scenario: &S, trials: u64, seed: u64) -> ExploreResult {
    let ops = scenario.thread_ops();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut result = ExploreResult::default();
    for _ in 0..trials {
        let (trace, failed) = run_one(scenario, &ops, |runnable| {
            if runnable.len() == 1 {
                0
            } else {
                rng.gen_range(0..runnable.len())
            }
        });
        result.interleavings += 1;
        if let Some(message) = failed {
            if result.violations.len() < MAX_VIOLATIONS {
                result.violations.push(Violation {
                    scenario: scenario.name(),
                    trace,
                    message,
                });
            }
        }
    }
    result
}

/// How exhaustive spaces are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Plain depth-first enumeration of every interleaving.
    Dfs,
    /// Sleep-set DPOR: one representative per Mazurkiewicz trace.
    Dpor,
    /// Both, cross-checked: any scenario where DFS and DPOR disagree
    /// on whether violations exist (or on the covered interleaving
    /// count) is reported as a mismatch. The expensive, high-assurance
    /// mode CI runs at full budget.
    Compare,
}

/// Accumulated counts and findings for one suite.
#[derive(Debug, Default)]
pub struct SuiteStats {
    /// Schedules executed by the exhaustive explorer (DPOR
    /// representatives, or every interleaving under [`Mode::Dfs`]).
    pub exh_explored: u64,
    /// Interleavings covered by the exhaustive explorer (the full
    /// multinomial count, regardless of mode).
    pub exh_covered: u64,
    /// `exh_covered - exh_explored`: schedules skipped as
    /// trace-equivalent.
    pub exh_skipped: u64,
    /// Schedules executed by seeded random sampling.
    pub random_explored: u64,
    /// Violations found (empty = pass).
    pub violations: Vec<Violation>,
    /// [`Mode::Compare`] verdict divergences (empty = DFS and DPOR
    /// agree everywhere).
    pub mismatches: Vec<String>,
}

impl SuiteStats {
    /// Total schedules executed.
    pub fn explored(&self) -> u64 {
        self.exh_explored + self.random_explored
    }

    /// Total interleavings covered (each random trial counts once).
    pub fn covered(&self) -> u64 {
        self.exh_covered + self.random_explored
    }
}

/// Runs a suite's scenarios under one [`Mode`], accumulating
/// [`SuiteStats`]. Suites call [`Explorer::exhaustive`] /
/// [`Explorer::random`] instead of the `explore_*` functions directly
/// so the mode is decided once, by the caller (the `model-check` bin).
pub struct Explorer {
    mode: Mode,
    /// Counts and findings so far.
    pub stats: SuiteStats,
}

impl Explorer {
    /// A fresh explorer in `mode`.
    pub fn new(mode: Mode) -> Explorer {
        Explorer {
            mode,
            stats: SuiteStats::default(),
        }
    }

    /// The mode this explorer was built with.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Exhaustively cover every interleaving of `scenario` (via DFS,
    /// DPOR, or both cross-checked, per the mode).
    pub fn exhaustive<S: Scenario>(&mut self, scenario: &S) {
        match self.mode {
            Mode::Dfs => {
                let r = explore_exhaustive(scenario);
                self.stats.exh_explored += r.interleavings;
                self.stats.exh_covered += r.interleavings;
                self.stats.violations.extend(r.violations);
            }
            Mode::Dpor => {
                let d = explore_dpor(scenario);
                self.stats.exh_explored += d.result.interleavings;
                self.stats.exh_covered += d.covered;
                self.stats.exh_skipped += d.skipped;
                self.stats.violations.extend(d.result.violations);
            }
            Mode::Compare => {
                let r = explore_exhaustive(scenario);
                let d = explore_dpor(scenario);
                if r.violations.is_empty() != d.result.violations.is_empty() {
                    self.stats.mismatches.push(format!(
                        "{}: dfs found {} violation(s), dpor found {} — a footprint \
                         declaration is wrong",
                        scenario.name(),
                        r.violations.len(),
                        d.result.violations.len()
                    ));
                }
                if d.covered != r.interleavings {
                    self.stats.mismatches.push(format!(
                        "{}: dpor claims to cover {} interleavings, dfs enumerated {}",
                        scenario.name(),
                        d.covered,
                        r.interleavings
                    ));
                }
                self.stats.exh_explored += d.result.interleavings;
                self.stats.exh_covered += r.interleavings;
                self.stats.exh_skipped += d.skipped;
                // DFS findings subsume DPOR's (same traces, more
                // schedules); fall back so a DPOR-only find still
                // surfaces alongside its mismatch.
                if r.violations.is_empty() {
                    self.stats.violations.extend(d.result.violations);
                } else {
                    self.stats.violations.extend(r.violations);
                }
            }
        }
    }

    /// `trials` random schedules from `seed` (mode-independent).
    pub fn random<S: Scenario>(&mut self, scenario: &S, trials: u64, seed: u64) {
        let r = explore_random(scenario, trials, seed);
        self.stats.random_explored += r.interleavings;
        self.stats.violations.extend(r.violations);
    }
}

/// Number of distinct interleavings for the given per-thread op counts
/// (the multinomial coefficient), saturating at `u64::MAX`.
pub fn interleaving_count(ops: &[usize]) -> u64 {
    // Multiply incrementally: result *= C(total, k) per thread.
    let mut result: u64 = 1;
    let mut total: u64 = 0;
    for &k in ops {
        for i in 1..=(k as u64) {
            total += 1;
            // result * total / i is always integral at this point.
            result = match result.checked_mul(total) {
                Some(v) => v / i,
                None => return u64::MAX,
            };
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Counts distinct traces and checks program order per thread.
    struct TraceCollector {
        ops: Vec<usize>,
        seen: RefCell<std::collections::BTreeSet<Vec<usize>>>,
    }

    impl Scenario for TraceCollector {
        type State = Vec<usize>;
        fn name(&self) -> &'static str {
            "trace-collector"
        }
        fn thread_ops(&self) -> Vec<usize> {
            self.ops.clone()
        }
        fn init(&self) -> Vec<usize> {
            Vec::new()
        }
        fn step(&self, state: &mut Vec<usize>, thread: usize, op: usize) -> Result<(), String> {
            // Program order: the op index must equal how many times this
            // thread has already run.
            let prior = state.iter().filter(|&&t| t == thread).count();
            if prior != op {
                return Err(format!("thread {thread} op {op} ran out of order"));
            }
            state.push(thread);
            Ok(())
        }
        fn finish(&self, state: &mut Vec<usize>) -> Result<(), String> {
            self.seen.borrow_mut().insert(state.clone());
            Ok(())
        }
    }

    #[test]
    fn exhaustive_visits_every_interleaving_exactly_once() {
        let s = TraceCollector {
            ops: vec![2, 2, 1],
            seen: RefCell::new(Default::default()),
        };
        let r = explore_exhaustive(&s);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // 5!/(2!2!1!) = 30 distinct interleavings.
        assert_eq!(interleaving_count(&[2, 2, 1]), 30);
        assert_eq!(r.interleavings, 30);
        assert_eq!(s.seen.borrow().len(), 30, "each visited exactly once");
    }

    #[test]
    fn random_respects_program_order_and_trial_count() {
        let s = TraceCollector {
            ops: vec![3, 3],
            seen: RefCell::new(Default::default()),
        };
        let r = explore_random(&s, 100, 42);
        assert_eq!(r.interleavings, 100);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn random_is_reproducible_for_a_seed() {
        struct Failing;
        impl Scenario for Failing {
            type State = ();
            fn name(&self) -> &'static str {
                "failing"
            }
            fn thread_ops(&self) -> Vec<usize> {
                vec![2, 2]
            }
            fn init(&self) {}
            fn step(&self, _: &mut (), thread: usize, op: usize) -> Result<(), String> {
                if thread == 1 && op == 1 {
                    Err("boom".into())
                } else {
                    Ok(())
                }
            }
            fn finish(&self, _: &mut ()) -> Result<(), String> {
                Ok(())
            }
        }
        let a = explore_random(&Failing, 10, 7);
        let b = explore_random(&Failing, 10, 7);
        let ta: Vec<_> = a.violations.iter().map(|v| v.trace.clone()).collect();
        let tb: Vec<_> = b.violations.iter().map(|v| v.trace.clone()).collect();
        assert_eq!(ta, tb);
        assert!(!ta.is_empty());
    }

    #[test]
    fn violation_carries_reproducing_trace() {
        struct FailOnce;
        impl Scenario for FailOnce {
            type State = ();
            fn name(&self) -> &'static str {
                "fail-once"
            }
            fn thread_ops(&self) -> Vec<usize> {
                vec![1, 1]
            }
            fn init(&self) {}
            fn step(&self, _: &mut (), thread: usize, _: usize) -> Result<(), String> {
                if thread == 1 {
                    Err("thread 1 ran".into())
                } else {
                    Ok(())
                }
            }
            fn finish(&self, _: &mut ()) -> Result<(), String> {
                Ok(())
            }
        }
        let r = explore_exhaustive(&FailOnce);
        assert_eq!(r.interleavings, 2);
        // Both interleavings run thread 1 somewhere, so both fail.
        assert_eq!(r.violations.len(), 2);
        for v in &r.violations {
            assert!(v.trace.contains(&1));
        }
    }

    #[test]
    fn interleaving_count_matches_known_values() {
        assert_eq!(interleaving_count(&[3, 3, 3]), 1680);
        assert_eq!(interleaving_count(&[1]), 1);
        assert_eq!(interleaving_count(&[]), 1);
        assert_eq!(interleaving_count(&[4, 4]), 70);
    }
}
