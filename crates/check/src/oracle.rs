//! Sequential shadow models for the serve primitives.
//!
//! Each oracle is a deliberately naive, obviously-correct restatement
//! of one structure's contract. The model-checker suites run every
//! operation against the real structure *and* its oracle in the same
//! linearized order and fail on any divergence — so the oracles are the
//! specification, and the concurrent implementations are checked
//! against it under every explored interleaving.

use std::collections::VecDeque;

/// Shadow outcome of a queue push (mirrors
/// [`adarnet_serve::PushOutcome`] without carrying the item).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelPush {
    /// Accepted into the queue.
    Enqueued,
    /// Full; the caller keeps the item.
    Saturated,
    /// Shut down; the caller keeps the item.
    Rejected,
}

/// Naive bounded FIFO with shutdown — the [`adarnet_serve::BoundedQueue`]
/// contract.
pub struct QueueModel {
    capacity: usize,
    items: VecDeque<u64>,
    shutdown: bool,
    /// Every value that was accepted, in acceptance order.
    pub accepted: Vec<u64>,
    /// Every value that came back out, in pop order.
    pub popped: Vec<u64>,
}

impl QueueModel {
    /// Model of a queue with `capacity` slots (clamped to 1, like the
    /// real queue).
    pub fn new(capacity: usize) -> QueueModel {
        QueueModel {
            capacity: capacity.max(1),
            items: VecDeque::new(),
            shutdown: false,
            accepted: Vec::new(),
            popped: Vec::new(),
        }
    }

    /// Spec: reject after shutdown, saturate at capacity, else append.
    pub fn push(&mut self, value: u64) -> ModelPush {
        if self.shutdown {
            ModelPush::Rejected
        } else if self.items.len() >= self.capacity {
            ModelPush::Saturated
        } else {
            self.items.push_back(value);
            self.accepted.push(value);
            ModelPush::Enqueued
        }
    }

    /// Spec: strict FIFO, shutdown does not block draining.
    pub fn try_pop(&mut self) -> Option<u64> {
        let v = self.items.pop_front();
        if let Some(v) = v {
            self.popped.push(v);
        }
        v
    }

    /// Spec: pop min(len, max.max(1)) items in FIFO order.
    pub fn try_pop_batch(&mut self, max: usize) -> Vec<u64> {
        let take = self.items.len().min(max.max(1));
        let batch: Vec<u64> = self.items.drain(..take).collect();
        self.popped.extend_from_slice(&batch);
        batch
    }

    /// Spec: stop accepting, keep draining.
    pub fn shutdown(&mut self) {
        self.shutdown = true;
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Conservation: every accepted item popped exactly once, in order,
    /// with nothing left behind. Call after a full drain.
    pub fn check_conservation(&self) -> Result<(), String> {
        if !self.items.is_empty() {
            return Err(format!("{} items never drained", self.items.len()));
        }
        if self.accepted != self.popped {
            return Err(format!(
                "accepted {:?} but popped {:?} (lost, duplicated, or reordered entries)",
                self.accepted, self.popped
            ));
        }
        Ok(())
    }
}

/// Number of priority lanes, mirrored from `adarnet_serve::NUM_LANES`
/// (restated here so the oracle stays a dependency-free spec).
pub const LANES: usize = 3;

/// Naive three-lane weighted-deficit priority queue — the
/// [`adarnet_serve::LaneQueue`] contract, restated independently of
/// `select_lane_spec` so a bug in either the selection rule or the
/// queue's locking shows up as a divergence.
pub struct PriorityQueueModel {
    capacity: usize,
    weights: [i64; LANES],
    lanes: [VecDeque<u64>; LANES],
    credits: [i64; LANES],
    shutdown: bool,
    /// Per-lane accepted values, in acceptance order.
    pub accepted: [Vec<u64>; LANES],
    /// Per-lane popped values, in pop order.
    pub popped: [Vec<u64>; LANES],
    /// Pops served per lane (the fairness ledger).
    pub served: [u64; LANES],
}

impl PriorityQueueModel {
    /// Model of a queue whose every lane holds `capacity` items
    /// (clamped to 1) with per-cycle `weights` (each clamped to ≥ 1),
    /// like the real queue.
    pub fn new(capacity: usize, weights: [u64; LANES]) -> PriorityQueueModel {
        PriorityQueueModel {
            capacity: capacity.max(1),
            weights: [
                weights[0].max(1) as i64,
                weights[1].max(1) as i64,
                weights[2].max(1) as i64,
            ],
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            credits: [0; LANES],
            shutdown: false,
            accepted: [Vec::new(), Vec::new(), Vec::new()],
            popped: [Vec::new(), Vec::new(), Vec::new()],
            served: [0; LANES],
        }
    }

    /// Spec: reject after shutdown, saturate when *that lane* is at
    /// capacity (lanes are independent), else append to the lane.
    pub fn push(&mut self, lane: usize, value: u64) -> ModelPush {
        if self.shutdown {
            ModelPush::Rejected
        } else if self.lanes[lane].len() >= self.capacity {
            ModelPush::Saturated
        } else {
            self.lanes[lane].push_back(value);
            self.accepted[lane].push(value);
            ModelPush::Enqueued
        }
    }

    /// Spec: the weighted-deficit pickup rule, naively — scan lanes in
    /// priority order for a non-empty lane with positive credit; if no
    /// lane qualifies, refill every credit by its weight (capped at one
    /// cycle's worth) and rescan. `None` iff every lane is empty.
    fn select(&mut self) -> Option<usize> {
        if self.lanes.iter().all(VecDeque::is_empty) {
            return None;
        }
        loop {
            for i in 0..LANES {
                if !self.lanes[i].is_empty() && self.credits[i] > 0 {
                    return Some(i);
                }
            }
            for i in 0..LANES {
                self.credits[i] = (self.credits[i] + self.weights[i]).min(self.weights[i]);
            }
        }
    }

    /// Spec: select a lane, pop its head, charge one credit.
    pub fn try_pop(&mut self) -> Option<(usize, u64)> {
        let lane = self.select()?;
        let value = self.lanes[lane].pop_front()?;
        self.credits[lane] -= 1;
        self.popped[lane].push(value);
        self.served[lane] += 1;
        Some((lane, value))
    }

    /// Spec: select a lane, pop min(len, max.max(1)) items *from that
    /// lane only*, charge the whole batch against its credit.
    pub fn try_pop_batch(&mut self, max: usize) -> Option<(usize, Vec<u64>)> {
        let lane = self.select()?;
        let take = self.lanes[lane].len().min(max.max(1));
        let batch: Vec<u64> = self.lanes[lane].drain(..take).collect();
        self.credits[lane] -= batch.len() as i64;
        self.popped[lane].extend_from_slice(&batch);
        self.served[lane] += batch.len() as u64;
        Some((lane, batch))
    }

    /// Spec: stop accepting, keep draining.
    pub fn shutdown(&mut self) {
        self.shutdown = true;
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Items queued in one lane.
    pub fn lane_len(&self, lane: usize) -> usize {
        self.lanes[lane].len()
    }

    /// Items queued across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Conservation, per lane: every accepted item popped exactly once,
    /// in FIFO order within its lane, nothing left behind. Call after a
    /// full drain. A lane with accepted items and zero pops would fail
    /// here — starvation is a conservation violation at drain time.
    pub fn check_conservation(&self) -> Result<(), String> {
        for lane in 0..LANES {
            if !self.lanes[lane].is_empty() {
                return Err(format!(
                    "lane {lane}: {} items never drained",
                    self.lanes[lane].len()
                ));
            }
            if self.accepted[lane] != self.popped[lane] {
                return Err(format!(
                    "lane {lane}: accepted {:?} but popped {:?} \
                     (lost, duplicated, or reordered entries)",
                    self.accepted[lane], self.popped[lane]
                ));
            }
        }
        Ok(())
    }
}

/// Nano-tokens per token, mirrored from `adarnet_serve::quota`.
const NANO: u64 = 1_000_000_000;

/// Naive token bucket over a logical clock — the
/// [`adarnet_serve::TokenBucket`] contract, restated with u128
/// arithmetic throughout (no saturation subtleties to share with the
/// real code), plus the conservation ledger.
pub struct QuotaModel {
    rate_per_sec: u64,
    burst: u64,
    /// Current fill, nano-tokens.
    tokens_nano: u128,
    /// Highest clock value seen.
    last_ns: u64,
    /// Clock value at creation (the conservation window's start).
    start_ns: u64,
    /// Tokens granted so far.
    pub granted: u64,
    /// Takes denied so far.
    pub denied: u64,
}

impl QuotaModel {
    /// A bucket that starts full, like the real one (clamps mirror the
    /// real constructor).
    pub fn new(rate_per_sec: u64, burst: u64, now_ns: u64) -> QuotaModel {
        let burst = burst.max(1);
        QuotaModel {
            rate_per_sec: rate_per_sec.max(1),
            burst,
            tokens_nano: burst as u128 * NANO as u128,
            last_ns: now_ns,
            start_ns: now_ns,
            granted: 0,
            denied: 0,
        }
    }

    /// Spec: refill `elapsed × rate` nano-tokens capped at `burst`
    /// (a backwards clock refills nothing), then take one token if a
    /// whole one is available.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        let elapsed = now_ns.saturating_sub(self.last_ns) as u128;
        self.last_ns = self.last_ns.max(now_ns);
        let cap = self.burst as u128 * NANO as u128;
        self.tokens_nano = (self.tokens_nano + elapsed * self.rate_per_sec as u128).min(cap);
        if self.tokens_nano >= NANO as u128 {
            self.tokens_nano -= NANO as u128;
            self.granted += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Current fill in whole tokens.
    pub fn available(&self) -> u64 {
        (self.tokens_nano / NANO as u128) as u64
    }

    /// Token-bucket conservation: over the bucket's whole life,
    /// `granted ≤ burst + elapsed × rate / 1e9` (+1 for the fractional
    /// token in flight). A bucket violating this is over-admitting.
    pub fn check_conservation(&self) -> Result<(), String> {
        let elapsed = self.last_ns.saturating_sub(self.start_ns) as u128;
        let bound = self.burst as u128 + elapsed * self.rate_per_sec as u128 / NANO as u128 + 1;
        if self.granted as u128 > bound {
            return Err(format!(
                "token bucket over-admitted: granted {} > bound {bound} \
                 (burst {}, rate {}/s, window {elapsed} ns)",
                self.granted, self.burst, self.rate_per_sec
            ));
        }
        Ok(())
    }
}

/// Naive exact-LRU map with hit/miss counters — the
/// [`adarnet_serve::PatchCache`] contract, over small integer keys.
pub struct LruModel {
    capacity: usize,
    /// `(key, value)` in recency order, least recent first.
    entries: Vec<(u64, u64)>,
    /// Lifetime hits.
    pub hits: u64,
    /// Lifetime misses.
    pub misses: u64,
}

impl LruModel {
    /// Model of a cache holding `capacity` entries (0 disables).
    pub fn new(capacity: usize) -> LruModel {
        LruModel {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Spec: hit refreshes recency and bumps `hits`; otherwise `misses`.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            let entry = self.entries.remove(pos);
            let value = entry.1;
            self.entries.push(entry);
            self.hits += 1;
            Some(value)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Spec: insert/overwrite refreshes recency; evict least-recent
    /// past capacity; no counter changes.
    pub fn insert(&mut self, key: u64, value: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
        }
        self.entries.push((key, value));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }

    /// Spec: drop everything; counters keep their lifetime values.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the model holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Naive activation history — the [`adarnet_serve::ModelRegistry`]
/// generation contract.
pub struct RegistryModel {
    /// `(generation, name)` of the current active model.
    pub active: Option<(u64, String)>,
    /// Monotone activation counter.
    pub generation: u64,
}

impl RegistryModel {
    /// Model of a registry before any activation.
    pub fn new() -> RegistryModel {
        RegistryModel {
            active: None,
            generation: 0,
        }
    }

    /// Spec: each activation takes the next generation and publishes
    /// atomically.
    pub fn activate(&mut self, name: &str) -> u64 {
        self.generation += 1;
        self.active = Some((self.generation, name.to_string()));
        self.generation
    }
}

impl Default for RegistryModel {
    fn default() -> Self {
        RegistryModel::new()
    }
}

/// Naive flight-recorder ring — the
/// [`adarnet_obs::FlightRecorder`] reserve/commit contract.
///
/// The real ring's newest-wins overwrite makes its final contents a
/// pure function of *which* `(seq, value)` pairs were committed,
/// independent of commit order: each slot `seq % capacity` ends up
/// holding the highest-seq event committed into it. The model records
/// the committed set and derives that fixed point, so any
/// order-dependence in the real ring shows up as a divergence.
pub struct RecorderModel {
    capacity: u64,
    /// Sequence numbers handed out so far.
    pub reserved: u64,
    /// Every `(seq, value)` pair committed, in commit order.
    pub committed: Vec<(u64, u64)>,
}

impl RecorderModel {
    /// Model of a ring with `capacity` slots (clamped to 1, like the
    /// real recorder).
    pub fn new(capacity: usize) -> RecorderModel {
        RecorderModel {
            capacity: capacity.max(1) as u64,
            reserved: 0,
            committed: Vec::new(),
        }
    }

    /// Spec: sequence numbers are handed out densely from 0.
    pub fn reserve(&mut self) -> u64 {
        let seq = self.reserved;
        self.reserved += 1;
        seq
    }

    /// Spec: remember the committed pair (order is irrelevant to the
    /// outcome; see [`RecorderModel::expected_survivors`]).
    pub fn commit(&mut self, seq: u64, value: u64) {
        self.committed.push((seq, value));
    }

    /// The `(seq, value)` pairs that must survive, oldest first: per
    /// slot, the highest-seq committed event.
    pub fn expected_survivors(&self) -> Vec<(u64, u64)> {
        let mut best: Vec<Option<(u64, u64)>> = vec![None; self.capacity as usize];
        for &(seq, value) in &self.committed {
            let slot = (seq % self.capacity) as usize;
            if best[slot].is_none_or(|(s, _)| s < seq) {
                best[slot] = Some((seq, value));
            }
        }
        let mut out: Vec<(u64, u64)> = best.into_iter().flatten().collect();
        out.sort_unstable();
        out
    }

    /// The headline claim: every committed event among the last
    /// `capacity` reserved sequence numbers survives — a laggard commit
    /// can never erase the recent tail.
    pub fn check_tail(&self, survivors: &[(u64, u64)]) -> Result<(), String> {
        let floor = self.reserved.saturating_sub(self.capacity);
        for &(seq, value) in &self.committed {
            if seq >= floor && !survivors.contains(&(seq, value)) {
                return Err(format!(
                    "committed tail event (seq {seq}, value {value}) lost \
                     (floor {floor}, capacity {})",
                    self.capacity
                ));
            }
        }
        Ok(())
    }
}

/// One span inside a [`TraceModel`] trace (start offsets are
/// wall-clock and deliberately not modeled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpan {
    /// Dense per-trace span id (1-based).
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent: u64,
    /// Span site name.
    pub name: &'static str,
    /// Committed duration.
    pub dur_ns: u64,
    /// Structured field name (`""` = none).
    pub field: &'static str,
    /// Structured field value.
    pub value: u64,
}

/// One in-flight trace inside the [`TraceModel`].
struct ModelActive {
    trace_id: u64,
    next_span_id: u64,
    /// `(span, committed)` in begin order.
    spans: Vec<(ModelSpan, bool)>,
    dropped: u64,
}

/// Naive in-flight trace table — the
/// [`adarnet_obs::trace::TraceArena`] start/begin/commit/finish
/// contract, restated without slots, probing, or locks: a flat list of
/// live traces keyed by id.
///
/// The headline claims this oracle pins down:
///
/// * `start` admits a trace iff its id is nonzero, not already in
///   flight, and fewer than `capacity` traces are live — probe order
///   and slot reuse must never change admission;
/// * span ids are dense per trace and the span budget drops (never
///   truncates) excess begins;
/// * a commit lands iff its trace is *still the same in-flight trace*
///   — a laggard commit after finish (or after the slot was re-claimed)
///   must vanish;
/// * `finish` returns exactly the committed spans — an uncommitted
///   (torn) span never escapes the arena.
pub struct TraceModel {
    capacity: usize,
    spans_per_trace: usize,
    live: Vec<ModelActive>,
}

impl TraceModel {
    /// Model of an arena with `capacity` trace slots of
    /// `spans_per_trace` spans each (both clamped to 1, like the real
    /// arena).
    pub fn new(capacity: usize, spans_per_trace: usize) -> TraceModel {
        TraceModel {
            capacity: capacity.max(1),
            spans_per_trace: spans_per_trace.max(1),
            live: Vec::new(),
        }
    }

    fn find(&mut self, trace_id: u64) -> Option<&mut ModelActive> {
        self.live.iter_mut().find(|t| t.trace_id == trace_id)
    }

    /// Spec: admit iff nonzero, not in flight, and below capacity.
    pub fn start(&mut self, trace_id: u64) -> bool {
        if trace_id == 0
            || self.live.iter().any(|t| t.trace_id == trace_id)
            || self.live.len() >= self.capacity
        {
            return false;
        }
        self.live.push(ModelActive {
            trace_id,
            next_span_id: 1,
            spans: Vec::new(),
            dropped: 0,
        });
        true
    }

    /// Spec: allocate the next dense span id, or count a drop when the
    /// budget is spent. Returns `(span_id, index)` for the matching
    /// commit.
    pub fn begin(
        &mut self,
        trace_id: u64,
        parent: u64,
        name: &'static str,
    ) -> Option<(u64, usize)> {
        let budget = self.spans_per_trace;
        let t = self.find(trace_id)?;
        if t.spans.len() >= budget {
            t.dropped += 1;
            return None;
        }
        let span_id = t.next_span_id;
        t.next_span_id += 1;
        let idx = t.spans.len();
        t.spans.push((
            ModelSpan {
                span_id,
                parent,
                name,
                dur_ns: 0,
                field: "",
                value: 0,
            },
            false,
        ));
        Some((span_id, idx))
    }

    /// Spec: a commit lands iff the trace is still live and the record
    /// at `idx` is the one this begin allocated.
    pub fn commit(
        &mut self,
        trace_id: u64,
        idx: usize,
        span_id: u64,
        dur_ns: u64,
        field: &'static str,
        value: u64,
    ) -> bool {
        let Some(t) = self.find(trace_id) else {
            return false;
        };
        match t.spans.get_mut(idx) {
            Some((rec, committed)) if rec.span_id == span_id => {
                rec.dur_ns = dur_ns;
                rec.field = field;
                rec.value = value;
                *committed = true;
                true
            }
            _ => false,
        }
    }

    /// Spec: begin + immediate commit (the `record` convenience).
    pub fn record(
        &mut self,
        trace_id: u64,
        parent: u64,
        name: &'static str,
        dur_ns: u64,
        field: &'static str,
        value: u64,
    ) -> Option<u64> {
        let (span_id, idx) = self.begin(trace_id, parent, name)?;
        self.commit(trace_id, idx, span_id, dur_ns, field, value)
            .then_some(span_id)
    }

    /// Spec: remove the trace and return only its committed spans plus
    /// the drop count. `None` when the trace is not in flight.
    pub fn finish(&mut self, trace_id: u64) -> Option<(Vec<ModelSpan>, u64)> {
        let pos = self.live.iter().position(|t| t.trace_id == trace_id)?;
        let t = self.live.remove(pos);
        Some((
            t.spans
                .into_iter()
                .filter_map(|(rec, committed)| committed.then_some(rec))
                .collect(),
            t.dropped,
        ))
    }

    /// Traces currently in flight.
    pub fn in_flight(&self) -> usize {
        self.live.len()
    }
}

/// Naive tail-sampling history — the
/// [`adarnet_obs::trace::TailSampler`] retention contract, restated as
/// a pure function of the full offer history instead of an incremental
/// displacement loop.
///
/// The spec: after any offer sequence, the sampler retains
///
/// * the last `error_cap` errored offers (oldest first), and
/// * per window of `window` offers, the `slow_cap` largest-`e2e`
///   offers with ties broken toward the *earliest* offer — for the
///   current window and the one before it (the shelf), ordered by
///   offer sequence.
///
/// Any order-dependence in the real displacement loop (or a torn
/// window roll) diverges from this fixed point.
pub struct SamplerModel {
    slow_cap: usize,
    error_cap: usize,
    window: u64,
    /// Every offer, in sequence order: `(e2e_ns, error)`.
    pub offered: Vec<(u64, bool)>,
}

impl SamplerModel {
    /// Model of a sampler with the given caps and window (clamped to
    /// 1, like the real sampler).
    pub fn new(slow_cap: usize, error_cap: usize, window: u64) -> SamplerModel {
        SamplerModel {
            slow_cap: slow_cap.max(1),
            error_cap: error_cap.max(1),
            window: window.max(1),
            offered: Vec::new(),
        }
    }

    /// Spec: remember the offer (retention is derived, not tracked).
    pub fn offer(&mut self, e2e_ns: u64, error: bool) {
        self.offered.push((e2e_ns, error));
    }

    /// The offer sequence numbers of one window's expected slow set:
    /// the `slow_cap` largest by `(e2e desc, seq asc)`, in seq order.
    fn slow_of_window(&self, window_id: u64) -> Vec<u64> {
        let lo = window_id * self.window;
        let hi = lo + self.window;
        let mut in_window: Vec<(u64, u64)> = self
            .offered
            .iter()
            .enumerate()
            .map(|(i, &(e2e, _))| (i as u64, e2e))
            .filter(|&(seq, _)| seq >= lo && seq < hi)
            .collect();
        in_window.sort_by_key(|&(seq, e2e)| (std::cmp::Reverse(e2e), seq));
        let mut kept: Vec<u64> = in_window
            .into_iter()
            .take(self.slow_cap)
            .map(|(seq, _)| seq)
            .collect();
        kept.sort_unstable();
        kept
    }

    /// Expected snapshot as offer sequence numbers: the error ring
    /// (oldest first) followed by the shelf and current windows' slow
    /// sets in offer order.
    pub fn expected(&self) -> Vec<u64> {
        let mut errors: Vec<u64> = self
            .offered
            .iter()
            .enumerate()
            .filter(|(_, &(_, error))| error)
            .map(|(i, _)| i as u64)
            .collect();
        if errors.len() > self.error_cap {
            errors.drain(..errors.len() - self.error_cap);
        }
        let mut out = errors;
        if !self.offered.is_empty() {
            let current = (self.offered.len() as u64 - 1) / self.window;
            let mut slow = Vec::new();
            if current > 0 {
                slow.extend(self.slow_of_window(current - 1));
            }
            slow.extend(self.slow_of_window(current));
            slow.sort_unstable();
            out.extend(slow);
        }
        out
    }

    /// Offers made so far.
    pub fn offers(&self) -> u64 {
        self.offered.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_model_saturates_and_rejects() {
        let mut q = QueueModel::new(2);
        assert_eq!(q.push(1), ModelPush::Enqueued);
        assert_eq!(q.push(2), ModelPush::Enqueued);
        assert_eq!(q.push(3), ModelPush::Saturated);
        q.shutdown();
        assert_eq!(q.push(4), ModelPush::Rejected);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop_batch(5), vec![2]);
        assert!(q.check_conservation().is_ok());
    }

    #[test]
    fn queue_conservation_catches_leftovers() {
        let mut q = QueueModel::new(4);
        q.push(1);
        assert!(q.check_conservation().is_err());
        q.try_pop();
        assert!(q.check_conservation().is_ok());
    }

    #[test]
    fn lru_model_evicts_least_recent() {
        let mut c = LruModel::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(1), Some(10));
        c.insert(3, 30);
        assert_eq!(c.get(2), None, "2 was least-recent");
        assert_eq!(c.get(3), Some(30));
        assert_eq!((c.hits, c.misses), (2, 1));
    }

    #[test]
    fn lru_model_zero_capacity_disables() {
        let mut c = LruModel::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
        assert_eq!((c.hits, c.misses), (0, 1));
    }

    #[test]
    fn recorder_model_survivors_are_per_slot_max() {
        let mut r = RecorderModel::new(2);
        let s0 = r.reserve();
        let s1 = r.reserve();
        let s2 = r.reserve(); // same slot as s0
                              // Commit out of order: the laggard s0 must not survive over s2.
        r.commit(s2, 102);
        r.commit(s0, 100);
        r.commit(s1, 101);
        assert_eq!(r.expected_survivors(), vec![(1, 101), (2, 102)]);
        assert!(r.check_tail(&r.expected_survivors()).is_ok());
        // A tail loss is caught: drop s2 from the claimed survivors.
        assert!(r.check_tail(&[(1, 101)]).is_err());
    }

    #[test]
    fn recorder_model_uncommitted_reserves_leave_gaps() {
        let mut r = RecorderModel::new(4);
        for _ in 0..4 {
            r.reserve();
        }
        r.commit(1, 11);
        r.commit(3, 13);
        assert_eq!(r.expected_survivors(), vec![(1, 11), (3, 13)]);
        assert!(r.check_tail(&r.expected_survivors()).is_ok());
    }

    #[test]
    fn priority_model_matches_the_documented_pop_order() {
        // Same script as the real LaneQueue's unit test: the two
        // restatements of the WRR rule must agree on the exact order.
        let mut q = PriorityQueueModel::new(16, [4, 2, 1]);
        for v in 0..3 {
            assert_eq!(q.push(2, 300 + v), ModelPush::Enqueued);
            assert_eq!(q.push(1, 200 + v), ModelPush::Enqueued);
            assert_eq!(q.push(0, 100 + v), ModelPush::Enqueued);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.try_pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![100, 101, 102, 200, 201, 300, 202, 301, 302]);
        assert!(q.check_conservation().is_ok());
    }

    #[test]
    fn priority_model_never_starves_bulk() {
        let mut q = PriorityQueueModel::new(64, [4, 2, 1]);
        for v in 0..27 {
            q.push((v % 3) as usize, v);
        }
        // Top every lane back up while popping a full backlog window.
        for i in 0..21 {
            let (lane, _) = q.try_pop().expect("backlogged");
            q.push(lane, 1000 + i);
        }
        assert!(q.served[2] >= 2, "bulk starved: {:?}", q.served);
        assert!(
            q.served[0] > q.served[2],
            "weighting inverted: {:?}",
            q.served
        );
    }

    #[test]
    fn priority_model_saturates_per_lane_and_batches_stay_pure() {
        let mut q = PriorityQueueModel::new(1, [4, 2, 1]);
        assert_eq!(q.push(0, 1), ModelPush::Enqueued);
        assert_eq!(q.push(0, 2), ModelPush::Saturated, "lane 0 full");
        assert_eq!(q.push(2, 3), ModelPush::Enqueued, "lanes independent");
        let (lane, batch) = q.try_pop_batch(8).unwrap();
        assert_eq!((lane, batch), (0, vec![1]), "one lane per batch");
        q.shutdown();
        assert_eq!(q.push(1, 4), ModelPush::Rejected);
        let (lane, batch) = q.try_pop_batch(8).unwrap();
        assert_eq!((lane, batch), (2, vec![3]), "shutdown still drains");
        assert!(q.check_conservation().is_ok());
    }

    #[test]
    fn priority_conservation_catches_starvation() {
        let mut q = PriorityQueueModel::new(4, [4, 2, 1]);
        q.push(2, 7);
        assert!(q.check_conservation().is_err(), "undrained lane caught");
    }

    #[test]
    fn quota_model_burst_deny_refill_and_conservation() {
        let mut b = QuotaModel::new(10, 3, 0);
        for _ in 0..3 {
            assert!(b.try_take(0));
        }
        assert!(!b.try_take(0), "burst exhausted");
        assert!(!b.try_take(50_000_000), "half a token is not a token");
        assert!(b.try_take(100_000_000), "one token refilled at 10/s");
        // Backwards clock: tolerated, no refill.
        assert!(!b.try_take(0));
        assert_eq!((b.granted, b.denied), (4, 3));
        assert!(b.check_conservation().is_ok());
    }

    #[test]
    fn quota_conservation_catches_over_admission() {
        let mut b = QuotaModel::new(1, 1, 0);
        // Forge a broken ledger: more grants than the window allows.
        b.granted = 50;
        b.last_ns = NANO; // 1 s window at 1/s: bound is 1 + 1 + 1.
        assert!(b.check_conservation().is_err());
    }

    #[test]
    fn registry_model_generations_are_monotone() {
        let mut r = RegistryModel::new();
        assert_eq!(r.activate("a"), 1);
        assert_eq!(r.activate("b"), 2);
        assert_eq!(r.active, Some((2, "b".to_string())));
    }

    #[test]
    fn trace_model_admission_budget_and_torn_spans() {
        let mut m = TraceModel::new(2, 2);
        assert!(!m.start(0), "zero id is untraced");
        assert!(m.start(7));
        assert!(!m.start(7), "duplicate id");
        assert!(m.start(9));
        assert!(!m.start(11), "at capacity");
        assert_eq!(m.in_flight(), 2);

        let (s1, i1) = m.begin(7, 0, "a").unwrap();
        let (s2, _i2) = m.begin(7, s1, "b").unwrap();
        assert_eq!((s1, s2), (1, 2), "span ids are dense");
        assert!(m.begin(7, 0, "c").is_none(), "budget of 2 spent");
        assert!(m.commit(7, i1, s1, 50, "bin", 3));
        // `b` begun but never committed: it must not escape.
        let (spans, dropped) = m.finish(7).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0],
            ModelSpan {
                span_id: 1,
                parent: 0,
                name: "a",
                dur_ns: 50,
                field: "bin",
                value: 3
            }
        );
        // Laggard commit after finish (even with slot freed) drops.
        assert!(!m.commit(7, i1, s1, 99, "", 0));
        assert!(m.start(11), "slot freed by finish");
        assert!(m.finish(7).is_none(), "double finish is a no-op");
    }

    #[test]
    fn trace_model_record_is_begin_plus_commit() {
        let mut m = TraceModel::new(1, 2);
        assert!(m.start(5));
        assert_eq!(m.record(5, 0, "x", 10, "", 0), Some(1));
        assert_eq!(m.record(5, 1, "y", 20, "k", 2), Some(2));
        assert_eq!(m.record(5, 0, "z", 30, "", 0), None, "budget spent");
        let (spans, dropped) = m.finish(5).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 1);
        assert_eq!(spans[1].parent, 1);
    }

    #[test]
    fn sampler_model_keeps_slowest_per_window_and_error_tail() {
        let mut m = SamplerModel::new(2, 2, 100);
        for e2e in [10, 30, 20, 40, 5] {
            m.offer(e2e, false);
        }
        assert_eq!(m.expected(), vec![1, 3], "slowest two, offer order");
        for seq_err in 0..3 {
            m.offer(seq_err, true);
        }
        // Last two errors (seqs 6, 7) + the slow set.
        assert_eq!(m.expected(), vec![6, 7, 1, 3]);
        assert_eq!(m.offers(), 8);
    }

    #[test]
    fn sampler_model_ties_prefer_the_earliest_offer() {
        // Mirrors the real displacement loop's tie-break: a newcomer
        // with equal e2e does not displace an incumbent.
        let mut m = SamplerModel::new(2, 1, 100);
        for e2e in [5, 5, 6, 5] {
            m.offer(e2e, false);
        }
        assert_eq!(m.expected(), vec![0, 2]);
    }

    #[test]
    fn sampler_model_window_roll_keeps_the_shelf() {
        let mut m = SamplerModel::new(1, 1, 2);
        m.offer(100, false);
        m.offer(50, false);
        m.offer(7, false); // window 1 begins
        assert_eq!(m.expected(), vec![0, 2], "previous tail + current");
        m.offer(8, false);
        m.offer(9, false); // window 2: window 0 ages out entirely
        assert_eq!(m.expected(), vec![3, 4]);
    }
}
