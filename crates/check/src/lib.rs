//! # check
//!
//! In-repo correctness tooling for the ADARNet reproduction, in two
//! parts (DESIGN.md §9):
//!
//! 1. **Lint pass** (`cargo run -p check --bin lint`): repo-specific
//!    policies clippy cannot express — panic-free library code,
//!    explicit float comparisons, spelled-out float→int rounding in the
//!    numeric kernels, and single-lock discipline in the serving crate.
//!    Intentional exceptions live, with reasons, in `check/allow.toml`.
//! 2. **Model checker** (`cargo run -p check --bin model-check`): a
//!    deterministic mini-loom that drives the serve primitives
//!    ([`adarnet_serve::BoundedQueue`], [`adarnet_serve::PatchCache`],
//!    [`adarnet_serve::ModelRegistry`]) through bounded-exhaustive and
//!    seeded-random interleavings against sequential shadow oracles.
//!    Exhaustive exploration defaults to sleep-set DPOR ([`dpor`]) —
//!    one executed schedule per Mazurkiewicz trace — and every
//!    schedule's captured sync-event stream is replayed through a
//!    vector-clock race detector and lock-order cycle check
//!    ([`race`], [`clock`]; DESIGN.md §14).
//!
//! Both are CI stages (`scripts/ci.sh`); both are libraries first, so
//! every rule and suite also runs as a plain `cargo test -p check`.

pub mod allow;
pub mod clock;
pub mod dpor;
pub mod lexer;
pub mod lint;
pub mod oracle;
pub mod race;
pub mod rules;
pub mod sched;
pub mod suites;

pub use dpor::{explore_dpor, DporResult, Footprint};
pub use lint::{run_lint, workspace_root, LintReport};
pub use race::{analyze, Problem, ProblemKind};
pub use sched::{
    explore_exhaustive, explore_random, ExploreResult, Explorer, Mode, Scenario, SuiteStats,
    Violation,
};
pub use suites::{run_all, Budget};
