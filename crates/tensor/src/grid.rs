//! `Grid2` — a 2-D scalar field with `(i, j)` indexing for the CFD/AMR side.
//!
//! Separate from [`crate::Tensor`] because solver code benefits from a
//! fixed-rank type: `(i, j)` = `(row, col)` = `(y, x)` with no rank checks
//! in inner loops, plus field-specific helpers (interior iteration,
//! finite-difference-friendly neighbor access).

use crate::Element;
use serde::{Deserialize, Serialize};

/// A dense row-major 2-D field. `ny` rows by `nx` columns; `(i, j)` indexes
/// row `i` (y-direction) and column `j` (x-direction).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2<T: Element> {
    ny: usize,
    nx: usize,
    data: Vec<T>,
}

impl<T: Element> Grid2<T> {
    /// A field of zeros.
    pub fn zeros(ny: usize, nx: usize) -> Self {
        Grid2 {
            ny,
            nx,
            data: vec![T::ZERO; ny * nx],
        }
    }

    /// A field filled with `value`.
    pub fn full(ny: usize, nx: usize, value: T) -> Self {
        Grid2 {
            ny,
            nx,
            data: vec![value; ny * nx],
        }
    }

    /// Wrap an existing row-major buffer. Panics on length mismatch.
    pub fn from_vec(ny: usize, nx: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), ny * nx, "grid data length mismatch");
        Grid2 { ny, nx, data }
    }

    /// Build from a closure over `(i, j)`.
    pub fn from_fn(ny: usize, nx: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(ny * nx);
        for i in 0..ny {
            for j in 0..nx {
                data.push(f(i, j));
            }
        }
        Grid2 { ny, nx, data }
    }

    /// Rows (y extent).
    #[inline(always)]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Columns (x extent).
    #[inline(always)]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Total cell count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the field has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Value at `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.ny && j < self.nx);
        self.data[i * self.nx + j]
    }

    /// Set the value at `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.ny && j < self.nx);
        self.data[i * self.nx + j] = v;
    }

    /// Add to the value at `(i, j)`.
    #[inline(always)]
    pub fn add_at(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.ny && j < self.nx);
        self.data[i * self.nx + j] += v;
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// One full row as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.nx..(i + 1) * self.nx]
    }

    /// Fill with a constant.
    pub fn fill(&mut self, v: T) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Elementwise maximum absolute difference against a same-size field.
    pub fn max_abs_diff(&self, other: &Grid2<T>) -> f64 {
        assert_eq!(
            (self.ny, self.nx),
            (other.ny, other.nx),
            "grid size mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// L2 norm of the field, accumulated in f64.
    pub fn l2_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| {
                let x = v.to_f64();
                x * x
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Root-mean-square of the field (0 for empty fields).
    pub fn rms(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.l2_norm() / (self.data.len() as f64).sqrt()
        }
    }

    /// True if every cell is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Largest value in the field. Panics on empty fields.
    pub fn max_value(&self) -> T {
        assert!(!self.data.is_empty(), "max of empty grid");
        self.data
            .iter()
            .copied()
            .fold(self.data[0], |a, b| a.max(b))
    }

    /// Smallest value in the field. Panics on empty fields.
    pub fn min_value(&self) -> T {
        assert!(!self.data.is_empty(), "min of empty grid");
        self.data
            .iter()
            .copied()
            .fold(self.data[0], |a, b| a.min(b))
    }

    /// Bilinear sample at fractional index coordinates `(fi, fj)`, clamped
    /// to the field bounds. `fi`/`fj` are in cell-index units, not meters.
    pub fn sample_bilinear(&self, fi: f64, fj: f64) -> T {
        let fi = fi.clamp(0.0, (self.ny - 1) as f64);
        let fj = fj.clamp(0.0, (self.nx - 1) as f64);
        let i0 = fi.floor() as usize;
        let j0 = fj.floor() as usize;
        let i1 = (i0 + 1).min(self.ny - 1);
        let j1 = (j0 + 1).min(self.nx - 1);
        let di = T::from_f64(fi - i0 as f64);
        let dj = T::from_f64(fj - j0 as f64);
        let one = T::ONE;
        let v00 = self.get(i0, j0);
        let v01 = self.get(i0, j1);
        let v10 = self.get(i1, j0);
        let v11 = self.get(i1, j1);
        (one - di) * ((one - dj) * v00 + dj * v01) + di * ((one - dj) * v10 + dj * v11)
    }

    /// Restrict to half resolution by 2x2 cell averaging. Extents must be
    /// even.
    pub fn restrict_half(&self) -> Grid2<T> {
        assert!(
            self.ny.is_multiple_of(2) && self.nx.is_multiple_of(2),
            "restrict_half needs even extents, got {}x{}",
            self.ny,
            self.nx
        );
        let quarter = T::from_f64(0.25);
        Grid2::from_fn(self.ny / 2, self.nx / 2, |i, j| {
            (self.get(2 * i, 2 * j)
                + self.get(2 * i, 2 * j + 1)
                + self.get(2 * i + 1, 2 * j)
                + self.get(2 * i + 1, 2 * j + 1))
                * quarter
        })
    }

    /// Prolong to double resolution by piecewise-bilinear interpolation at
    /// the new cell centers.
    pub fn prolong_double(&self) -> Grid2<T> {
        let (ny2, nx2) = (self.ny * 2, self.nx * 2);
        Grid2::from_fn(ny2, nx2, |i, j| {
            // Fine cell center in coarse index coordinates.
            let fi = (i as f64 + 0.5) / 2.0 - 0.5;
            let fj = (j as f64 + 0.5) / 2.0 - 0.5;
            self.sample_bilinear(fi, fj)
        })
    }
}

impl<T: Element> std::fmt::Debug for Grid2<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Grid2({}x{})", self.ny, self.nx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut g = Grid2::<f64>::zeros(3, 4);
        g.set(2, 3, 7.0);
        assert_eq!(g.get(2, 3), 7.0);
        assert_eq!(g.row(2)[3], 7.0);
        g.add_at(2, 3, 1.0);
        assert_eq!(g.get(2, 3), 8.0);
    }

    #[test]
    fn from_fn_layout() {
        let g = Grid2::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(g.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn bilinear_exact_at_nodes_and_midpoints() {
        let g = Grid2::from_fn(2, 2, |i, j| (i * 2 + j) as f64); // 0 1 / 2 3
        assert_eq!(g.sample_bilinear(0.0, 0.0), 0.0);
        assert_eq!(g.sample_bilinear(1.0, 1.0), 3.0);
        assert_eq!(g.sample_bilinear(0.5, 0.5), 1.5);
        // Clamped outside the domain.
        assert_eq!(g.sample_bilinear(-5.0, -5.0), 0.0);
        assert_eq!(g.sample_bilinear(9.0, 9.0), 3.0);
    }

    #[test]
    fn restrict_preserves_mean() {
        let g = Grid2::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let r = g.restrict_half();
        assert_eq!(r.ny(), 2);
        let mean_fine: f64 = g.as_slice().iter().sum::<f64>() / 16.0;
        let mean_coarse: f64 = r.as_slice().iter().sum::<f64>() / 4.0;
        assert!((mean_fine - mean_coarse).abs() < 1e-12);
    }

    #[test]
    fn prolong_restrict_roundtrip_on_linear_field() {
        // Bilinear prolongation reproduces linear fields exactly away from
        // the clamped boundary; restriction then recovers them.
        let g = Grid2::from_fn(8, 8, |i, j| i as f64 + 2.0 * j as f64);
        let fine = g.prolong_double();
        let back = fine.restrict_half();
        for i in 1..7 {
            for j in 1..7 {
                assert!(
                    (back.get(i, j) - g.get(i, j)).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn norms() {
        let g = Grid2::from_vec(1, 2, vec![3.0f64, 4.0]);
        assert_eq!(g.l2_norm(), 5.0);
        assert!((g.rms() - 5.0 / 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(g.max_value(), 4.0);
        assert_eq!(g.min_value(), 3.0);
    }

    #[test]
    fn finite_check() {
        let mut g = Grid2::<f32>::zeros(2, 2);
        assert!(g.all_finite());
        g.set(0, 1, f32::INFINITY);
        assert!(!g.all_finite());
    }

    #[test]
    #[should_panic(expected = "even extents")]
    fn restrict_rejects_odd() {
        let _ = Grid2::<f64>::zeros(3, 4).restrict_half();
    }
}
