//! Scalar element trait implemented by `f32` and `f64`.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar usable as a tensor element.
///
/// Implemented for `f32` (neural-network side) and `f64` (CFD side). The
/// trait pins down exactly the arithmetic surface the kernels need so that
/// every op in this workspace is generic over precision.
pub trait Element:
    Copy
    + Clone
    + Debug
    + Default
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (used for constants and test tolerances).
    fn from_f64(x: f64) -> Self;
    /// Lossless widening to `f64` (used for reductions and reporting).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// `self^p` for real `p`.
    fn powf(self, p: Self) -> Self;
    /// Larger of two values (NaN-propagating like `f64::max` is not; we use
    /// the IEEE `max` which ignores NaN on one side).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// True if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
}

macro_rules! impl_element {
    ($t:ty) => {
        impl Element for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn powf(self, p: Self) -> Self {
                <$t>::powf(self, p)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_element!(f32);
impl_element!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Element>(x: f64) -> f64 {
        T::from_f64(x).to_f64()
    }

    #[test]
    fn constants_are_identities() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0f32);
        assert_eq!(f64::ZERO + f64::ONE, 1.0f64);
    }

    #[test]
    fn f64_roundtrip_exact() {
        for &x in &[0.0, 1.0, -3.25, 1e-9, 6.02e23] {
            assert_eq!(roundtrip::<f64>(x), x);
        }
    }

    #[test]
    fn f32_roundtrip_within_eps() {
        for &x in &[0.0, 1.0, -3.25, 0.1] {
            assert!((roundtrip::<f32>(x) - x).abs() < 1e-7);
        }
    }

    #[test]
    fn finite_detection() {
        assert!(1.0f32.is_finite());
        assert!(!(f32::NAN).is_finite());
        assert!(!Element::is_finite(f64::INFINITY));
    }

    #[test]
    fn max_min_behave() {
        assert_eq!(Element::max(2.0f64, 3.0), 3.0);
        assert_eq!(Element::min(2.0f64, 3.0), 2.0);
    }
}
