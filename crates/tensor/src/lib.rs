//! # adarnet-tensor
//!
//! Tensor substrate for the ADARNet reproduction.
//!
//! This crate provides the dense array types that the rest of the workspace
//! builds on:
//!
//! * [`Tensor`] — a dynamically-shaped, row-major dense tensor used by the
//!   neural-network stack ([NCHW] layout for 4-D activations).
//! * [`Grid2`] — a 2-D scalar field with `(i, j)` = `(row, col)` indexing,
//!   used by the CFD and AMR substrates.
//!
//! Kernels that touch every element (`map`, `zip`, reductions) switch to
//! [rayon]-parallel execution above a size threshold, so small patches stay
//! on the fast sequential path while full-field operations use all cores.
//!
//! [NCHW]: https://docs.nvidia.com/deeplearning/performance/dl-performance-convolutional/index.html#tensor-layout

pub mod element;
pub mod grid;
pub mod ops;
pub mod patch;
pub mod shape;
pub mod tensor;
pub mod workspace;

pub use element::Element;
pub use grid::Grid2;
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::AlignedBuf;

/// Element count above which elementwise kernels switch to rayon-parallel
/// execution. Chosen so a 16x16 patch (256 elements) stays sequential while
/// a full 64x256 field (16k+ elements) parallelizes.
pub const PAR_THRESHOLD: usize = 8192;
