//! The dense row-major tensor type.

use crate::{workspace, Element, Shape};
use serde::{Deserialize, Serialize};

/// A dense, row-major, dynamically-shaped tensor.
///
/// Layout is contiguous; 4-D tensors follow NCHW (batch, channel, row,
/// column). Cloning is a deep copy. All construction validates that the
/// data length matches the shape.
///
/// ```
/// use adarnet_tensor::{Shape, Tensor};
///
/// let lr = Tensor::<f32>::zeros(Shape::d3(4, 64, 256)); // U, V, p, nuTilda
/// let patches = lr.split_patches(16, 16);
/// assert_eq!(patches.len(), 64); // the paper's patch count
/// ```
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Tensor<T: Element> {
    shape: Shape,
    data: Vec<T>,
}

/// `Clone` is implemented by hand (not derived) so every deep copy of a
/// tensor's backing buffer reports through the data-plane allocation
/// counter in [`crate::workspace`]. Zero-alloc tests rely on this: a
/// stray `.clone()` on the inference hot path shows up as a counter
/// bump, not a silent slowdown.
impl<T: Element> Clone for Tensor<T> {
    fn clone(&self) -> Self {
        if !self.data.is_empty() {
            workspace::note_data_alloc();
        }
        Tensor {
            shape: self.shape.clone(),
            data: self.data.clone(),
        }
    }
}

impl<T: Element> Tensor<T> {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        if n > 0 {
            workspace::note_data_alloc();
        }
        Tensor {
            shape,
            data: vec![T::ZERO; n],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: T) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        if n > 0 {
            workspace::note_data_alloc();
        }
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Wrap an existing buffer. Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<T>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// Build a rank-2 tensor from a closure over `(row, col)`.
    pub fn from_fn_2d(h: usize, w: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        workspace::note_data_alloc();
        let mut data = Vec::with_capacity(h * w);
        for y in 0..h {
            for x in 0..w {
                data.push(f(y, x));
            }
        }
        Tensor::from_vec(Shape::d2(h, w), data)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Extent along axis `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at a multi-index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> T {
        self.data[self.shape.offset(idx)]
    }

    /// Set the element at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.shape.offset(idx);
        self.data[off] = v;
    }

    /// Rank-2 accessor `(row, col)`.
    #[inline]
    pub fn get2(&self, y: usize, x: usize) -> T {
        debug_assert_eq!(self.shape.rank(), 2);
        self.data[y * self.shape.dim(1) + x]
    }

    /// Rank-2 setter `(row, col)`.
    #[inline]
    pub fn set2(&mut self, y: usize, x: usize, v: T) {
        debug_assert_eq!(self.shape.rank(), 2);
        let w = self.shape.dim(1);
        self.data[y * w + x] = v;
    }

    /// Rank-3 accessor `(channel, row, col)`.
    #[inline]
    pub fn get3(&self, c: usize, y: usize, x: usize) -> T {
        debug_assert_eq!(self.shape.rank(), 3);
        let (h, w) = (self.shape.dim(1), self.shape.dim(2));
        self.data[(c * h + y) * w + x]
    }

    /// Rank-3 setter `(channel, row, col)`.
    #[inline]
    pub fn set3(&mut self, c: usize, y: usize, x: usize, v: T) {
        debug_assert_eq!(self.shape.rank(), 3);
        let (h, w) = (self.shape.dim(1), self.shape.dim(2));
        self.data[(c * h + y) * w + x] = v;
    }

    /// Rank-4 accessor `(batch, channel, row, col)`.
    #[inline]
    pub fn get4(&self, n: usize, c: usize, y: usize, x: usize) -> T {
        debug_assert_eq!(self.shape.rank(), 4);
        let (ch, h, w) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        self.data[((n * ch + c) * h + y) * w + x]
    }

    /// Rank-4 setter `(batch, channel, row, col)`.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, y: usize, x: usize, v: T) {
        debug_assert_eq!(self.shape.rank(), 4);
        let (ch, h, w) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        self.data[((n * ch + c) * h + y) * w + x] = v;
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "reshape to {:?} changes element count",
            shape
        );
        self.shape = shape;
        self
    }

    /// Borrow one image (channel plane set) of a rank-4 tensor as a rank-3
    /// tensor copy.
    pub fn image(&self, n: usize) -> Tensor<T> {
        assert_eq!(self.shape.rank(), 4);
        let (ch, h, w) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        let plane = ch * h * w;
        workspace::note_data_alloc();
        Tensor::from_vec(
            Shape::d3(ch, h, w),
            self.data[n * plane..(n + 1) * plane].to_vec(),
        )
    }

    /// Borrow one channel plane of a rank-3 tensor as a rank-2 tensor copy.
    pub fn channel(&self, c: usize) -> Tensor<T> {
        assert_eq!(self.shape.rank(), 3);
        let (h, w) = (self.shape.dim(1), self.shape.dim(2));
        let plane = h * w;
        workspace::note_data_alloc();
        Tensor::from_vec(
            Shape::d2(h, w),
            self.data[c * plane..(c + 1) * plane].to_vec(),
        )
    }

    /// Stack rank-3 tensors of identical shape into a rank-4 batch.
    pub fn stack(images: &[Tensor<T>]) -> Tensor<T> {
        assert!(!images.is_empty(), "cannot stack an empty list");
        let s0 = images[0].shape().clone();
        assert_eq!(s0.rank(), 3, "stack expects rank-3 inputs");
        workspace::note_data_alloc();
        let mut data = Vec::with_capacity(images.len() * s0.numel());
        for im in images {
            assert!(im.shape().same(&s0), "stack shape mismatch");
            data.extend_from_slice(im.as_slice());
        }
        Tensor::from_vec(
            Shape::d4(images.len(), s0.dim(0), s0.dim(1), s0.dim(2)),
            data,
        )
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Workspace-pooled construction for the `f32` hot path.
///
/// These are the allocation-free counterparts of [`Tensor::zeros`],
/// [`Tensor::stack`], [`Tensor::image`] and `clone`: the backing buffer
/// comes from the process-wide size-classed pool in
/// [`crate::workspace`] and goes back via [`Tensor::recycle`]. After a
/// short warmup the pool is populated and steady-state use performs no
/// heap allocation (asserted by the zero-alloc tests in
/// `adarnet-core`).
impl Tensor<f32> {
    /// A pooled tensor of zeros.
    pub fn pooled_zeroed(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = workspace::take_zeroed(shape.numel());
        Tensor { shape, data }
    }

    /// A pooled tensor with *unspecified* contents (stale pool data on
    /// a hit). Use only when every element will be overwritten.
    pub fn pooled_scratch(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = workspace::take_scratch(shape.numel());
        Tensor { shape, data }
    }

    /// A pooled deep copy (the zero-alloc `clone`).
    pub fn pooled_copy(&self) -> Self {
        let mut data = workspace::take_scratch(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Pooled [`Tensor::stack`]: rank-3 tensors of identical shape into
    /// a rank-4 batch, buffer drawn from the workspace.
    pub fn pooled_stack(images: &[Tensor<f32>]) -> Tensor<f32> {
        assert!(!images.is_empty(), "cannot stack an empty list");
        let s0 = images[0].shape().clone();
        assert_eq!(s0.rank(), 3, "stack expects rank-3 inputs");
        let plane = s0.numel();
        let mut data = workspace::take_scratch(images.len() * plane);
        for (im, dst) in images.iter().zip(data.chunks_exact_mut(plane)) {
            assert!(im.shape().same(&s0), "stack shape mismatch");
            dst.copy_from_slice(im.as_slice());
        }
        Tensor {
            shape: Shape::d4(images.len(), s0.dim(0), s0.dim(1), s0.dim(2)),
            data,
        }
    }

    /// Pooled [`Tensor::image`]: copy batch item `n` of a rank-4 tensor
    /// into a pooled rank-3 tensor.
    pub fn pooled_image(&self, n: usize) -> Tensor<f32> {
        assert_eq!(self.shape.rank(), 4);
        let (ch, h, w) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        let plane = ch * h * w;
        let mut data = workspace::take_scratch(plane);
        data.copy_from_slice(&self.data[n * plane..(n + 1) * plane]);
        Tensor {
            shape: Shape::d3(ch, h, w),
            data,
        }
    }

    /// Return this tensor's backing buffer to the workspace pool.
    ///
    /// Safe to call on any `f32` tensor, pooled or not — recycling a
    /// conventionally-allocated tensor simply donates its buffer.
    pub fn recycle(self) {
        workspace::put(self.data);
    }
}

impl<T: Element> std::fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}(n={})", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let t = Tensor::<f32>::zeros(Shape::d2(3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        let u = Tensor::<f64>::full(Shape::d1(5), 2.5);
        assert!(u.as_slice().iter().all(|&v| v == 2.5));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_checked() {
        let _ = Tensor::<f32>::from_vec(Shape::d2(2, 2), vec![1.0; 3]);
    }

    #[test]
    fn indexing_roundtrip_rank4() {
        let mut t = Tensor::<f32>::zeros(Shape::d4(2, 3, 4, 5));
        t.set4(1, 2, 3, 4, 7.0);
        assert_eq!(t.get4(1, 2, 3, 4), 7.0);
        assert_eq!(t.at(&[1, 2, 3, 4]), 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.clone().reshape(Shape::d1(6));
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        let _ = Tensor::<f32>::zeros(Shape::d2(2, 3)).reshape(Shape::d1(5));
    }

    #[test]
    fn stack_and_image_roundtrip() {
        let a = Tensor::from_fn_2d(2, 2, |y, x| (y * 2 + x) as f32).reshape(Shape::d3(1, 2, 2));
        let b =
            Tensor::from_fn_2d(2, 2, |y, x| (10 + y * 2 + x) as f32).reshape(Shape::d3(1, 2, 2));
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), &Shape::d4(2, 1, 2, 2));
        assert_eq!(s.image(0), a);
        assert_eq!(s.image(1), b);
    }

    #[test]
    fn channel_extraction() {
        let mut t = Tensor::<f64>::zeros(Shape::d3(2, 2, 2));
        t.set3(1, 0, 1, 9.0);
        let c1 = t.channel(1);
        assert_eq!(c1.get2(0, 1), 9.0);
        assert_eq!(c1.shape(), &Shape::d2(2, 2));
    }

    #[test]
    fn pooled_constructors_roundtrip() {
        let _g = crate::workspace::TEST_POOL_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let z = Tensor::<f32>::pooled_zeroed(Shape::d2(4, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let c = z.pooled_copy();
        assert_eq!(c, z);
        z.recycle();
        c.recycle();
        // A fresh pooled tensor of the same class reuses the buffer and
        // must not read back stale data when zeroed.
        let mut s = Tensor::<f32>::pooled_scratch(Shape::d2(4, 4));
        s.as_mut_slice().fill(7.0);
        s.recycle();
        let z2 = Tensor::<f32>::pooled_zeroed(Shape::d2(4, 4));
        assert!(z2.as_slice().iter().all(|&v| v == 0.0));
        z2.recycle();
    }

    #[test]
    fn pooled_stack_and_image_match_plain() {
        let _g = crate::workspace::TEST_POOL_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let a = Tensor::from_fn_2d(2, 3, |y, x| (y * 3 + x) as f32).reshape(Shape::d3(1, 2, 3));
        let b = Tensor::from_fn_2d(2, 3, |y, x| -((y * 3 + x) as f32)).reshape(Shape::d3(1, 2, 3));
        let plain = Tensor::stack(&[a.clone(), b.clone()]);
        let pooled = Tensor::pooled_stack(&[a, b]);
        assert_eq!(plain, pooled);
        assert_eq!(plain.image(1), pooled.pooled_image(1));
        pooled.recycle();
    }

    #[test]
    fn clone_reports_data_alloc() {
        let t = Tensor::<f32>::zeros(Shape::d2(8, 8));
        let before = crate::workspace::data_allocs();
        let u = t.clone();
        assert!(
            crate::workspace::data_allocs() > before,
            "deep clone must bump the data-plane counter"
        );
        assert_eq!(u, t);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::<f32>::zeros(Shape::d1(4));
        assert!(t.all_finite());
        t.as_mut_slice()[2] = f32::NAN;
        assert!(!t.all_finite());
    }
}
