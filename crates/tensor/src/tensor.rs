//! The dense row-major tensor type.

use crate::{Element, Shape};
use serde::{Deserialize, Serialize};

/// A dense, row-major, dynamically-shaped tensor.
///
/// Layout is contiguous; 4-D tensors follow NCHW (batch, channel, row,
/// column). Cloning is a deep copy. All construction validates that the
/// data length matches the shape.
///
/// ```
/// use adarnet_tensor::{Shape, Tensor};
///
/// let lr = Tensor::<f32>::zeros(Shape::d3(4, 64, 256)); // U, V, p, nuTilda
/// let patches = lr.split_patches(16, 16);
/// assert_eq!(patches.len(), 64); // the paper's patch count
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T: Element> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Element> Tensor<T> {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![T::ZERO; n],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: T) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Wrap an existing buffer. Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<T>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// Build a rank-2 tensor from a closure over `(row, col)`.
    pub fn from_fn_2d(h: usize, w: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(h * w);
        for y in 0..h {
            for x in 0..w {
                data.push(f(y, x));
            }
        }
        Tensor::from_vec(Shape::d2(h, w), data)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Extent along axis `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at a multi-index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> T {
        self.data[self.shape.offset(idx)]
    }

    /// Set the element at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.shape.offset(idx);
        self.data[off] = v;
    }

    /// Rank-2 accessor `(row, col)`.
    #[inline]
    pub fn get2(&self, y: usize, x: usize) -> T {
        debug_assert_eq!(self.shape.rank(), 2);
        self.data[y * self.shape.dim(1) + x]
    }

    /// Rank-2 setter `(row, col)`.
    #[inline]
    pub fn set2(&mut self, y: usize, x: usize, v: T) {
        debug_assert_eq!(self.shape.rank(), 2);
        let w = self.shape.dim(1);
        self.data[y * w + x] = v;
    }

    /// Rank-3 accessor `(channel, row, col)`.
    #[inline]
    pub fn get3(&self, c: usize, y: usize, x: usize) -> T {
        debug_assert_eq!(self.shape.rank(), 3);
        let (h, w) = (self.shape.dim(1), self.shape.dim(2));
        self.data[(c * h + y) * w + x]
    }

    /// Rank-3 setter `(channel, row, col)`.
    #[inline]
    pub fn set3(&mut self, c: usize, y: usize, x: usize, v: T) {
        debug_assert_eq!(self.shape.rank(), 3);
        let (h, w) = (self.shape.dim(1), self.shape.dim(2));
        self.data[(c * h + y) * w + x] = v;
    }

    /// Rank-4 accessor `(batch, channel, row, col)`.
    #[inline]
    pub fn get4(&self, n: usize, c: usize, y: usize, x: usize) -> T {
        debug_assert_eq!(self.shape.rank(), 4);
        let (ch, h, w) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        self.data[((n * ch + c) * h + y) * w + x]
    }

    /// Rank-4 setter `(batch, channel, row, col)`.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, y: usize, x: usize, v: T) {
        debug_assert_eq!(self.shape.rank(), 4);
        let (ch, h, w) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        self.data[((n * ch + c) * h + y) * w + x] = v;
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "reshape to {:?} changes element count",
            shape
        );
        self.shape = shape;
        self
    }

    /// Borrow one image (channel plane set) of a rank-4 tensor as a rank-3
    /// tensor copy.
    pub fn image(&self, n: usize) -> Tensor<T> {
        assert_eq!(self.shape.rank(), 4);
        let (ch, h, w) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        let plane = ch * h * w;
        Tensor::from_vec(
            Shape::d3(ch, h, w),
            self.data[n * plane..(n + 1) * plane].to_vec(),
        )
    }

    /// Borrow one channel plane of a rank-3 tensor as a rank-2 tensor copy.
    pub fn channel(&self, c: usize) -> Tensor<T> {
        assert_eq!(self.shape.rank(), 3);
        let (h, w) = (self.shape.dim(1), self.shape.dim(2));
        let plane = h * w;
        Tensor::from_vec(
            Shape::d2(h, w),
            self.data[c * plane..(c + 1) * plane].to_vec(),
        )
    }

    /// Stack rank-3 tensors of identical shape into a rank-4 batch.
    pub fn stack(images: &[Tensor<T>]) -> Tensor<T> {
        assert!(!images.is_empty(), "cannot stack an empty list");
        let s0 = images[0].shape().clone();
        assert_eq!(s0.rank(), 3, "stack expects rank-3 inputs");
        let mut data = Vec::with_capacity(images.len() * s0.numel());
        for im in images {
            assert!(im.shape().same(&s0), "stack shape mismatch");
            data.extend_from_slice(im.as_slice());
        }
        Tensor::from_vec(
            Shape::d4(images.len(), s0.dim(0), s0.dim(1), s0.dim(2)),
            data,
        )
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl<T: Element> std::fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}(n={})", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let t = Tensor::<f32>::zeros(Shape::d2(3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        let u = Tensor::<f64>::full(Shape::d1(5), 2.5);
        assert!(u.as_slice().iter().all(|&v| v == 2.5));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_checked() {
        let _ = Tensor::<f32>::from_vec(Shape::d2(2, 2), vec![1.0; 3]);
    }

    #[test]
    fn indexing_roundtrip_rank4() {
        let mut t = Tensor::<f32>::zeros(Shape::d4(2, 3, 4, 5));
        t.set4(1, 2, 3, 4, 7.0);
        assert_eq!(t.get4(1, 2, 3, 4), 7.0);
        assert_eq!(t.at(&[1, 2, 3, 4]), 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.clone().reshape(Shape::d1(6));
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        let _ = Tensor::<f32>::zeros(Shape::d2(2, 3)).reshape(Shape::d1(5));
    }

    #[test]
    fn stack_and_image_roundtrip() {
        let a = Tensor::from_fn_2d(2, 2, |y, x| (y * 2 + x) as f32).reshape(Shape::d3(1, 2, 2));
        let b =
            Tensor::from_fn_2d(2, 2, |y, x| (10 + y * 2 + x) as f32).reshape(Shape::d3(1, 2, 2));
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), &Shape::d4(2, 1, 2, 2));
        assert_eq!(s.image(0), a);
        assert_eq!(s.image(1), b);
    }

    #[test]
    fn channel_extraction() {
        let mut t = Tensor::<f64>::zeros(Shape::d3(2, 2, 2));
        t.set3(1, 0, 1, 9.0);
        let c1 = t.channel(1);
        assert_eq!(c1.get2(0, 1), 9.0);
        assert_eq!(c1.shape(), &Shape::d2(2, 2));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::<f32>::zeros(Shape::d1(4));
        assert!(t.all_finite());
        t.as_mut_slice()[2] = f32::NAN;
        assert!(!t.all_finite());
    }
}
