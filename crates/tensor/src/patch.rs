//! Patch extraction and insertion.
//!
//! ADARNet divides the LR flow field into fixed-size patches (16x16 in the
//! paper). These helpers cut rectangular windows out of rank-3 `(C, H, W)`
//! tensors and write them back, which is the mechanical core of the
//! scorer->ranker->decoder pipeline.

use crate::{Element, Shape, Tensor};

impl<T: Element> Tensor<T> {
    /// Copy the window `rows [y0, y0+ph) x cols [x0, x0+pw)` out of every
    /// channel of a rank-3 `(C, H, W)` tensor.
    ///
    /// Panics if the window exceeds the tensor bounds.
    pub fn extract_patch(&self, y0: usize, x0: usize, ph: usize, pw: usize) -> Tensor<T> {
        assert_eq!(
            self.shape().rank(),
            3,
            "extract_patch expects rank-3 (C,H,W)"
        );
        let (c, h, w) = (self.dim(0), self.dim(1), self.dim(2));
        assert!(
            y0 + ph <= h && x0 + pw <= w,
            "patch window ({y0}..{}, {x0}..{}) exceeds field {h}x{w}",
            y0 + ph,
            x0 + pw
        );
        let mut out = Tensor::zeros(Shape::d3(c, ph, pw));
        for ci in 0..c {
            for y in 0..ph {
                let src_base = (ci * h + (y0 + y)) * w + x0;
                let dst_base = (ci * ph + y) * pw;
                out.as_mut_slice()[dst_base..dst_base + pw]
                    .copy_from_slice(&self.as_slice()[src_base..src_base + pw]);
            }
        }
        out
    }
}

impl Tensor<f32> {
    /// [`Tensor::extract_patch`] with the output buffer drawn from the
    /// workspace pool — the hot-path variant used per patch per inference.
    /// Recycle the result when done to keep the loop allocation-free.
    pub fn pooled_extract_patch(&self, y0: usize, x0: usize, ph: usize, pw: usize) -> Tensor<f32> {
        assert_eq!(
            self.shape().rank(),
            3,
            "extract_patch expects rank-3 (C,H,W)"
        );
        let (c, h, w) = (self.dim(0), self.dim(1), self.dim(2));
        assert!(
            y0 + ph <= h && x0 + pw <= w,
            "patch window ({y0}..{}, {x0}..{}) exceeds field {h}x{w}",
            y0 + ph,
            x0 + pw
        );
        let mut out = Tensor::<f32>::pooled_scratch(Shape::d3(c, ph, pw));
        for ci in 0..c {
            for y in 0..ph {
                let src_base = (ci * h + (y0 + y)) * w + x0;
                let dst_base = (ci * ph + y) * pw;
                out.as_mut_slice()[dst_base..dst_base + pw]
                    .copy_from_slice(&self.as_slice()[src_base..src_base + pw]);
            }
        }
        out
    }
}

impl<T: Element> Tensor<T> {
    /// Write `patch` (rank-3 `(C, ph, pw)`) into this rank-3 tensor at
    /// window origin `(y0, x0)`. Channel counts must match.
    pub fn insert_patch(&mut self, y0: usize, x0: usize, patch: &Tensor<T>) {
        assert_eq!(
            self.shape().rank(),
            3,
            "insert_patch expects rank-3 (C,H,W)"
        );
        assert_eq!(patch.shape().rank(), 3, "patch must be rank-3");
        let (c, h, w) = (self.dim(0), self.dim(1), self.dim(2));
        let (pc, ph, pw) = (patch.dim(0), patch.dim(1), patch.dim(2));
        assert_eq!(c, pc, "channel count mismatch: field {c}, patch {pc}");
        assert!(
            y0 + ph <= h && x0 + pw <= w,
            "patch window ({y0}..{}, {x0}..{}) exceeds field {h}x{w}",
            y0 + ph,
            x0 + pw
        );
        for ci in 0..c {
            for y in 0..ph {
                let dst_base = (ci * h + (y0 + y)) * w + x0;
                let src_base = (ci * ph + y) * pw;
                self.as_mut_slice()[dst_base..dst_base + pw]
                    .copy_from_slice(&patch.as_slice()[src_base..src_base + pw]);
            }
        }
    }

    /// Split a rank-3 `(C, H, W)` tensor into a row-major grid of
    /// `(H/ph) x (W/pw)` patches. Panics unless `ph | H` and `pw | W`.
    pub fn split_patches(&self, ph: usize, pw: usize) -> Vec<Tensor<T>> {
        assert_eq!(
            self.shape().rank(),
            3,
            "split_patches expects rank-3 (C,H,W)"
        );
        let (h, w) = (self.dim(1), self.dim(2));
        assert!(
            h % ph == 0 && w % pw == 0,
            "patch size {ph}x{pw} does not tile field {h}x{w}"
        );
        let (npy, npx) = (h / ph, w / pw);
        let mut out = Vec::with_capacity(npy * npx);
        for py in 0..npy {
            for px in 0..npx {
                out.push(self.extract_patch(py * ph, px * pw, ph, pw));
            }
        }
        out
    }

    /// Concatenate rank-3 `(C_i, H, W)` tensors along the channel axis.
    /// Spatial extents must match.
    pub fn concat_channels(parts: &[&Tensor<T>]) -> Tensor<T> {
        assert!(!parts.is_empty(), "cannot concat zero tensors");
        let (h, w) = (parts[0].dim(1), parts[0].dim(2));
        let mut total_c = 0;
        for p in parts {
            assert_eq!(p.shape().rank(), 3, "concat_channels expects rank-3 parts");
            assert_eq!((p.dim(1), p.dim(2)), (h, w), "spatial extent mismatch");
            total_c += p.dim(0);
        }
        let mut data = Vec::with_capacity(total_c * h * w);
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(Shape::d3(total_c, h, w), data)
    }

    /// Split a rank-3 tensor along the channel axis at `at`:
    /// `(C, H, W) -> ((at, H, W), (C - at, H, W))`.
    pub fn split_channels(&self, at: usize) -> (Tensor<T>, Tensor<T>) {
        assert_eq!(self.shape().rank(), 3, "split_channels expects rank-3");
        let (c, h, w) = (self.dim(0), self.dim(1), self.dim(2));
        assert!(at <= c, "split point {at} exceeds channel count {c}");
        let plane = h * w;
        let first = Tensor::from_vec(Shape::d3(at, h, w), self.as_slice()[..at * plane].to_vec());
        let second = Tensor::from_vec(
            Shape::d3(c - at, h, w),
            self.as_slice()[at * plane..].to_vec(),
        );
        (first, second)
    }

    /// Inverse of [`Tensor::split_patches`]: assemble a row-major grid of
    /// equal-size patches back into a single field.
    pub fn assemble_patches(patches: &[Tensor<T>], npy: usize, npx: usize) -> Tensor<T> {
        assert_eq!(patches.len(), npy * npx, "patch count mismatch");
        assert!(!patches.is_empty(), "cannot assemble zero patches");
        let (c, ph, pw) = (patches[0].dim(0), patches[0].dim(1), patches[0].dim(2));
        let mut out = Tensor::zeros(Shape::d3(c, npy * ph, npx * pw));
        for py in 0..npy {
            for px in 0..npx {
                out.insert_patch(py * ph, px * pw, &patches[py * npx + px]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(c: usize, h: usize, w: usize) -> Tensor<f32> {
        let mut t = Tensor::zeros(Shape::d3(c, h, w));
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    t.set3(ci, y, x, (ci * 10000 + y * 100 + x) as f32);
                }
            }
        }
        t
    }

    #[test]
    fn extract_reads_correct_window() {
        let f = field(2, 8, 8);
        let p = f.extract_patch(2, 4, 3, 2);
        assert_eq!(p.shape(), &Shape::d3(2, 3, 2));
        assert_eq!(p.get3(0, 0, 0), f.get3(0, 2, 4));
        assert_eq!(p.get3(1, 2, 1), f.get3(1, 4, 5));
    }

    #[test]
    fn insert_is_inverse_of_extract() {
        let f = field(3, 8, 12);
        let mut g = Tensor::zeros(f.shape().clone());
        let p = f.extract_patch(4, 8, 4, 4);
        g.insert_patch(4, 8, &p);
        assert_eq!(g.extract_patch(4, 8, 4, 4), p);
    }

    #[test]
    fn split_assemble_roundtrip() {
        let f = field(4, 16, 32);
        let patches = f.split_patches(8, 8);
        assert_eq!(patches.len(), 2 * 4);
        let back = Tensor::assemble_patches(&patches, 2, 4);
        assert_eq!(back, f);
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn split_rejects_nondividing_patch() {
        let _ = field(1, 10, 10).split_patches(3, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds field")]
    fn extract_rejects_out_of_bounds() {
        let _ = field(1, 8, 8).extract_patch(6, 6, 4, 4);
    }

    #[test]
    fn concat_split_channels_roundtrip() {
        let a = field(2, 4, 4);
        let b = field(3, 4, 4);
        let cat = Tensor::concat_channels(&[&a, &b]);
        assert_eq!(cat.shape(), &Shape::d3(5, 4, 4));
        assert_eq!(cat.get3(1, 2, 3), a.get3(1, 2, 3));
        assert_eq!(cat.get3(2, 1, 0), b.get3(0, 1, 0));
        let (x, y) = cat.split_channels(2);
        assert_eq!(x, a);
        assert_eq!(y, b);
    }

    #[test]
    #[should_panic(expected = "spatial extent mismatch")]
    fn concat_rejects_mismatched_extents() {
        let a = field(1, 4, 4);
        let b = field(1, 4, 5);
        let _ = Tensor::concat_channels(&[&a, &b]);
    }

    #[test]
    fn paper_layout_64x256_gives_64_patches() {
        // LR resolution 64x256 with 16x16 patches => 4x16 = 64 patches (§4.2).
        let f = Tensor::<f32>::zeros(Shape::d3(4, 64, 256));
        let patches = f.split_patches(16, 16);
        assert_eq!(patches.len(), 64);
    }
}
