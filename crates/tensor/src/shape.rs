//! Shape bookkeeping for dynamically-ranked tensors.

use serde::{Deserialize, Serialize};

/// The extents of a tensor along each axis, row-major (last axis fastest).
///
/// Rank is dynamic but in practice the workspace uses rank 1 (vectors),
/// rank 2 (fields / matrices), rank 3 (CHW images), and rank 4 (NCHW
/// batches).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Shape of a rank-1 tensor.
    pub fn d1(n: usize) -> Self {
        Shape(vec![n])
    }
    /// Shape of a rank-2 tensor (rows, cols).
    pub fn d2(h: usize, w: usize) -> Self {
        Shape(vec![h, w])
    }
    /// Shape of a rank-3 tensor (channels, rows, cols).
    pub fn d3(c: usize, h: usize, w: usize) -> Self {
        Shape(vec![c, h, w])
    }
    /// Shape of a rank-4 tensor (batch, channels, rows, cols).
    pub fn d4(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape(vec![n, c, h, w])
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent along axis `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Flat row-major offset of a multi-index. Panics (debug) on rank or
    /// bounds mismatch.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.0.len(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for ax in (0..self.0.len()).rev() {
            debug_assert!(idx[ax] < self.0[ax], "index out of bounds on axis {ax}");
            off += idx[ax] * stride;
            stride *= self.0[ax];
        }
        off
    }

    /// True if both shapes have the same extents.
    pub fn same(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::d4(2, 4, 16, 16);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.numel(), 2 * 4 * 16 * 16);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::d4(2, 3, 4, 5);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::d3(3, 4, 5);
        let st = s.strides();
        for c in 0..3 {
            for y in 0..4 {
                for x in 0..5 {
                    assert_eq!(s.offset(&[c, y, x]), c * st[0] + y * st[1] + x * st[2]);
                }
            }
        }
    }

    #[test]
    fn empty_axis_numel_zero() {
        let s = Shape::d2(0, 7);
        assert_eq!(s.numel(), 0);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Shape::d3(4, 64, 256)), "[4x64x256]");
    }
}
