//! Thread-aware scratch workspace: size-classed reusable `f32` buffer
//! pools plus the allocation-observability hook the zero-alloc tests
//! assert against.
//!
//! The hot path of both training epochs and steady-state inference is
//! dominated by conv/deconv kernels that need short-lived buffers:
//! im2col panels, layer outputs, flipped weight copies. Allocating those
//! fresh on every call costs page faults and allocator contention under
//! rayon. This module keeps returned buffers on power-of-two "shelves"
//! so a steady-state workload recycles the same arenas forever.
//!
//! Design (DESIGN.md §10):
//!
//! * **Size classes.** Shelf `s` holds buffers whose capacity lies in
//!   `[2^s, 2^(s+1))`. [`take_scratch`]`(len)` pops from shelf
//!   `ceil(log2(len))`, which guarantees `capacity >= len`; a miss
//!   allocates `len.next_power_of_two()` so the buffer re-enters the
//!   same shelf on [`put`]. Capacity is therefore at most 2× the live
//!   requirement and never creeps.
//! * **Thread awareness.** Shelves are independent `Mutex<Vec<_>>`
//!   slots, so threads contending for *different* size classes never
//!   serialize, and the per-shelf critical section is a push/pop.
//!   Locks are poison-tolerant: a panicking test thread must not wedge
//!   the pool for the rest of the process.
//! * **Bounded retention.** Each shelf keeps at most
//!   [`MAX_PER_SHELF`] buffers; put beyond that drops the buffer, so
//!   a transient burst (e.g. a wide training batch) cannot pin its
//!   peak memory forever.
//! * **Observability.** Every *fresh* heap allocation of tensor data —
//!   a pool miss here, or any `Tensor` constructor/clone building a new
//!   backing `Vec` — bumps a process-wide counter readable via
//!   [`data_allocs`]. The workspace crate cannot install a counting
//!   `#[global_allocator]` (the workspace denies `unsafe_code`), so the
//!   counter instruments the data plane at the source instead: control
//!   structures (small index `Vec`s, rayon internals) are documented
//!   out of scope. Tests snapshot the counter, run a steady-state
//!   window, and assert it did not move.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of power-of-two size classes. Shelf 40 covers buffers up to
/// 2^41 elements (8 TiB of f32) — far beyond any tensor in this
/// workspace, so every request maps to a shelf.
const SHELVES: usize = 41;

/// Maximum buffers retained per shelf. 64 covers the deepest fan-out in
/// the decoder (6 layers × worker threads) with slack; beyond that,
/// buffers are dropped back to the allocator.
pub const MAX_PER_SHELF: usize = 64;

/// Process-wide count of fresh data-plane heap allocations: pool misses
/// plus instrumented `Tensor` buffer constructions.
static DATA_ALLOCS: AtomicU64 = AtomicU64::new(0);

static POOL: Pool = Pool::new();

struct Pool {
    shelves: [Mutex<Vec<Vec<f32>>>; SHELVES],
}

impl Pool {
    const fn new() -> Self {
        // `Mutex::new` is const, but array-repeat needs Copy; build
        // explicitly via a const block repeat.
        Pool {
            shelves: [const { Mutex::new(Vec::new()) }; SHELVES],
        }
    }
}

/// Shelf index a buffer of capacity `cap` belongs on: `floor(log2(cap))`.
#[inline]
fn shelf_of_capacity(cap: usize) -> usize {
    debug_assert!(cap > 0);
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

/// Shelf index guaranteed to satisfy a request of `len` elements:
/// `ceil(log2(len))`, i.e. the class of `len.next_power_of_two()`.
#[inline]
fn shelf_for_request(len: usize) -> usize {
    debug_assert!(len > 0);
    shelf_of_capacity(len.next_power_of_two())
}

/// Bump the fresh-allocation counter by one. Public so `Tensor`
/// constructors (and any other data-plane allocation site) can report
/// through the same channel the zero-alloc tests observe.
#[inline]
pub fn note_data_alloc() {
    DATA_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Total fresh data-plane allocations since process start. Monotonic;
/// compare two snapshots to count allocations in a window.
pub fn data_allocs() -> u64 {
    DATA_ALLOCS.load(Ordering::Relaxed)
}

/// Take a buffer of exactly `len` elements with *unspecified* contents
/// (stale data from a previous user on a pool hit). Use when every
/// element will be overwritten; otherwise use [`take_zeroed`].
pub fn take_scratch(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let shelf = shelf_for_request(len);
    let popped = {
        let mut guard = POOL.shelves[shelf]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        guard.pop()
    };
    match popped {
        Some(mut buf) => {
            adarnet_obs::counter!("tensor_pool_hits_total").inc();
            debug_assert!(buf.capacity() >= len);
            buf.resize(len, 0.0);
            buf
        }
        None => {
            note_data_alloc();
            adarnet_obs::counter!("tensor_pool_misses_total").inc();
            let mut buf = Vec::with_capacity(len.next_power_of_two());
            buf.resize(len, 0.0);
            buf
        }
    }
}

/// Take a buffer of exactly `len` zeroed elements.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut buf = take_scratch(len);
    buf.fill(0.0);
    buf
}

/// Return a buffer to the pool for reuse. Zero-capacity buffers and
/// overflow beyond the shelf cap are dropped.
pub fn put(buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap == 0 {
        return;
    }
    let shelf = shelf_of_capacity(cap);
    let mut guard = POOL.shelves[shelf]
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if guard.len() < MAX_PER_SHELF {
        guard.push(buf);
    }
}

/// Number of buffers currently pooled across all shelves, scalar and
/// aligned (diagnostic).
pub fn pooled_buffers() -> usize {
    let scalar: usize = POOL
        .shelves
        .iter()
        .map(|m| m.lock().unwrap_or_else(|p| p.into_inner()).len())
        .sum();
    let aligned: usize = ALIGNED_POOL
        .shelves
        .iter()
        .map(|m| m.lock().unwrap_or_else(|p| p.into_inner()).len())
        .sum();
    scalar + aligned
}

/// Drop every pooled buffer, scalar and aligned (test isolation helper).
pub fn clear() {
    for shelf in &POOL.shelves {
        shelf.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
    for shelf in &ALIGNED_POOL.shelves {
        shelf.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

/// Floats per alignment lane: 16 f32 = 64 bytes = one cache line / one
/// AVX-512 vector / two AVX2 vectors.
const LANE_FLOATS: usize = 16;

/// One 64-byte-aligned lane of 16 f32s. `repr(C)` pins the array as the
/// sole, offset-0 field so a `Vec<Lane>` is a contiguous, initialized
/// run of `len * 16` f32s starting on a cache-line boundary.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Lane([f32; LANE_FLOATS]);

const ZERO_LANE: Lane = Lane([0.0; LANE_FLOATS]);

/// A pool-managed `f32` buffer whose storage is 64-byte aligned, for
/// SIMD kernels whose vector loads must never split a cache line
/// (DESIGN.md §15). Dereferences to `[f32]` like the plain pooled
/// `Vec<f32>` buffers.
///
/// Why a dedicated type: over-aligning a `Vec<f32>` directly is
/// impossible without raw allocator calls (the deallocation `Layout`
/// must match), so alignment rides on the element type instead — the
/// buffer is a `Vec` of 64-byte [`Lane`]s viewed as floats, and the
/// `Vec` keeps normal ownership/drop semantics. Length is tracked in
/// floats and may leave the tail of the last lane unused.
pub struct AlignedBuf {
    lanes: Vec<Lane>,
    len: usize,
}

impl AlignedBuf {
    /// An empty buffer with no storage. Allocation-free; grow with
    /// [`AlignedBuf::resize`].
    pub const fn new() -> Self {
        AlignedBuf {
            lanes: Vec::new(),
            len: 0,
        }
    }

    /// Length in floats.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero floats.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in floats (whole lanes).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.lanes.capacity() * LANE_FLOATS
    }

    /// Resize to `len` floats. Newly exposed *lanes* are zeroed; floats
    /// uncovered within an already-live lane keep their previous
    /// (unspecified) contents — same contract as [`take_scratch`].
    pub fn resize(&mut self, len: usize) {
        self.lanes.resize(len.div_ceil(LANE_FLOATS), ZERO_LANE);
        self.len = len;
    }

    /// View the buffer as a float slice.
    #[inline]
    #[allow(unsafe_code)]
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `Lane` is `repr(C, align(64))` over `[f32; 16]`, so
        // `lanes` is a contiguous run of `lanes.len() * 16` initialized
        // f32s, and `self.len <= lanes.len() * 16` by construction
        // (`resize` is the only length mutator).
        unsafe { std::slice::from_raw_parts(self.lanes.as_ptr().cast::<f32>(), self.len) }
    }

    /// View the buffer as a mutable float slice.
    #[inline]
    #[allow(unsafe_code)]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as in `as_slice`; `&mut self` gives exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.lanes.as_mut_ptr().cast::<f32>(), self.len) }
    }
}

impl Default for AlignedBuf {
    fn default() -> Self {
        AlignedBuf::new()
    }
}

impl Deref for AlignedBuf {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl DerefMut for AlignedBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

static ALIGNED_POOL: AlignedPool = AlignedPool::new();

struct AlignedPool {
    shelves: [Mutex<Vec<AlignedBuf>>; SHELVES],
}

impl AlignedPool {
    const fn new() -> Self {
        AlignedPool {
            shelves: [const { Mutex::new(Vec::new()) }; SHELVES],
        }
    }
}

/// Take a 64-byte-aligned buffer of exactly `len` floats with
/// *unspecified* contents, from the aligned shelf pool. Same
/// size-class, retention, and observability rules as [`take_scratch`];
/// return with [`put_aligned`].
pub fn take_aligned(len: usize) -> AlignedBuf {
    if len == 0 {
        return AlignedBuf {
            lanes: Vec::new(),
            len: 0,
        };
    }
    let lanes = len.div_ceil(LANE_FLOATS);
    let shelf = shelf_for_request(lanes);
    let popped = {
        let mut guard = ALIGNED_POOL.shelves[shelf]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        guard.pop()
    };
    match popped {
        Some(mut buf) => {
            adarnet_obs::counter!("tensor_pool_hits_total").inc();
            debug_assert!(buf.lanes.capacity() >= lanes);
            buf.resize(len);
            buf
        }
        None => {
            note_data_alloc();
            adarnet_obs::counter!("tensor_pool_misses_total").inc();
            let mut fresh = Vec::with_capacity(lanes.next_power_of_two());
            fresh.resize(lanes, ZERO_LANE);
            AlignedBuf { lanes: fresh, len }
        }
    }
}

/// Return an aligned buffer to the pool for reuse. Zero-capacity
/// buffers and overflow beyond the shelf cap are dropped.
pub fn put_aligned(buf: AlignedBuf) {
    let cap = buf.lanes.capacity();
    if cap == 0 {
        return;
    }
    let shelf = shelf_of_capacity(cap);
    let mut guard = ALIGNED_POOL.shelves[shelf]
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if guard.len() < MAX_PER_SHELF {
        guard.push(buf);
    }
}

/// Serializes tests that assert on global pool state (pool hits, exact
/// capacities, alloc-counter deltas) against each other. Cargo runs
/// same-binary tests in parallel; any test observing the shared pool
/// must hold this.
#[cfg(test)]
pub(crate) static TEST_POOL_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_POOL_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn shelf_indexing() {
        assert_eq!(shelf_of_capacity(1), 0);
        assert_eq!(shelf_of_capacity(2), 1);
        assert_eq!(shelf_of_capacity(3), 1);
        assert_eq!(shelf_of_capacity(4), 2);
        assert_eq!(shelf_for_request(1), 0);
        assert_eq!(shelf_for_request(3), 2);
        assert_eq!(shelf_for_request(4), 2);
        assert_eq!(shelf_for_request(5), 3);
    }

    #[test]
    fn take_put_roundtrip_reuses_capacity() {
        let _g = serial();
        clear();
        let buf = take_scratch(1000);
        assert_eq!(buf.len(), 1000);
        let cap = buf.capacity();
        assert!(cap >= 1000);
        put(buf);
        // Pool hit: 900 and 1000 both round up to the 1024 shelf. The
        // alloc counter is process-global (other tests bump it in
        // parallel), so assert reuse via the exact capacity instead.
        let again = take_scratch(900);
        assert_eq!(again.len(), 900);
        assert_eq!(again.capacity(), cap, "must reuse the pooled buffer");
        put(again);
    }

    #[test]
    fn miss_counts_as_alloc() {
        let _g = serial();
        clear();
        let before = data_allocs();
        let buf = take_scratch(77);
        assert!(data_allocs() > before);
        put(buf);
    }

    #[test]
    fn zeroed_clears_stale_contents() {
        let _g = serial();
        let mut buf = take_scratch(64);
        buf.fill(3.5);
        put(buf);
        let z = take_zeroed(64);
        assert!(z.iter().all(|&v| v == 0.0));
        put(z);
    }

    #[test]
    fn zero_len_request_is_free() {
        let buf = take_scratch(0);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 0, "zero-len take must not allocate");
    }

    #[test]
    fn aligned_take_is_64_byte_aligned() {
        let _g = serial();
        clear();
        // Fresh allocation (miss) and pooled reuse (hit) must both land
        // on a cache-line boundary, at every size class the kernels use.
        for len in [1usize, 16, 37, 256, 4096, 9 * 256] {
            let buf = take_aligned(len);
            assert_eq!(buf.len(), len);
            assert_eq!(
                buf.as_slice().as_ptr() as usize % 64,
                0,
                "fresh aligned buffer (len {len}) off alignment"
            );
            put_aligned(buf);
            let again = take_aligned(len);
            assert_eq!(
                again.as_slice().as_ptr() as usize % 64,
                0,
                "reused aligned buffer (len {len}) off alignment"
            );
            put_aligned(again);
        }
        clear();
    }

    #[test]
    fn aligned_roundtrip_reuses_capacity() {
        let _g = serial();
        clear();
        let buf = take_aligned(1000);
        let cap = buf.capacity();
        assert!(cap >= 1000);
        put_aligned(buf);
        // 900 and 1000 floats round to the same lane shelf.
        let again = take_aligned(900);
        assert_eq!(again.len(), 900);
        assert_eq!(again.capacity(), cap, "must reuse the pooled buffer");
        put_aligned(again);
        clear();
    }

    #[test]
    fn aligned_resize_tracks_len_and_zeroes_new_lanes() {
        let _g = serial();
        let mut buf = take_aligned(16);
        buf.as_mut_slice().fill(7.0);
        buf.resize(48);
        assert_eq!(buf.len(), 48);
        assert!(buf[..16].iter().all(|&v| v == 7.0));
        assert!(buf[16..].iter().all(|&v| v == 0.0), "new lanes must zero");
        put_aligned(buf);
    }

    #[test]
    fn aligned_zero_len_request_is_free() {
        let buf = take_aligned(0);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 0, "zero-len take must not allocate");
    }

    #[test]
    fn shelf_cap_bounds_retention() {
        let _g = serial();
        clear();
        for _ in 0..(MAX_PER_SHELF + 8) {
            put(Vec::with_capacity(256));
        }
        assert!(pooled_buffers() <= MAX_PER_SHELF);
        clear();
    }
}
