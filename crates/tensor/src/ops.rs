//! Elementwise operations and reductions over [`Tensor`].
//!
//! Kernels go rayon-parallel when the element count exceeds
//! [`crate::PAR_THRESHOLD`]; below that, sequential loops avoid the
//! fork-join overhead (per the Rust Performance Book guidance on not
//! parallelizing tiny workloads).

use crate::{Element, Tensor, PAR_THRESHOLD};
use rayon::prelude::*;

impl<T: Element> Tensor<T> {
    /// Apply `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(T) -> T + Sync + Send) -> Tensor<T> {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T + Sync + Send) {
        if self.len() >= PAR_THRESHOLD {
            self.as_mut_slice().par_iter_mut().for_each(|v| *v = f(*v));
        } else {
            self.as_mut_slice().iter_mut().for_each(|v| *v = f(*v));
        }
    }

    /// Combine two same-shape tensors elementwise.
    pub fn zip_with(&self, other: &Tensor<T>, f: impl Fn(T, T) -> T + Sync + Send) -> Tensor<T> {
        assert!(
            self.shape().same(other.shape()),
            "zip_with shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = self.clone();
        if self.len() >= PAR_THRESHOLD {
            out.as_mut_slice()
                .par_iter_mut()
                .zip(other.as_slice().par_iter())
                .for_each(|(a, &b)| *a = f(*a, b));
        } else {
            out.as_mut_slice()
                .iter_mut()
                .zip(other.as_slice().iter())
                .for_each(|(a, &b)| *a = f(*a, b));
        }
        out
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor<T>) -> Tensor<T> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor<T>) -> Tensor<T> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor<T>) -> Tensor<T> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: T) -> Tensor<T> {
        self.map(move |v| v * s)
    }

    /// `self += alpha * other`, in place (the BLAS `axpy` shape).
    pub fn axpy_inplace(&mut self, alpha: T, other: &Tensor<T>) {
        assert!(
            self.shape().same(other.shape()),
            "axpy shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        if self.len() >= PAR_THRESHOLD {
            self.as_mut_slice()
                .par_iter_mut()
                .zip(other.as_slice().par_iter())
                .for_each(|(a, &b)| *a += alpha * b);
        } else {
            self.as_mut_slice()
                .iter_mut()
                .zip(other.as_slice().iter())
                .for_each(|(a, &b)| *a += alpha * b);
        }
    }

    /// Sum of all elements, accumulated in `f64` for stability.
    pub fn sum(&self) -> f64 {
        if self.len() >= PAR_THRESHOLD {
            self.as_slice().par_iter().map(|v| v.to_f64()).sum()
        } else {
            self.as_slice().iter().map(|v| v.to_f64()).sum()
        }
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Largest element. Panics on empty tensors.
    pub fn max_value(&self) -> T {
        assert!(!self.is_empty(), "max of empty tensor");
        self.as_slice()
            .iter()
            .copied()
            .fold(self.as_slice()[0], |a, b| a.max(b))
    }

    /// Smallest element. Panics on empty tensors.
    pub fn min_value(&self) -> T {
        assert!(!self.is_empty(), "min of empty tensor");
        self.as_slice()
            .iter()
            .copied()
            .fold(self.as_slice()[0], |a, b| a.min(b))
    }

    /// Largest absolute value (0 for empty tensors).
    pub fn abs_max(&self) -> f64 {
        self.as_slice()
            .iter()
            .map(|v| v.to_f64().abs())
            .fold(0.0, f64::max)
    }

    /// Euclidean (L2) norm, accumulated in `f64`.
    pub fn l2_norm(&self) -> f64 {
        let ss: f64 = if self.len() >= PAR_THRESHOLD {
            self.as_slice()
                .par_iter()
                .map(|v| {
                    let x = v.to_f64();
                    x * x
                })
                .sum()
        } else {
            self.as_slice()
                .iter()
                .map(|v| {
                    let x = v.to_f64();
                    x * x
                })
                .sum()
        };
        ss.sqrt()
    }

    /// Mean squared error against a same-shape tensor.
    pub fn mse(&self, other: &Tensor<T>) -> f64 {
        assert!(
            self.shape().same(other.shape()),
            "mse shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        if self.is_empty() {
            return 0.0;
        }
        let ss: f64 = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| {
                let d = a.to_f64() - b.to_f64();
                d * d
            })
            .sum();
        ss / self.len() as f64
    }

    /// Dot product with a same-shape tensor, accumulated in `f64`.
    pub fn dot(&self, other: &Tensor<T>) -> f64 {
        assert!(
            self.shape().same(other.shape()),
            "dot shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a.to_f64() * b.to_f64())
            .sum()
    }

    /// Min-max normalize into `[0, 1]`. Constant tensors map to all zeros.
    ///
    /// The paper scales flow variables to `[0, 1]` during training "for
    /// learning stability purposes" (§5.1); this is that transform.
    pub fn minmax_normalized(&self) -> (Tensor<T>, T, T) {
        let lo = self.min_value();
        let hi = self.max_value();
        let span = hi - lo;
        if span == T::ZERO {
            return (Tensor::zeros(self.shape().clone()), lo, hi);
        }
        (self.map(move |v| (v - lo) / span), lo, hi)
    }

    /// Invert [`Tensor::minmax_normalized`] given the recorded bounds.
    pub fn minmax_denormalized(&self, lo: T, hi: T) -> Tensor<T> {
        let span = hi - lo;
        self.map(move |v| v * span + lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn t(v: Vec<f64>) -> Tensor<f64> {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v)
    }

    #[test]
    fn add_sub_mul_scale() {
        let a = t(vec![1.0, 2.0, 3.0]);
        let b = t(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = t(vec![1.0, 2.0]);
        a.axpy_inplace(0.5, &t(vec![4.0, 8.0]));
        assert_eq!(a.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = t(vec![3.0, -4.0, 0.0]);
        assert_eq!(a.sum(), -1.0);
        assert!((a.mean() + 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.max_value(), 3.0);
        assert_eq!(a.min_value(), -4.0);
        assert_eq!(a.abs_max(), 4.0);
        assert_eq!(a.l2_norm(), 5.0);
    }

    #[test]
    fn mse_and_dot() {
        let a = t(vec![1.0, 2.0]);
        let b = t(vec![3.0, 4.0]);
        assert_eq!(a.mse(&b), 4.0);
        assert_eq!(a.dot(&b), 11.0);
    }

    #[test]
    fn parallel_path_matches_sequential() {
        let n = PAR_THRESHOLD * 2;
        let big = Tensor::from_vec(Shape::d1(n), (0..n).map(|i| i as f64).collect());
        let seq_sum: f64 = (0..n).map(|i| i as f64).sum();
        assert_eq!(big.sum(), seq_sum);
        let doubled = big.scale(2.0);
        assert_eq!(doubled.as_slice()[n - 1], 2.0 * (n - 1) as f64);
    }

    #[test]
    fn minmax_roundtrip() {
        let a = t(vec![2.0, 4.0, 6.0]);
        let (norm, lo, hi) = a.minmax_normalized();
        assert_eq!(norm.as_slice(), &[0.0, 0.5, 1.0]);
        let back = norm.minmax_denormalized(lo, hi);
        assert_eq!(back.as_slice(), a.as_slice());
    }

    #[test]
    fn minmax_constant_is_zeros() {
        let a = t(vec![5.0, 5.0]);
        let (norm, lo, hi) = a.minmax_normalized();
        assert_eq!(norm.as_slice(), &[0.0, 0.0]);
        assert_eq!((lo, hi), (5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_rejects_mismatch() {
        let _ = t(vec![1.0]).add(&t(vec![1.0, 2.0]));
    }
}
