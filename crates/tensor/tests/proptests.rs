//! Property-based tests for the tensor substrate.

use adarnet_tensor::{Grid2, Shape, Tensor};
use proptest::prelude::*;

fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..max_len)
}

proptest! {
    #[test]
    fn add_commutes(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(Shape::d1(n), v.clone());
        let b = Tensor::from_vec(Shape::d1(n), v.iter().rev().copied().collect());
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn scale_is_linear(v in small_vec(64), s in -10.0f64..10.0) {
        let n = v.len();
        let a = Tensor::from_vec(Shape::d1(n), v);
        let lhs = a.scale(s).add(&a.scale(s));
        let rhs = a.scale(2.0 * s);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn mse_is_zero_iff_equal(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(Shape::d1(n), v);
        prop_assert_eq!(a.mse(&a), 0.0);
    }

    #[test]
    fn l2_norm_triangle_inequality(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(Shape::d1(n), v.clone());
        let b = Tensor::from_vec(Shape::d1(n), v.iter().map(|x| x * 0.5 - 1.0).collect());
        prop_assert!(a.add(&b).l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-9);
    }

    #[test]
    fn minmax_normalized_in_unit_interval(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(Shape::d1(n), v);
        let (norm, _, _) = a.minmax_normalized();
        for &x in norm.as_slice() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&x));
        }
    }

    #[test]
    fn patch_split_assemble_roundtrip(
        c in 1usize..4,
        npy in 1usize..4,
        npx in 1usize..4,
        ph in 1usize..6,
        pw in 1usize..6,
        seed in 0u64..1000,
    ) {
        let (h, w) = (npy * ph, npx * pw);
        let mut val = seed as f32;
        let mut t = Tensor::<f32>::zeros(Shape::d3(c, h, w));
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    val = (val * 1.3 + 0.7) % 97.0;
                    t.set3(ci, y, x, val);
                }
            }
        }
        let patches = t.split_patches(ph, pw);
        prop_assert_eq!(patches.len(), npy * npx);
        let back = Tensor::assemble_patches(&patches, npy, npx);
        prop_assert_eq!(back, t);
    }

    #[test]
    fn grid_restrict_preserves_mean(ny in 1usize..8, nx in 1usize..8, seed in 0u64..100) {
        let (ny, nx) = (ny * 2, nx * 2);
        let g = Grid2::from_fn(ny, nx, |i, j| ((i * 31 + j * 17 + seed as usize) % 13) as f64);
        let r = g.restrict_half();
        let mf = g.as_slice().iter().sum::<f64>() / g.len() as f64;
        let mc = r.as_slice().iter().sum::<f64>() / r.len() as f64;
        prop_assert!((mf - mc).abs() < 1e-10);
    }

    #[test]
    fn grid_bilinear_within_bounds(ny in 2usize..10, nx in 2usize..10, fi in -2.0f64..12.0, fj in -2.0f64..12.0) {
        let g = Grid2::from_fn(ny, nx, |i, j| (i + j) as f64);
        let v = g.sample_bilinear(fi, fj);
        prop_assert!(v >= g.min_value() - 1e-12 && v <= g.max_value() + 1e-12);
    }
}
