//! # adarnet-dataset
//!
//! Workload generators for the ADARNet reproduction: the paper's three
//! canonical flow families (turbulent channel, flat plate, ellipse family;
//! §4.1), the seven evaluation cases (§5), and train/validation assembly.
//!
//! Two generation paths:
//! * [`synthetic`] — closed-form approximations of the steady RANS
//!   solutions (fast; the default on a single CPU; see DESIGN.md §2).
//! * [`solver_gen`] — full-fidelity samples through the
//!   [`adarnet_cfd`] solver (the paper's actual path; slow).

pub mod cases;
pub mod generator;
pub mod io;
pub mod solver_gen;
pub mod synthetic;

pub use cases::{
    channel_training_res, ellipse_training_configs, flat_plate_training_res, Family, TestCase,
    ELLIPSE_ASPECTS,
};
pub use generator::{generate, train_val_split, DatasetConfig, Sample, SampleMeta};
pub use io::{load_samples, save_samples};
pub use solver_gen::solve_lr_sample;
pub use synthetic::{point_value, synthesize};
