//! The paper's case registry: training sweeps (§4.1) and the seven test
//! cases (§5).

use adarnet_cfd::CaseConfig;
use serde::{Deserialize, Serialize};

/// Which canonical flow family a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Turbulent channel flow (wall-bounded).
    Channel,
    /// Turbulent flat-plate boundary layer (wall-bounded).
    FlatPlate,
    /// Flow around an ellipse-family solid body (external aerodynamics).
    Ellipse,
}

/// One of the paper's seven evaluation cases (§5): interpolated and
/// extrapolated boundary conditions on trained geometries, plus three
/// unseen geometries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestCase {
    /// Channel flow at Re = 2.5e3 (interpolated).
    ChannelInt,
    /// Channel flow at Re = 1.5e4 (extrapolated).
    ChannelExt,
    /// Flat plate at Re = 2.5e5 (interpolated).
    FlatPlateInt,
    /// Flat plate at Re = 1.35e6 (extrapolated).
    FlatPlateExt,
    /// Cylinder at Re = 1e5 (unseen geometry).
    Cylinder,
    /// Symmetric NACA0012 airfoil at Re = 2.5e4 (unseen geometry).
    Naca0012,
    /// Non-symmetric NACA1412 airfoil at Re = 2.5e4 (unseen geometry).
    Naca1412,
}

impl TestCase {
    /// All seven cases, in the paper's reporting order (Table 1).
    pub const ALL: [TestCase; 7] = [
        TestCase::ChannelInt,
        TestCase::ChannelExt,
        TestCase::FlatPlateInt,
        TestCase::FlatPlateExt,
        TestCase::Cylinder,
        TestCase::Naca0012,
        TestCase::Naca1412,
    ];

    /// The flow configuration of this test case.
    pub fn config(self) -> CaseConfig {
        match self {
            TestCase::ChannelInt => CaseConfig::channel(2.5e3),
            TestCase::ChannelExt => CaseConfig::channel(1.5e4),
            TestCase::FlatPlateInt => CaseConfig::flat_plate(2.5e5),
            TestCase::FlatPlateExt => CaseConfig::flat_plate(1.35e6),
            TestCase::Cylinder => CaseConfig::cylinder(1e5),
            TestCase::Naca0012 => CaseConfig::naca0012(2.5e4),
            TestCase::Naca1412 => CaseConfig::naca1412(2.5e4),
        }
    }

    /// The short label the paper's tables use.
    pub fn label(self) -> &'static str {
        match self {
            TestCase::ChannelInt => "cf Re=2.5e3",
            TestCase::ChannelExt => "cf Re=15e3",
            TestCase::FlatPlateInt => "fp Re=2.5e5",
            TestCase::FlatPlateExt => "fp Re=1.35e6",
            TestCase::Cylinder => "cyl Re=1e5",
            TestCase::Naca0012 => "N0012 Re=2.5e4",
            TestCase::Naca1412 => "N1412 Re=2.5e4",
        }
    }

    /// Whether Figure 11 reports Cf (wall-bounded) or Cd (body) for this
    /// case.
    pub fn uses_drag(self) -> bool {
        matches!(
            self,
            TestCase::Cylinder | TestCase::Naca0012 | TestCase::Naca1412
        )
    }

    /// Family of the underlying geometry.
    pub fn family(self) -> Family {
        match self {
            TestCase::ChannelInt | TestCase::ChannelExt => Family::Channel,
            TestCase::FlatPlateInt | TestCase::FlatPlateExt => Family::FlatPlate,
            _ => Family::Ellipse,
        }
    }
}

/// Training-sweep Reynolds numbers for the channel family (§4.1): 300
/// samples in `[2e3, 2.3e3]`, 9700 in `[2.7e3, 1.35e4]`, scaled down by
/// `n_total`.
pub fn channel_training_res(n_total: usize) -> Vec<f64> {
    assert!(n_total >= 2, "need at least 2 samples");
    let n_low = ((n_total as f64 * 0.03).round() as usize).max(1);
    let n_high = n_total - n_low;
    let mut out = Vec::with_capacity(n_total);
    for k in 0..n_low {
        let t = k as f64 / (n_low.max(2) - 1).max(1) as f64;
        out.push(2e3 + t * (2.3e3 - 2e3));
    }
    for k in 0..n_high {
        let t = k as f64 / (n_high.max(2) - 1).max(1) as f64;
        out.push(2.7e3 + t * (1.35e4 - 2.7e3));
    }
    out
}

/// Training-sweep Reynolds numbers for the flat plate (§4.1): 20% in
/// `[1.35e5, 2e5]`, 80% in `[3e5, 1.1e6]`.
pub fn flat_plate_training_res(n_total: usize) -> Vec<f64> {
    assert!(n_total >= 2, "need at least 2 samples");
    let n_low = ((n_total as f64 * 0.2).round() as usize).max(1);
    let n_high = n_total - n_low;
    let mut out = Vec::with_capacity(n_total);
    for k in 0..n_low {
        let t = k as f64 / (n_low.max(2) - 1).max(1) as f64;
        out.push(1.35e5 + t * (2e5 - 1.35e5));
    }
    for k in 0..n_high {
        let t = k as f64 / (n_high.max(2) - 1).max(1) as f64;
        out.push(3e5 + t * (1.1e6 - 3e5));
    }
    out
}

/// The paper's ellipse aspect ratios (Figure 7).
pub const ELLIPSE_ASPECTS: [f64; 10] = [0.05, 0.07, 0.09, 0.1, 0.15, 0.2, 0.25, 0.35, 0.55, 0.75];

/// Ellipse-family training configurations (§4.1): every aspect ratio under
/// several angles of attack in `[-2, 6]` degrees across Re in `[5e4, 9e4]`,
/// truncated/cycled to `n_total` samples.
pub fn ellipse_training_configs(n_total: usize) -> Vec<(f64, f64, f64)> {
    let mut out = Vec::with_capacity(n_total);
    let mut k = 0usize;
    'outer: loop {
        for &aspect in &ELLIPSE_ASPECTS {
            for a_idx in 0..5 {
                let alpha = -2.0 + 8.0 * (a_idx as f64 + (k as f64 * 0.13).fract()) / 5.0;
                let re = 5e4 + 4e4 * ((k as f64 * 0.37).fract());
                out.push((aspect, alpha, re));
                k += 1;
                if out.len() >= n_total {
                    break 'outer;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_test_cases_match_paper() {
        assert_eq!(TestCase::ALL.len(), 7);
        let c = TestCase::ChannelExt.config();
        assert!((c.reynolds - 1.5e4).abs() < 1.0);
        assert_eq!(TestCase::Cylinder.label(), "cyl Re=1e5");
        assert!(TestCase::Cylinder.uses_drag());
        assert!(!TestCase::ChannelInt.uses_drag());
    }

    #[test]
    fn channel_res_within_paper_ranges_and_excludes_tests() {
        let res = channel_training_res(100);
        assert_eq!(res.len(), 100);
        for &re in &res {
            assert!((2e3..=1.35e4).contains(&re), "{re}");
            // Test Re 2.5e3 sits in the gap [2.3e3, 2.7e3].
            assert!(
                !(2.3e3 + 1.0..2.7e3 - 1.0).contains(&re),
                "{re} in test gap"
            );
        }
    }

    #[test]
    fn plate_res_within_ranges() {
        let res = flat_plate_training_res(50);
        assert_eq!(res.len(), 50);
        for &re in &res {
            assert!((1.35e5..=1.1e6).contains(&re), "{re}");
            // Test Re 2.5e5 sits in the gap (2e5, 3e5).
            assert!(!(2e5 + 1.0..3e5 - 1.0).contains(&re), "{re} in test gap");
        }
    }

    #[test]
    fn ellipse_configs_respect_figure7() {
        let cfgs = ellipse_training_configs(60);
        assert_eq!(cfgs.len(), 60);
        for &(aspect, alpha, re) in &cfgs {
            assert!(ELLIPSE_ASPECTS.contains(&aspect));
            assert!((-2.0..=6.0).contains(&alpha), "{alpha}");
            assert!((5e4..=9e4).contains(&re), "{re}");
        }
    }

    #[test]
    fn families_assigned() {
        assert_eq!(TestCase::ChannelInt.family(), Family::Channel);
        assert_eq!(TestCase::FlatPlateExt.family(), Family::FlatPlate);
        assert_eq!(TestCase::Naca1412.family(), Family::Ellipse);
    }
}
