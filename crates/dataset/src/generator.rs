//! Dataset assembly: sweep the training ranges, synthesize (or solve) each
//! configuration, and split into train/validation.

use adarnet_cfd::CaseConfig;
use adarnet_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::cases::{
    channel_training_res, ellipse_training_configs, flat_plate_training_res, Family,
};
use crate::synthetic::synthesize;

/// Metadata carried with each sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleMeta {
    /// Flow family.
    pub family: Family,
    /// Reynolds number.
    pub reynolds: f64,
    /// Case name.
    pub name: String,
    /// Physical domain length (m), for PDE-loss cell spacing.
    pub lx: f64,
    /// Physical domain height (m).
    pub ly: f64,
}

/// One LR training sample: a 4-channel `(4, H, W)` field plus metadata.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The LR flow field (channels U, V, p, nu_tilde).
    pub field: Tensor<f32>,
    /// Provenance.
    pub meta: SampleMeta,
}

/// Dataset generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Samples per canonical flow family (the paper uses 10 000 each).
    pub per_family: usize,
    /// LR field height (64 in the paper).
    pub h: usize,
    /// LR field width (256 in the paper).
    pub w: usize,
    /// Shuffle seed for the train/val split.
    pub seed: u64,
    /// Fraction reserved for validation (0.1 in the paper: 3000 / 30000).
    pub val_fraction: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            per_family: 32,
            h: 64,
            w: 256,
            seed: 0,
            val_fraction: 0.1,
        }
    }
}

/// Generate the full three-family dataset from the synthetic models.
/// Sample generation is rayon-parallel across configurations.
pub fn generate(cfg: &DatasetConfig) -> Vec<Sample> {
    assert!(cfg.per_family >= 2, "need at least 2 samples per family");
    let mut configs: Vec<(Family, CaseConfig)> = Vec::with_capacity(3 * cfg.per_family);
    for re in channel_training_res(cfg.per_family) {
        configs.push((Family::Channel, CaseConfig::channel(re)));
    }
    for re in flat_plate_training_res(cfg.per_family) {
        configs.push((Family::FlatPlate, CaseConfig::flat_plate(re)));
    }
    for (aspect, alpha, re) in ellipse_training_configs(cfg.per_family) {
        configs.push((Family::Ellipse, CaseConfig::ellipse(aspect, alpha, re)));
    }
    configs
        .into_par_iter()
        .map(|(family, case)| Sample {
            field: synthesize(&case, cfg.h, cfg.w),
            meta: SampleMeta {
                family,
                reynolds: case.reynolds,
                name: case.name.clone(),
                lx: case.lx,
                ly: case.ly,
            },
        })
        .collect()
}

/// Shuffle and split samples into `(train, validation)` per
/// `cfg.val_fraction`.
pub fn train_val_split(
    mut samples: Vec<Sample>,
    cfg: &DatasetConfig,
) -> (Vec<Sample>, Vec<Sample>) {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    samples.shuffle(&mut rng);
    let n_val = ((samples.len() as f64 * cfg.val_fraction).round() as usize).min(samples.len());
    let train = samples.split_off(n_val);
    (train, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DatasetConfig {
        DatasetConfig {
            per_family: 6,
            h: 16,
            w: 64,
            seed: 7,
            val_fraction: 0.25,
        }
    }

    #[test]
    fn generates_three_families() {
        let ds = generate(&small_cfg());
        assert_eq!(ds.len(), 18);
        for fam in [Family::Channel, Family::FlatPlate, Family::Ellipse] {
            assert_eq!(ds.iter().filter(|s| s.meta.family == fam).count(), 6);
        }
        for s in &ds {
            assert_eq!(s.field.dim(0), 4);
            assert_eq!(s.field.dim(1), 16);
            assert_eq!(s.field.dim(2), 64);
            assert!(s.field.all_finite());
        }
    }

    #[test]
    fn split_fractions_and_determinism() {
        let cfg = small_cfg();
        let (train, val) = train_val_split(generate(&cfg), &cfg);
        assert_eq!(val.len(), 5); // round(18 * 0.25) = 5 (banker-free round)
        assert_eq!(train.len(), 13);
        let (train2, _) = train_val_split(generate(&cfg), &cfg);
        assert_eq!(train[0].meta.name, train2[0].meta.name);
    }

    #[test]
    fn samples_vary_with_reynolds() {
        let ds = generate(&small_cfg());
        let channels: Vec<_> = ds
            .iter()
            .filter(|s| s.meta.family == Family::Channel)
            .collect();
        let a = &channels[0].field;
        let b = &channels.last().unwrap().field;
        assert!(a.mse(b) > 0.0, "different Re must give different fields");
    }
}
