//! Fast parameterized synthetic flow fields.
//!
//! The paper trains on 30 000 solver-generated LR samples (10 000 per
//! canonical flow, §4.1) on a GPU cluster. On a single CPU core we
//! substitute closed-form approximations of the same steady RANS solutions
//! (DESIGN.md §2): 1/7th-power-law profiles for the wall-bounded flows and
//! potential flow plus a wake-deficit model for the body flows. These have
//! the gradient structure that drives the scorer/ranker (thin near-wall
//! layers, wakes, smooth freestream), at a per-sample cost of microseconds
//! instead of solver minutes. Full-fidelity solver samples remain available
//! through [`crate::solver_gen`].

use adarnet_cfd::{CaseConfig, NU};
use adarnet_tensor::{Shape, Tensor};

/// Evaluate the 4-channel (U, V, p, nu_tilde) field of a case on an
/// `h x w` cell-centered grid from its closed-form model.
pub fn synthesize(case: &CaseConfig, h: usize, w: usize) -> Tensor<f32> {
    let mut t = Tensor::<f32>::zeros(Shape::d3(4, h, w));
    let dx = case.lx / w as f64;
    let dy = case.ly / h as f64;
    for i in 0..h {
        let y = (i as f64 + 0.5) * dy;
        for j in 0..w {
            let x = (j as f64 + 0.5) * dx;
            let (u, v, p, nt) = point_value(case, x, y);
            t.set3(0, i, j, u as f32);
            t.set3(1, i, j, v as f32);
            t.set3(2, i, j, p as f32);
            t.set3(3, i, j, nt as f32);
        }
    }
    t
}

/// The pointwise synthetic model behind [`synthesize`].
pub fn point_value(case: &CaseConfig, x: f64, y: f64) -> (f64, f64, f64, f64) {
    if let Some(body) = &case.body {
        return body_flow(case, body, x, y);
    }
    if case.top == adarnet_cfd::SideBc::Wall {
        channel_flow(case, x, y)
    } else {
        flat_plate_flow(case, x, y)
    }
}

/// Turbulent channel: 1/7th power-law profile symmetric about the
/// centerline, linear streamwise pressure drop, parabolic eddy-viscosity
/// shape vanishing at both walls.
fn channel_flow(case: &CaseConfig, x: f64, y: f64) -> (f64, f64, f64, f64) {
    let d = case.ly;
    let eta = (2.0 * y / d - 1.0).abs().min(1.0); // 0 centerline, 1 walls
                                                  // Bulk-preserving power law: u_max such that mean(u) = u_in.
                                                  // mean of (1 - eta)^(1/7) over eta in [0,1] is 7/8.
    let u_max = case.u_in * 8.0 / 7.0;
    let u = u_max * (1.0 - eta).powf(1.0 / 7.0);
    let v = 0.0;
    // Darcy-like linear pressure drop along the channel.
    let re = case.reynolds.max(1.0);
    let f = 0.316 / re.powf(0.25); // Blasius friction factor
    let dpdx = -f / d * 0.5 * case.u_in * case.u_in;
    let p = dpdx * (x - case.lx); // p = 0 at the outlet
                                  // Eddy viscosity: mixing-length parabola, nu_t ~ kappa u_tau y (1 - y/D).
    let u_tau = case.u_in * (f / 8.0).sqrt();
    let yw = (y.min(d - y)).max(0.0);
    let nt = (0.41 * u_tau * yw * (1.0 - yw / (0.5 * d)).max(0.0) + 3.0 * NU).max(0.0);
    (u, v, p, nt)
}

/// Turbulent flat-plate boundary layer: delta(x) by the 1/5th-power
/// correlation, 1/7th power-law profile inside the layer, freestream above.
fn flat_plate_flow(case: &CaseConfig, x: f64, y: f64) -> (f64, f64, f64, f64) {
    let u_in = case.u_in;
    let re_x = (u_in * x.max(1e-6) / case.nu).max(1e3);
    let delta = (0.37 * x.max(1e-6) / re_x.powf(0.2)).max(1e-6);
    let eta = (y / delta).min(1.0);
    let u = u_in * eta.powf(1.0 / 7.0);
    // Wall-normal velocity from boundary-layer growth (small, positive).
    let v = if y < delta {
        0.125 * u_in * delta / x.max(delta) * eta
    } else {
        0.0
    };
    let p = 0.0; // zero-pressure-gradient plate
    let cf = 0.0592 / re_x.powf(0.2);
    let u_tau = u_in * (cf / 2.0).sqrt();
    let nt = if y < delta {
        (0.41 * u_tau * y * (1.0 - 0.5 * eta) + 3.0 * NU).max(0.0)
    } else {
        3.0 * NU
    };
    (u, v, p, nt)
}

/// Flow around an immersed body: potential flow around an equivalent
/// cylinder (exact for the cylinder case) plus a Gaussian wake deficit
/// downstream, with eddy viscosity concentrated in the wake and near the
/// surface.
fn body_flow(case: &CaseConfig, body: &adarnet_cfd::Body, x: f64, y: f64) -> (f64, f64, f64, f64) {
    let (xmin, ymin, xmax, ymax) = body.bbox();
    let (cx, cy) = (0.5 * (xmin + xmax), 0.5 * (ymin + ymax));
    let height = (ymax - ymin).max(1e-6);
    let chord = (xmax - xmin).max(1e-6);
    // Equivalent radius for the potential-flow dipole: geometric mean of
    // the half extents captures both bluff and slender bodies.
    let r_eq = 0.5 * (height * chord).sqrt();
    let u_in = case.u_in;

    if body.contains(x, y) {
        return (0.0, 0.0, 0.0, 0.0);
    }

    let (rx, ry) = (x - cx, y - cy);
    let r2 = (rx * rx + ry * ry).max(0.25 * r_eq * r_eq);
    let a2 = r_eq * r_eq;
    // Potential flow around a cylinder of radius r_eq.
    let mut u = u_in * (1.0 - a2 * (rx * rx - ry * ry) / (r2 * r2));
    let v = u_in * (-a2 * 2.0 * rx * ry / (r2 * r2));
    // Bernoulli pressure.
    let mut p = 0.5 * (u_in * u_in - (u * u + v * v));

    // Wake deficit behind the body: bluffness scales the deficit strength
    // (cylinders separate; slender airfoils keep attached flow).
    let bluffness = (height / chord).min(1.0);
    let mut nt = 3.0 * NU;
    if rx > 0.0 {
        let wake_w = 0.5 * height + 0.1 * bluffness * rx; // spreading
        let g = (-0.5 * (ry / wake_w) * (ry / wake_w)).exp();
        let decay = 1.0 / (1.0 + rx / (2.0 * chord));
        let deficit = 0.6 * bluffness * u_in * g * decay;
        u -= deficit;
        p -= 0.25 * deficit * u_in * g;
        // Wake turbulence.
        nt += 0.05 * bluffness * u_in * height * g * decay;
    }
    // Near-surface turbulence collar.
    let d = body.distance(x, y);
    let collar = (-d / (0.15 * height)).exp();
    nt += 0.02 * u_in * height * collar;

    (u, v, p, nt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adarnet_cfd::CaseConfig;

    #[test]
    fn channel_profile_shape() {
        let case = CaseConfig::channel(2.5e3);
        let t = synthesize(&case, 16, 64);
        assert_eq!(t.shape(), &Shape::d3(4, 16, 64));
        // Centerline faster than near-wall.
        let wall = t.get3(0, 0, 32);
        let center = t.get3(0, 8, 32);
        assert!(center > wall, "center {center} wall {wall}");
        // Symmetric about the centerline.
        let top = t.get3(0, 15, 32);
        assert!((wall - top).abs() < 1e-5);
        // Pressure decreases downstream.
        assert!(t.get3(2, 8, 0) > t.get3(2, 8, 63));
        // nu_tilde vanishes-ish at walls, peaks off-center.
        assert!(t.get3(3, 4, 32) > t.get3(3, 0, 32));
    }

    #[test]
    fn channel_bulk_velocity_matches_u_in() {
        let case = CaseConfig::channel(1e4);
        let t = synthesize(&case, 64, 8);
        let mut mean = 0.0f64;
        for i in 0..64 {
            mean += t.get3(0, i, 4) as f64;
        }
        mean /= 64.0;
        assert!(
            (mean - case.u_in).abs() / case.u_in < 0.05,
            "bulk {mean} vs {}",
            case.u_in
        );
    }

    #[test]
    fn plate_boundary_layer_grows_downstream() {
        let case = CaseConfig::flat_plate(2.5e5);
        let t = synthesize(&case, 32, 128);
        // At a fixed small height, u is lower (inside the BL) farther
        // downstream where the layer is thicker.
        let up = t.get3(0, 1, 16);
        let down = t.get3(0, 1, 120);
        assert!(down < up, "BL not growing: up {up} down {down}");
        // Freestream is undisturbed at the top.
        assert!((t.get3(0, 31, 64) - case.u_in as f32).abs() < 1e-4);
    }

    #[test]
    fn cylinder_has_stagnation_and_wake() {
        let case = CaseConfig::cylinder(1e5);
        let t = synthesize(&case, 32, 128);
        let u_in = case.u_in as f32;
        // Upstream of the body (x ~ 1.3, y = 1): slowed by the dipole.
        let j_up = (1.3 / 8.0 * 128.0) as usize;
        let i_mid = 16;
        assert!(t.get3(0, i_mid, j_up) < u_in);
        // Wake deficit behind the body (x ~ 3.5).
        let j_wake = (3.5 / 8.0 * 128.0) as usize;
        assert!(
            t.get3(0, i_mid, j_wake) < 0.8 * u_in,
            "{}",
            t.get3(0, i_mid, j_wake)
        );
        // Far field (top edge) close to freestream.
        assert!((t.get3(0, 31, 64) - u_in).abs() / u_in < 0.2);
        // Wake nu_tilde well above freestream level.
        assert!(t.get3(3, i_mid, j_wake) > 10.0 * 3e-5);
        // Solid cells zeroed.
        let j_body = (2.0 / 8.0 * 128.0) as usize;
        assert_eq!(t.get3(0, i_mid, j_body), 0.0);
    }

    #[test]
    fn airfoil_wake_weaker_than_cylinder() {
        let cyl = synthesize(&CaseConfig::cylinder(1e5), 32, 128);
        let foil = synthesize(&CaseConfig::naca0012(1e5), 32, 128);
        let j_wake = (3.5 / 8.0 * 128.0) as usize;
        let u_cyl = cyl.get3(0, 16, j_wake);
        let u_foil = foil.get3(0, 16, j_wake);
        // Slender airfoil leaves a much weaker wake (paper §5.1: attached
        // flow vs separation).
        assert!(u_foil > u_cyl, "foil {u_foil} cyl {u_cyl}");
    }

    #[test]
    fn all_fields_finite() {
        for case in [
            CaseConfig::channel(2.5e3),
            CaseConfig::flat_plate(1.35e6),
            CaseConfig::cylinder(1e5),
            CaseConfig::naca1412(2.5e4),
            CaseConfig::ellipse(0.25, 3.0, 7e4),
        ] {
            let t = synthesize(&case, 16, 64);
            assert!(t.all_finite(), "{} produced non-finite values", case.name);
        }
    }
}
