//! Full-fidelity sample generation through the RANS solver.
//!
//! This is the paper's actual data-collection path (§4.1): run the physics
//! solver on the LR mesh to steady state and record the four flow
//! variables. It is orders of magnitude slower than [`crate::synthetic`],
//! so the default training pipeline uses the synthetic models and this
//! module serves spot checks, examples, and anyone with compute to spare.

use adarnet_amr::{PatchLayout, RefinementMap};
use adarnet_cfd::{CaseConfig, CaseMesh, RansSolver, SolverConfig};
use adarnet_tensor::Tensor;

/// Solve `case` on a uniform level-0 mesh with the given layout and return
/// the steady LR field as a `(4, H, W)` tensor, along with the solver's
/// iteration count.
pub fn solve_lr_sample(
    case: &CaseConfig,
    layout: PatchLayout,
    cfg: SolverConfig,
) -> (Tensor<f32>, u64) {
    let map = RefinementMap::uniform(layout, 0, 3);
    let mesh = CaseMesh::new(case.clone(), map);
    let mut solver = RansSolver::new(mesh, cfg);
    let stats = solver.solve_to_convergence();
    (solver.state.to_tensor(0), stats.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_sample_has_boundary_layer_structure() {
        let mut case = CaseConfig::channel(2.5e3);
        case.lx = 1.0; // short channel for test speed
        let layout = PatchLayout::new(2, 8, 8, 8);
        let cfg = SolverConfig {
            max_iters: 2500,
            ..SolverConfig::default()
        };
        let (t, iters) = solve_lr_sample(&case, layout, cfg);
        assert!(iters > 0);
        assert_eq!(t.dim(0), 4);
        assert!(t.all_finite());
        // Wall-adjacent row slower than centerline (the structure the
        // synthetic model imitates).
        let wall = t.get3(0, 0, 48);
        let center = t.get3(0, 8, 48);
        assert!(wall < center, "wall {wall} center {center}");
    }
}
