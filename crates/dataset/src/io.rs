//! On-disk dataset caching.
//!
//! Solver-generated samples are expensive (minutes each at paper scale);
//! caching lets one generation run feed every harness. The format is a
//! single JSON file holding fields and metadata.

use std::fs;
use std::io;
use std::path::Path;

use adarnet_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::generator::{Sample, SampleMeta};

/// Serializable dataset container.
#[derive(Serialize, Deserialize)]
pub struct DatasetFile {
    /// Format version.
    pub version: u32,
    /// Sample fields.
    pub fields: Vec<Tensor<f32>>,
    /// Sample metadata, aligned with `fields`.
    pub metas: Vec<SampleMeta>,
}

/// Current dataset file version.
pub const DATASET_VERSION: u32 = 1;

/// Save samples to a JSON file.
pub fn save_samples(samples: &[Sample], path: impl AsRef<Path>) -> io::Result<()> {
    let file = DatasetFile {
        version: DATASET_VERSION,
        fields: samples.iter().map(|s| s.field.clone()).collect(),
        metas: samples.iter().map(|s| s.meta.clone()).collect(),
    };
    fs::write(path, serde_json::to_string(&file)?)
}

/// Load samples from a JSON file written by [`save_samples`].
pub fn load_samples(path: impl AsRef<Path>) -> io::Result<Vec<Sample>> {
    let file: DatasetFile = serde_json::from_str(&fs::read_to_string(path)?)?;
    if file.version != DATASET_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("dataset version {} unsupported", file.version),
        ));
    }
    if file.fields.len() != file.metas.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "fields/metas length mismatch",
        ));
    }
    Ok(file
        .fields
        .into_iter()
        .zip(file.metas)
        .map(|(field, meta)| Sample { field, meta })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetConfig};

    #[test]
    fn roundtrip_preserves_samples() {
        let cfg = DatasetConfig {
            per_family: 2,
            h: 8,
            w: 16,
            seed: 0,
            val_fraction: 0.0,
        };
        let samples = generate(&cfg);
        let dir = std::env::temp_dir().join("adarnet_ds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_samples(&samples, &path).unwrap();
        let back = load_samples(&path).unwrap();
        assert_eq!(back.len(), samples.len());
        for (a, b) in back.iter().zip(&samples) {
            assert_eq!(a.field, b.field);
            assert_eq!(a.meta.name, b.meta.name);
            assert_eq!(a.meta.lx, b.meta.lx);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_version() {
        let dir = std::env::temp_dir().join("adarnet_ds_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, r#"{"version": 99, "fields": [], "metas": []}"#).unwrap();
        assert!(load_samples(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
