//! Model registry: named checkpoints with hot-swappable active model.
//!
//! The registry holds [`ModelCheckpoint`]s by name (loaded via
//! `adarnet_core::checkpoint`) and publishes one of them as *active*.
//! Activation swaps an `Arc` behind an `RwLock` and bumps a generation
//! counter; worker threads compare the counter against their engine's
//! generation at each batch boundary and re-fetch the shared engine
//! lazily, so a swap never blocks in-flight inference and requires no
//! thread restarts.
//!
//! [`ModelRegistry::shared`] is the serving entry point: one frozen
//! [`InferenceEngine`] per generation, built lazily outside any lock
//! and cached behind an `Arc`. Every worker thread clones the same
//! `Arc` — one resident weight copy regardless of worker count — and a
//! hot swap is just the cache moving to a newer generation; threads
//! mid-batch keep their old `Arc` alive until they finish.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use adarnet_core::checkpoint::{self, ModelCheckpoint};
use adarnet_core::engine::{EngineError, InferenceEngine};
use adarnet_core::sync;
use adarnet_nn::quantize::PRECISION_COUNT;
use adarnet_nn::Precision;

/// Registry errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No checkpoint registered under this name.
    UnknownModel(String),
    /// The checkpoint failed to restore into a model.
    Restore(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            RegistryError::Restore(msg) => write!(f, "restore failed: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The currently active checkpoint and its generation number.
#[derive(Clone)]
pub struct ActiveModel {
    /// Monotone swap counter; bumped on every activation.
    pub generation: u64,
    /// Registry name the checkpoint was activated under.
    pub name: String,
    /// The checkpoint itself.
    pub checkpoint: Arc<ModelCheckpoint>,
}

/// Named-checkpoint store with one hot-swappable active model.
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ModelCheckpoint>>>,
    active: RwLock<Option<ActiveModel>>,
    generation: AtomicU64,
    /// Lazily built shared engines for the active model, one slot per
    /// weight-plane [`Precision`] (indexed by [`Precision::index`]),
    /// each keyed by the generation it was built from. One engine per
    /// requested precision serves every worker; precisions nobody
    /// routes to are never built.
    engines: [RwLock<Option<(u64, Arc<InferenceEngine>)>>; PRECISION_COUNT],
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry {
            models: RwLock::new(HashMap::new()),
            active: RwLock::new(None),
            generation: AtomicU64::new(0),
            engines: std::array::from_fn(|_| RwLock::new(None)),
        }
    }

    /// Register a checkpoint under `name` (replacing any previous one;
    /// an already-active model stays active on its old checkpoint until
    /// re-activated).
    pub fn register(&self, name: impl Into<String>, ckpt: ModelCheckpoint) {
        sync::write(&self.models).insert(name.into(), Arc::new(ckpt));
    }

    /// Load a checkpoint JSON from disk and register it under `name`.
    pub fn load(&self, name: impl Into<String>, path: impl AsRef<Path>) -> io::Result<()> {
        let json = std::fs::read_to_string(path)?;
        let ckpt: ModelCheckpoint = serde_json::from_str(&json)?;
        // Validate eagerly: a checkpoint that cannot restore must not
        // become activatable.
        checkpoint::restore(&ckpt).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.register(name, ckpt);
        Ok(())
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = sync::read(&self.models).keys().cloned().collect();
        names.sort();
        names
    }

    /// Make `name` the active model (hot swap): bumps the generation so
    /// workers rebuild their replicas at the next batch boundary.
    pub fn activate(&self, name: &str) -> Result<u64, RegistryError> {
        let ckpt = sync::read(&self.models)
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        // Bump the generation *inside* the write critical section:
        // concurrent activations then publish in generation order, so a
        // stale activation can never overwrite a newer one while the
        // counter says otherwise (the model checker's registry suite
        // asserts this generation/active consistency).
        let mut active = sync::write(&self.active);
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        *active = Some(ActiveModel {
            generation,
            name: name.to_string(),
            checkpoint: ckpt,
        });
        Ok(generation)
    }

    /// The active model, if any has been activated.
    pub fn active(&self) -> Option<ActiveModel> {
        sync::read(&self.active).clone()
    }

    /// Current generation (0 before the first activation).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Build a fresh [`InferenceEngine`] replica of the active model.
    /// Serving does not need replicas (see [`ModelRegistry::shared`]);
    /// this remains for callers that want a private engine.
    pub fn replica(&self) -> Result<(u64, InferenceEngine), RegistryError> {
        let active = self
            .active()
            .ok_or_else(|| RegistryError::UnknownModel("<no active model>".into()))?;
        let engine = build_engine(&active.checkpoint, Precision::active())?;
        Ok((active.generation, engine))
    }

    /// The shared engine for the active model: one frozen weight copy
    /// behind an `Arc`, cloned by every caller.
    ///
    /// The engine is built lazily, **outside** the cache lock (weight
    /// packing is the expensive part of construction), then installed
    /// if the cache does not already hold a same-or-newer generation —
    /// two threads racing after a swap cannot roll the cache backwards,
    /// and the loser simply serves the winner's engine. Callers that
    /// hold an older `Arc` (in-flight batches during a hot swap) keep
    /// it alive until they drop it; the old weights free once the last
    /// such caller finishes.
    pub fn shared(&self) -> Result<(u64, Arc<InferenceEngine>), RegistryError> {
        self.shared_with(Precision::active())
    }

    /// [`ModelRegistry::shared`] at an explicit weight-plane
    /// [`Precision`]: each precision has its own cache slot, so a
    /// registry can hold an f32 and a bf16 engine of the same
    /// generation side by side (one frozen weight copy per precision)
    /// and admission routes each request to the plane its tenant asked
    /// for. Both slots hydrate lazily from the same checkpoint —
    /// narrowing happens at freeze.
    pub fn shared_with(
        &self,
        precision: Precision,
    ) -> Result<(u64, Arc<InferenceEngine>), RegistryError> {
        let active = self
            .active()
            .ok_or_else(|| RegistryError::UnknownModel("<no active model>".into()))?;
        let slot = &self.engines[precision.index()];
        if let Some((generation, engine)) = sync::read(slot).as_ref() {
            if *generation >= active.generation {
                return Ok((*generation, engine.clone()));
            }
        }
        let fresh = Arc::new(build_engine(&active.checkpoint, precision)?);
        let mut cache = sync::write(slot);
        if let Some((generation, engine)) = cache.as_ref() {
            if *generation >= active.generation {
                // Lost the race to a same-or-newer build; serve that one.
                return Ok((*generation, engine.clone()));
            }
        }
        *cache = Some((active.generation, fresh.clone()));
        Ok((active.generation, fresh))
    }
}

fn build_engine(
    ckpt: &ModelCheckpoint,
    precision: Precision,
) -> Result<InferenceEngine, RegistryError> {
    InferenceEngine::from_checkpoint_with(ckpt, precision).map_err(|e| match e {
        EngineError::Checkpoint(msg) => RegistryError::Restore(msg),
        other => RegistryError::Restore(other.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adarnet_core::loss::NormStats;
    use adarnet_core::network::{AdarNet, AdarNetConfig};

    fn ckpt(seed: u64) -> ModelCheckpoint {
        let model = AdarNet::new(AdarNetConfig {
            ph: 8,
            pw: 8,
            seed,
            ..AdarNetConfig::default()
        });
        checkpoint::snapshot(&model, &NormStats::identity())
    }

    #[test]
    fn activate_bumps_generation() {
        let reg = ModelRegistry::new();
        reg.register("a", ckpt(1));
        reg.register("b", ckpt(2));
        assert_eq!(reg.generation(), 0);
        assert!(reg.active().is_none());
        let g1 = reg.activate("a").unwrap();
        let g2 = reg.activate("b").unwrap();
        assert!(g2 > g1);
        assert_eq!(reg.active().unwrap().name, "b");
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn activate_unknown_is_error() {
        let reg = ModelRegistry::new();
        assert_eq!(
            reg.activate("nope"),
            Err(RegistryError::UnknownModel("nope".into()))
        );
    }

    #[test]
    fn replica_restores_active_model() {
        let reg = ModelRegistry::new();
        reg.register("m", ckpt(7));
        assert!(reg.replica().is_err(), "no active model yet");
        reg.activate("m").unwrap();
        let (generation, engine) = reg.replica().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(engine.config().ph, 8);
    }

    #[test]
    fn shared_returns_one_engine_per_generation() {
        let reg = ModelRegistry::new();
        reg.register("a", ckpt(1));
        assert!(reg.shared().is_err(), "no active model yet");
        reg.activate("a").unwrap();
        let (g1, e1) = reg.shared().unwrap();
        let (g2, e2) = reg.shared().unwrap();
        assert_eq!((g1, g2), (1, 1));
        assert!(
            Arc::ptr_eq(&e1, &e2),
            "same generation must share one engine"
        );
    }

    #[test]
    fn shared_with_caches_one_engine_per_precision() {
        let reg = ModelRegistry::new();
        reg.register("a", ckpt(3));
        reg.activate("a").unwrap();
        let (gf, ef) = reg.shared_with(Precision::F32).unwrap();
        let (gq, eq) = reg.shared_with(Precision::Bf16).unwrap();
        assert_eq!((gf, gq), (1, 1), "same generation, two planes");
        assert!(!Arc::ptr_eq(&ef, &eq), "precisions are distinct engines");
        assert_eq!(ef.precision(), Precision::F32);
        assert_eq!(eq.precision(), Precision::Bf16);
        assert!(
            eq.weight_bytes() * 100 <= ef.weight_bytes() * 55,
            "bf16 plane must cut resident bytes to <= 0.55x: {} vs {}",
            eq.weight_bytes(),
            ef.weight_bytes()
        );
        // Re-fetching each precision hits its cache slot.
        let (_, ef2) = reg.shared_with(Precision::F32).unwrap();
        let (_, eq2) = reg.shared_with(Precision::Bf16).unwrap();
        assert!(Arc::ptr_eq(&ef, &ef2));
        assert!(Arc::ptr_eq(&eq, &eq2));
    }

    #[test]
    fn shared_swaps_on_activation_and_old_arc_survives() {
        let reg = ModelRegistry::new();
        reg.register("a", ckpt(1));
        reg.register("b", ckpt(2));
        reg.activate("a").unwrap();
        let (g_old, e_old) = reg.shared().unwrap();
        reg.activate("b").unwrap();
        let (g_new, e_new) = reg.shared().unwrap();
        assert!(g_new > g_old);
        assert!(!Arc::ptr_eq(&e_old, &e_new), "swap must build a new engine");
        // An in-flight holder of the old Arc still infers on the old
        // generation's weights.
        let x = adarnet_tensor::Tensor::from_vec(
            adarnet_tensor::Shape::d3(4, 16, 16),
            (0..4 * 256).map(|i| ((i as f32) * 0.02).sin()).collect(),
        );
        let old_pred = e_old.infer(&x).unwrap();
        let fresh_old = InferenceEngine::from_checkpoint(&ckpt(1)).unwrap();
        let want = fresh_old.infer(&x).unwrap();
        assert_eq!(old_pred.binning.bin_of_patch, want.binning.bin_of_patch);
        for (a, b) in old_pred.patches.iter().zip(&want.patches) {
            assert_eq!(a, b);
        }
    }
}
