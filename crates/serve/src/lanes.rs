//! Multi-lane priority queue with weighted-deficit pickup — the front
//! of the serving pipeline, replacing the single FIFO [`crate::queue::
//! BoundedQueue`] so a latency-sensitive small field never waits behind
//! a bulk refinement job, while bulk still makes guaranteed progress.
//!
//! Semantics (the `PriorityQueueModel` oracle in `crates/check`
//! re-states these as a sequential shadow model):
//!
//! * **three lanes** ([`Priority`]): interactive / standard / bulk,
//!   each an independent bounded FIFO with its own capacity; a push
//!   against a full lane saturates ([`PushOutcome::Saturated`]) without
//!   touching the other lanes;
//! * **weighted deficit pickup**: every pop selects a lane by the rule
//!   in [`select_lane_spec`] — scan lanes in priority order and serve
//!   the first *non-empty* lane with positive credit; when no non-empty
//!   lane has credit, refill every lane's credit by its weight (capped
//!   at one cycle's worth for empty lanes, accumulated as debt
//!   repayment otherwise) and rescan. Within any backlogged window,
//!   lane `i` therefore receives `weight[i] / Σ weights` of the pops,
//!   interactive drains its share first (lowest latency), and bulk can
//!   never starve (its weight is ≥ 1 credit per cycle);
//! * **batched popping**: [`LaneQueue::pop_batch`] picks a lane, then
//!   lingers fusing more arrivals *from the same lane* (a micro-batch
//!   never mixes lanes — queue-wait accounting and deadline handling
//!   stay per-lane); the whole batch is charged against the lane's
//!   credit, which may go negative and is repaid over later cycles
//!   (classic deficit round-robin);
//! * **shutdown**: pushes are rejected, queued items drain, poppers
//!   return `None` once every lane is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use adarnet_core::sync;

use crate::queue::PushOutcome;

/// Number of priority lanes.
pub const NUM_LANES: usize = 3;

/// Priority class of a request, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive small fields (a user waiting on a viewport).
    Interactive,
    /// The default class.
    Standard,
    /// Throughput-oriented refinement jobs (multi-bin sweeps, batch
    /// re-meshing) that tolerate queueing.
    Bulk,
}

impl Priority {
    /// All lanes in priority order (the pickup scan order).
    pub const ALL: [Priority; NUM_LANES] =
        [Priority::Interactive, Priority::Standard, Priority::Bulk];

    /// Lane index, 0 = highest priority.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Bulk => 2,
        }
    }

    /// Inverse of [`Priority::index`] / the wire-protocol class byte.
    pub fn from_index(i: usize) -> Option<Priority> {
        match i {
            0 => Some(Priority::Interactive),
            1 => Some(Priority::Standard),
            2 => Some(Priority::Bulk),
            _ => None,
        }
    }

    /// Lowercase lane name for metrics and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Bulk => "bulk",
        }
    }
}

/// The lane-selection rule, shared verbatim by the real queue and the
/// `crates/check` shadow oracle so divergence is detectable: scan lanes
/// in priority order for a non-empty lane with positive credit; if none
/// exists, refill every lane (`credit = min(credit + weight, weight)`)
/// and rescan. Returns `None` when every lane is empty. Terminates
/// because every refill strictly increases any non-positive credit
/// (weights are clamped ≥ 1).
pub fn select_lane_spec(
    lens: [usize; NUM_LANES],
    credits: &mut [i64; NUM_LANES],
    weights: [u64; NUM_LANES],
) -> Option<usize> {
    if lens.iter().all(|&l| l == 0) {
        return None;
    }
    loop {
        for i in 0..NUM_LANES {
            if lens[i] > 0 && credits[i] > 0 {
                return Some(i);
            }
        }
        for i in 0..NUM_LANES {
            let w = weights[i].max(1) as i64;
            credits[i] = (credits[i] + w).min(w);
        }
    }
}

struct Inner<T> {
    lanes: [VecDeque<T>; NUM_LANES],
    credits: [i64; NUM_LANES],
    shutdown: bool,
}

impl<T> Inner<T> {
    fn lens(&self) -> [usize; NUM_LANES] {
        [
            self.lanes[0].len(),
            self.lanes[1].len(),
            self.lanes[2].len(),
        ]
    }
}

/// A bounded three-lane MPMC priority queue with weighted-deficit
/// batched popping.
pub struct LaneQueue<T> {
    /// Per-lane capacity (minimum 1).
    capacity: usize,
    weights: [u64; NUM_LANES],
    inner: Mutex<Inner<T>>,
    notify: Condvar,
}

impl<T> LaneQueue<T> {
    /// Create a queue whose every lane holds at most `capacity` items
    /// (minimum 1), with `weights` credits per refill cycle in priority
    /// order (each clamped to ≥ 1 so no lane can be configured into
    /// starvation).
    pub fn new(capacity: usize, weights: [u64; NUM_LANES]) -> LaneQueue<T> {
        LaneQueue {
            capacity: capacity.max(1),
            weights: [weights[0].max(1), weights[1].max(1), weights[2].max(1)],
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                credits: [0; NUM_LANES],
                shutdown: false,
            }),
            notify: Condvar::new(),
        }
    }

    /// Per-lane capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Configured per-cycle credits, in priority order.
    pub fn weights(&self) -> [u64; NUM_LANES] {
        self.weights
    }

    /// Offer one item to `priority`'s lane. Never blocks: a full lane
    /// saturates and a shut-down queue rejects, both returning the item.
    pub fn push(&self, priority: Priority, item: T) -> PushOutcome<T> {
        {
            let mut inner = sync::lock(&self.inner);
            if inner.shutdown {
                return PushOutcome::Rejected(item);
            }
            let lane = &mut inner.lanes[priority.index()];
            if lane.len() >= self.capacity {
                return PushOutcome::Saturated(item);
            }
            lane.push_back(item);
        }
        self.notify.notify_one();
        PushOutcome::Enqueued
    }

    /// Pop one item per the weighted-deficit rule, if any lane is
    /// non-empty (model-checker entry point; the server uses
    /// [`LaneQueue::pop_batch`]).
    pub fn try_pop(&self) -> Option<(Priority, T)> {
        let mut inner = sync::lock(&self.inner);
        let lane = select_lane_spec(inner.lens(), &mut inner.credits, self.weights)?;
        inner.credits[lane] -= 1;
        let item = inner.lanes[lane].pop_front()?;
        Priority::from_index(lane).map(|p| (p, item))
    }

    /// Pop up to `max` immediately-available items from the lane the
    /// weighted-deficit rule selects, charging the whole batch against
    /// that lane's credit. Non-blocking.
    pub fn try_pop_batch(&self, max: usize) -> Option<(Priority, Vec<T>)> {
        let max = max.max(1);
        let mut inner = sync::lock(&self.inner);
        let lane = select_lane_spec(inner.lens(), &mut inner.credits, self.weights)?;
        let take = inner.lanes[lane].len().min(max);
        let batch: Vec<T> = inner.lanes[lane].drain(..take).collect();
        inner.credits[lane] -= batch.len() as i64;
        Priority::from_index(lane).map(|p| (p, batch))
    }

    /// Block until any lane has an item, select a lane, then linger up
    /// to `linger` fusing more arrivals *from that lane* into one batch
    /// of 1..=`max` items. Returns `None` only when the queue is shut
    /// down *and* fully drained.
    pub fn pop_batch(&self, max: usize, linger: Duration) -> Option<(Priority, Vec<T>)> {
        let max = max.max(1);
        let mut inner = sync::lock(&self.inner);
        let lane = loop {
            if let Some(lane) = select_lane_spec(inner.lens(), &mut inner.credits, self.weights) {
                break lane;
            }
            if inner.shutdown {
                return None;
            }
            inner = sync::wait(&self.notify, inner);
        };
        let mut batch = Vec::with_capacity(max.min(inner.lanes[lane].len()));
        if let Some(first) = inner.lanes[lane].pop_front() {
            batch.push(first);
        }
        let deadline = Instant::now() + linger;
        while batch.len() < max {
            if let Some(item) = inner.lanes[lane].pop_front() {
                batch.push(item);
                continue;
            }
            let now = Instant::now();
            if now >= deadline || inner.shutdown {
                break;
            }
            inner = sync::wait_timeout(&self.notify, inner, deadline - now);
        }
        inner.credits[lane] -= batch.len() as i64;
        // Other lanes may still hold work for sibling workers.
        if inner.lens().iter().any(|&l| l > 0) {
            self.notify.notify_one();
        }
        drop(inner);
        Priority::from_index(lane).map(|p| (p, batch))
    }

    /// Stop accepting new items and wake every blocked popper. Queued
    /// items still drain.
    pub fn shutdown(&self) {
        {
            let mut inner = sync::lock(&self.inner);
            inner.shutdown = true;
        }
        self.notify.notify_all();
    }

    /// Whether [`LaneQueue::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        sync::lock(&self.inner).shutdown
    }

    /// Items queued in `priority`'s lane.
    pub fn lane_len(&self, priority: Priority) -> usize {
        sync::lock(&self.inner).lanes[priority.index()].len()
    }

    /// Items queued across all lanes.
    pub fn len(&self) -> usize {
        sync::lock(&self.inner).lens().iter().sum()
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: [u64; NUM_LANES] = [4, 2, 1];

    #[test]
    fn priority_order_within_a_refill_cycle() {
        let q = LaneQueue::new(16, W);
        for v in 0..3 {
            assert!(q.push(Priority::Bulk, 300 + v).is_enqueued());
            assert!(q.push(Priority::Standard, 200 + v).is_enqueued());
            assert!(q.push(Priority::Interactive, 100 + v).is_enqueued());
        }
        // One refill cycle: 3 interactive (all queued), then 2 standard
        // (its weight), then... interactive empty, standard out of
        // credit, bulk gets its 1, refill, standard's last, bulk rest.
        let order: Vec<i32> = std::iter::from_fn(|| q.try_pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![100, 101, 102, 200, 201, 300, 202, 301, 302]);
    }

    #[test]
    fn bulk_cannot_starve_under_backlog() {
        let q = LaneQueue::new(64, W);
        for v in 0..28 {
            let lane = Priority::ALL[(v % 3) as usize];
            assert!(q.push(lane, v).is_enqueued());
        }
        // Keep all lanes topped up while popping: bulk must still get
        // ~1/7 of the service.
        let mut served = [0usize; NUM_LANES];
        for i in 0..21 {
            let (p, _) = q.try_pop().expect("queue is backlogged");
            served[p.index()] += 1;
            let _ = q.push(p, 1000 + i);
        }
        assert!(served[2] >= 2, "bulk starved: {served:?}");
        assert!(
            served[0] > served[2],
            "priority weighting inverted: {served:?}"
        );
    }

    #[test]
    fn per_lane_capacity_is_independent() {
        let q = LaneQueue::new(1, W);
        assert!(q.push(Priority::Interactive, 1).is_enqueued());
        assert_eq!(q.push(Priority::Interactive, 2), PushOutcome::Saturated(2));
        // A full interactive lane does not block bulk.
        assert!(q.push(Priority::Bulk, 3).is_enqueued());
        assert_eq!(q.lane_len(Priority::Interactive), 1);
        assert_eq!(q.lane_len(Priority::Bulk), 1);
    }

    #[test]
    fn batches_never_mix_lanes() {
        let q = LaneQueue::new(8, W);
        assert!(q.push(Priority::Interactive, 1).is_enqueued());
        assert!(q.push(Priority::Bulk, 2).is_enqueued());
        assert!(q.push(Priority::Interactive, 3).is_enqueued());
        let (p, batch) = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(p, Priority::Interactive);
        assert_eq!(batch, vec![1, 3]);
        let (p, batch) = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(p, Priority::Bulk);
        assert_eq!(batch, vec![2]);
    }

    #[test]
    fn shutdown_rejects_new_but_drains_old() {
        let q = LaneQueue::new(4, W);
        assert!(q.push(Priority::Standard, 10).is_enqueued());
        q.shutdown();
        assert_eq!(q.push(Priority::Standard, 11), PushOutcome::Rejected(11));
        assert_eq!(
            q.pop_batch(8, Duration::ZERO),
            Some((Priority::Standard, vec![10]))
        );
        assert_eq!(q.pop_batch(8, Duration::ZERO), None);
    }

    #[test]
    fn pop_batch_wakes_on_cross_thread_push() {
        let q = std::sync::Arc::new(LaneQueue::new(4, W));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop_batch(4, Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(10));
        assert!(q.push(Priority::Bulk, 42).is_enqueued());
        assert_eq!(h.join().expect("popper"), Some((Priority::Bulk, vec![42])));
    }

    #[test]
    fn zero_weights_clamp_to_one() {
        let q: LaneQueue<u32> = LaneQueue::new(4, [0, 0, 0]);
        assert_eq!(q.weights(), [1, 1, 1]);
        assert!(q.push(Priority::Bulk, 7).is_enqueued());
        assert_eq!(q.try_pop(), Some((Priority::Bulk, 7)));
    }
}
