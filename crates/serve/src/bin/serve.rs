//! Closed-loop serving benchmark: trains nothing, serves a
//! freshly-initialized model under synthetic load, and writes
//! `BENCH_serve.json`.
//!
//! For each concurrency level (1/8/32) the driver runs the same
//! request stream twice:
//! * **batched** — micro-batching scheduler + decoded-patch cache (the
//!   serving system under test);
//! * **unbatched** — `max_batch = 1`, no linger, no cache (naive
//!   per-request inference, the baseline).
//!
//! A final saturation phase submits a burst far beyond the queue bound
//! to demonstrate load shedding: the overflow is answered with degraded
//! bin-0 responses, counted, and reported.
//!
//! Subcommand:
//! * `serve stats` — run a short demo load against a fresh server and
//!   print the obs registry's Prometheus-style exposition text (the
//!   "stats endpoint" of a process with no network listener).
//!
//! Environment knobs (all optional):
//! * `ADARNET_SERVE_SCALE` — `quick` (default; 16x32 fields, 8x8
//!   patches) or `full` (64x256 fields, 16x16 patches);
//! * `ADARNET_SERVE_REQUESTS` — requests per client;
//! * `ADARNET_SERVE_OUT` — output path (default `BENCH_serve.json`);
//! * `ADARNET_SERVE_METRICS_OUT` — also write the final exposition
//!   text (metrics snapshot) to this path.

use std::sync::Arc;
use std::time::Duration;

use adarnet_core::checkpoint;
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig};
use adarnet_serve::{
    field_pool, run_closed_loop, LatencyWindow, LoadReport, ModelRegistry, ResponseKind,
    ServeConfig, Server,
};
use serde::Serialize;

#[derive(Serialize)]
struct SaturationReport {
    queue_capacity: usize,
    burst: usize,
    shed_queue_full: u64,
    degraded_seen: u64,
    full_seen: u64,
}

#[derive(Serialize)]
struct BenchOutput {
    scale: String,
    field_h: usize,
    field_w: usize,
    patch: usize,
    pool_size: usize,
    runs: Vec<LoadReport>,
    batched_vs_unbatched_speedup_at_max_concurrency: f64,
    saturation: SaturationReport,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `ModelCheckpoint` is not `Clone` (weight tensors are large and
/// sharing is the norm); round-trip through restore/snapshot instead.
fn checkpoint_clone(ckpt: &adarnet_core::ModelCheckpoint) -> adarnet_core::ModelCheckpoint {
    let (model, norm) = checkpoint::restore(ckpt).expect("clone restores");
    checkpoint::snapshot(&model, &norm)
}

/// `serve stats`: run a short demo load and print the metrics registry
/// as Prometheus exposition text — the closest thing a listener-less
/// process has to a `/metrics` endpoint, and the output shown in the
/// README's "Observing a running server" quickstart.
fn stats_main() {
    let model = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed: 42,
        ..AdarNetConfig::default()
    });
    let ckpt = checkpoint::snapshot(&model, &NormStats::identity());
    let registry = Arc::new(ModelRegistry::new());
    registry.register("demo", ckpt);
    registry.activate("demo").unwrap();
    let server = Server::start(
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            max_linger: Duration::from_millis(2),
            workers: 1,
            cache_capacity: 1024,
        },
        registry,
    )
    .unwrap();
    let pool = field_pool(4, 16, 32, 7);
    let (_, _) = run_closed_loop(&server, &pool, 4, 4);
    server.shutdown();
    print!("{}", adarnet_obs::registry().render_text());
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("stats") {
        return stats_main();
    }
    let mut scale = std::env::var("ADARNET_SERVE_SCALE").unwrap_or_else(|_| "quick".into());
    if scale != "quick" && scale != "full" {
        eprintln!("warning: unknown ADARNET_SERVE_SCALE '{scale}', using quick");
        scale = "quick".into();
    }
    let (h, w, patch, default_requests) = match scale.as_str() {
        "full" => (64, 256, 16, 4),
        _ => (16, 32, 8, 8),
    };
    let requests_per_client = env_usize("ADARNET_SERVE_REQUESTS", default_requests);
    let out_path = std::env::var("ADARNET_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let concurrencies = [1usize, 8, 32];

    // One checkpoint shared by every run (weights are random — serving
    // cost does not depend on training quality).
    let model = AdarNet::new(AdarNetConfig {
        ph: patch,
        pw: patch,
        seed: 42,
        ..AdarNetConfig::default()
    });
    let ckpt = checkpoint::snapshot(&model, &NormStats::identity());

    let pool = field_pool(8, h, w, 1234);
    println!(
        "serve bench: scale={scale}, fields {h}x{w}, patch {patch}, pool {}",
        pool.len()
    );

    let mut runs: Vec<LoadReport> = Vec::new();
    let mut speedup_at_max = 0.0;

    for &concurrency in &concurrencies {
        let mut throughput = [0.0f64; 2];
        for (mode_idx, mode) in ["batched", "unbatched"].into_iter().enumerate() {
            let registry = Arc::new(ModelRegistry::new());
            registry.register("bench", checkpoint_clone(&ckpt));
            registry.activate("bench").unwrap();
            let base = ServeConfig {
                queue_capacity: 256,
                max_batch: 8,
                max_linger: Duration::from_millis(2),
                workers: 1,
                cache_capacity: 4096,
            };
            let cfg = if mode == "batched" {
                base
            } else {
                base.unbatched()
            };
            let server = Server::start(cfg, registry).unwrap();
            let window = LatencyWindow::start();
            let (observations, elapsed) =
                run_closed_loop(&server, &pool, concurrency, requests_per_client);
            let report = LoadReport::from_run(
                mode,
                concurrency,
                &server,
                &observations,
                elapsed,
                &window.finish(),
            );
            println!(
                "{:>9} c={:<3} {:>8.2} req/s  p50 {:>8.2} ms  p95 {:>8.2} ms  p99 {:>8.2} ms  max {:>8.2} ms  cache {:>3.0}%  shed {}",
                report.mode,
                report.concurrency,
                report.throughput_rps,
                report.p50_ms,
                report.p95_ms,
                report.p99_ms,
                report.max_ms,
                report.cache_hit_rate * 100.0,
                report.shed_queue_full + report.shed_inference_error,
            );
            throughput[mode_idx] = report.throughput_rps;
            runs.push(report);
            server.shutdown();
        }
        if concurrency == *concurrencies.last().unwrap() && throughput[1] > 0.0 {
            speedup_at_max = throughput[0] / throughput[1];
        }
    }
    println!("batched/unbatched speedup at c=32: {speedup_at_max:.2}x");

    // Saturation: queue bound 4, burst of 32 submissions before the
    // single worker can drain — overflow must shed, nothing may hang.
    let saturation = {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("bench", checkpoint_clone(&ckpt));
        registry.activate("bench").unwrap();
        let cfg = ServeConfig {
            queue_capacity: 4,
            max_batch: 4,
            max_linger: Duration::from_millis(20),
            workers: 1,
            cache_capacity: 0,
        };
        let burst = 32;
        let server = Server::start(cfg, registry).unwrap();
        let receivers: Vec<_> = (0..burst)
            .map(|i| server.submit(pool[i % pool.len()].clone()))
            .collect();
        let mut degraded = 0u64;
        let mut full = 0u64;
        for rx in receivers {
            match rx.recv().unwrap().kind {
                ResponseKind::Full => full += 1,
                _ => degraded += 1,
            }
        }
        let shed = server.stats().shed_queue_full;
        println!(
            "saturation: burst {burst} over capacity 4 -> {full} full, {degraded} degraded ({shed} shed at queue)"
        );
        server.shutdown();
        SaturationReport {
            queue_capacity: 4,
            burst,
            shed_queue_full: shed,
            degraded_seen: degraded,
            full_seen: full,
        }
    };

    let output = BenchOutput {
        scale,
        field_h: h,
        field_w: w,
        patch,
        pool_size: pool.len(),
        runs,
        batched_vs_unbatched_speedup_at_max_concurrency: speedup_at_max,
        saturation,
    };
    let json = serde_json::to_string_pretty(&output).expect("report serializes");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Ok(metrics_path) = std::env::var("ADARNET_SERVE_METRICS_OUT") {
        let text = adarnet_obs::registry().render_text();
        if let Err(e) = std::fs::write(&metrics_path, text) {
            eprintln!("error: cannot write {metrics_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {metrics_path}");
    }
}
