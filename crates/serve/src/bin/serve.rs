//! Closed-loop serving benchmark: trains nothing, serves a
//! freshly-initialized model under synthetic load, and writes
//! `BENCH_serve.json`.
//!
//! For each concurrency level (1/8/32) the driver runs the same
//! request stream twice:
//! * **batched** — micro-batching scheduler + decoded-patch cache (the
//!   serving system under test);
//! * **unbatched** — `max_batch = 1`, no linger, no cache (naive
//!   per-request inference, the baseline).
//!
//! A final saturation phase submits a burst far beyond the queue bound
//! to demonstrate load shedding: the overflow is answered with degraded
//! bin-0 responses, counted, and reported.
//!
//! An `engine_comparison` phase pits the lock-free shared engine (one
//! `Arc<InferenceEngine>` behind N worker slots) against the old
//! replica-per-worker architecture (N mutex-guarded engine copies
//! behind the same N slots). Worker concurrency is identical on both
//! sides, so the measured difference is engine sharing itself — lock
//! acquisition plus weight-cache residency — reported as throughput
//! and resident weight bytes for both.
//!
//! A `precision_comparison` phase hydrates an f32 and a bf16 engine
//! from the same checkpoint (narrowing happens at freeze, as the
//! registry does it for routed requests) and measures both under the
//! identical worker-slot discipline, interleaved best-of-3: throughput,
//! resident weight bytes, and the bf16/f32 ratios of each.
//!
//! Subcommand:
//! * `serve stats` — run a short demo load against a fresh server and
//!   print the obs registry's Prometheus-style exposition text (the
//!   "stats endpoint" of a process with no network listener).
//!
//! Environment knobs (all optional):
//! * `ADARNET_SERVE_SCALE` — `quick` (default; 16x32 fields, 8x8
//!   patches) or `full` (64x256 fields, 16x16 patches);
//! * `ADARNET_SERVE_REQUESTS` — requests per client;
//! * `ADARNET_SERVE_OUT` — output path (default `BENCH_serve.json`);
//! * `ADARNET_SERVE_METRICS_OUT` — also write the final exposition
//!   text (metrics snapshot) to this path.

use std::sync::Arc;
use std::time::Duration;

use adarnet_core::checkpoint;
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig};
use adarnet_serve::{
    field_pool, run_closed_loop, LatencyWindow, LoadReport, ModelRegistry, ResponseKind,
    ServeConfig, Server,
};
use serde::Serialize;

#[derive(Serialize)]
struct SaturationReport {
    queue_capacity: usize,
    burst: usize,
    shed_queue_full: u64,
    degraded_seen: u64,
    full_seen: u64,
}

#[derive(Serialize)]
struct EngineComparison {
    clients: usize,
    requests_per_client: usize,
    shared_throughput_rps: f64,
    /// Resident frozen-weight bytes with one shared engine.
    shared_weight_bytes_resident: u64,
    replica_workers: usize,
    replica_throughput_rps: f64,
    /// Resident weight bytes with one engine copy per worker.
    replica_weight_bytes_resident: u64,
    shared_vs_replica_speedup: f64,
}

#[derive(Serialize)]
struct PrecisionComparison {
    clients: usize,
    requests_per_client: usize,
    f32_throughput_rps: f64,
    /// Resident frozen-weight bytes of the f32 engine.
    f32_weight_bytes_resident: u64,
    bf16_throughput_rps: f64,
    /// Resident frozen-weight bytes of the bf16 engine (packed bf16
    /// panels + f32 bias; the acceptance bar is <= 0.55x f32).
    bf16_weight_bytes_resident: u64,
    bf16_vs_f32_speedup: f64,
    bf16_vs_f32_weight_bytes: f64,
}

#[derive(Serialize)]
struct BenchOutput {
    scale: String,
    field_h: usize,
    field_w: usize,
    patch: usize,
    pool_size: usize,
    runs: Vec<LoadReport>,
    batched_vs_unbatched_speedup_at_max_concurrency: f64,
    saturation: SaturationReport,
    engine_comparison: EngineComparison,
    precision_comparison: PrecisionComparison,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Closed-loop throughput of `clients` threads, each issuing
/// `requests` inferences through `infer`, round-robin over `pool`.
fn closed_loop_rps(
    pool: &[adarnet_tensor::Tensor<f32>],
    clients: usize,
    requests: usize,
    infer: impl Fn(&adarnet_tensor::Tensor<f32>) + Sync,
) -> f64 {
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let infer = &infer;
            scope.spawn(move || {
                for r in 0..requests {
                    infer(&pool[(c * requests + r) % pool.len()]);
                }
            });
        }
    });
    (clients * requests) as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

/// A counting semaphore bounding in-flight inferences to the worker
/// count, so both engine architectures run under the same concurrency
/// discipline and only the engine-sharing strategy differs.
struct WorkerSlots {
    free: std::sync::Mutex<usize>,
    cv: std::sync::Condvar,
}

impl WorkerSlots {
    fn new(n: usize) -> WorkerSlots {
        WorkerSlots {
            free: std::sync::Mutex::new(n),
            cv: std::sync::Condvar::new(),
        }
    }

    fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        let mut free = self.free.lock().expect("bench slots");
        while *free == 0 {
            free = self.cv.wait(free).expect("bench slots");
        }
        *free -= 1;
        drop(free);
        let r = f();
        *self.free.lock().expect("bench slots") += 1;
        self.cv.notify_one();
        r
    }
}

/// Shared lock-free engine vs. the old replica-per-worker shape: same
/// offered load (closed-loop clients) and the same worker concurrency
/// (`replica_workers` slots) on both sides; resident weight bytes and
/// throughput for both.
fn engine_comparison(
    ckpt: &adarnet_core::ModelCheckpoint,
    pool: &[adarnet_tensor::Tensor<f32>],
    clients: usize,
    requests: usize,
) -> EngineComparison {
    use adarnet_core::InferenceEngine;
    let replica_workers = 4usize;

    // Shared: one engine; up to `replica_workers` in-flight inferences
    // drive it concurrently with no lock.
    let shared = Arc::new(InferenceEngine::from_checkpoint(ckpt).expect("bench ckpt restores"));
    let shared_weight_bytes = shared.weight_bytes() as u64;
    let slots = WorkerSlots::new(replica_workers);
    let shared_infer = |f: &adarnet_tensor::Tensor<f32>| {
        slots.run(|| shared.infer(f).expect("bench inference").recycle());
    };

    // Replica-per-worker: N mutex-guarded copies (the pre-refactor
    // worker owned its engine exclusively; the mutex reproduces that
    // exclusivity). With at most N in flight and N replicas, a free
    // engine always exists; the scan finds it without queueing behind
    // a busy one.
    let replicas: Vec<std::sync::Mutex<InferenceEngine>> = (0..replica_workers)
        .map(|_| {
            std::sync::Mutex::new(
                InferenceEngine::from_checkpoint(ckpt).expect("bench ckpt restores"),
            )
        })
        .collect();
    let replica_weight_bytes = replicas
        .iter()
        .map(|m| m.lock().expect("bench mutex").weight_bytes() as u64)
        .sum::<u64>();
    let slots = WorkerSlots::new(replica_workers);
    let replica_infer = |f: &adarnet_tensor::Tensor<f32>| {
        slots.run(|| loop {
            for m in &replicas {
                if let Ok(engine) = m.try_lock() {
                    engine.infer(f).expect("bench inference").recycle();
                    return;
                }
            }
            std::thread::yield_now();
        });
    };
    // Interleaved best-of-reps (the obs_overhead gate's discipline):
    // alternating shared/replica measurements cancels machine drift on
    // the shared 1-core VM, and the per-side max is the cleanest
    // estimate of each architecture's capability. One untimed round
    // first warms the workspace pool and page cache for both.
    let warmup = requests.div_ceil(4);
    closed_loop_rps(pool, clients, warmup, shared_infer);
    closed_loop_rps(pool, clients, warmup, replica_infer);
    let (mut shared_rps, mut replica_rps) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        shared_rps = shared_rps.max(closed_loop_rps(pool, clients, requests, shared_infer));
        replica_rps = replica_rps.max(closed_loop_rps(pool, clients, requests, replica_infer));
    }

    EngineComparison {
        clients,
        requests_per_client: requests,
        shared_throughput_rps: shared_rps,
        shared_weight_bytes_resident: shared_weight_bytes,
        replica_workers,
        replica_throughput_rps: replica_rps,
        replica_weight_bytes_resident: replica_weight_bytes,
        shared_vs_replica_speedup: if replica_rps > 0.0 {
            shared_rps / replica_rps
        } else {
            0.0
        },
    }
}

/// The f32 plane vs. the bf16 plane, hydrated from the same checkpoint
/// (narrowing happens at freeze, exactly as the serving registry does
/// for per-request routing). Same worker-slot discipline and
/// interleaved best-of-3 measurement as [`engine_comparison`], so the
/// only difference under test is the weight plane itself: half-size
/// packed panels plus the per-call widening stage against full f32
/// panels.
fn precision_comparison(
    ckpt: &adarnet_core::ModelCheckpoint,
    pool: &[adarnet_tensor::Tensor<f32>],
    clients: usize,
    requests: usize,
) -> PrecisionComparison {
    use adarnet_core::InferenceEngine;
    use adarnet_serve::Precision;
    let workers = 4usize;

    let f32_engine = Arc::new(
        InferenceEngine::from_checkpoint_with(ckpt, Precision::F32).expect("bench ckpt restores"),
    );
    let bf16_engine = Arc::new(
        InferenceEngine::from_checkpoint_with(ckpt, Precision::Bf16).expect("bench ckpt restores"),
    );
    let f32_weight_bytes = f32_engine.weight_bytes() as u64;
    let bf16_weight_bytes = bf16_engine.weight_bytes() as u64;

    let slots = WorkerSlots::new(workers);
    let f32_infer = |f: &adarnet_tensor::Tensor<f32>| {
        slots.run(|| f32_engine.infer(f).expect("bench inference").recycle());
    };
    let slots2 = WorkerSlots::new(workers);
    let bf16_infer = |f: &adarnet_tensor::Tensor<f32>| {
        slots2.run(|| bf16_engine.infer(f).expect("bench inference").recycle());
    };

    let warmup = requests.div_ceil(4);
    closed_loop_rps(pool, clients, warmup, f32_infer);
    closed_loop_rps(pool, clients, warmup, bf16_infer);
    let (mut f32_rps, mut bf16_rps) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        f32_rps = f32_rps.max(closed_loop_rps(pool, clients, requests, f32_infer));
        bf16_rps = bf16_rps.max(closed_loop_rps(pool, clients, requests, bf16_infer));
    }

    PrecisionComparison {
        clients,
        requests_per_client: requests,
        f32_throughput_rps: f32_rps,
        f32_weight_bytes_resident: f32_weight_bytes,
        bf16_throughput_rps: bf16_rps,
        bf16_weight_bytes_resident: bf16_weight_bytes,
        bf16_vs_f32_speedup: if f32_rps > 0.0 { bf16_rps / f32_rps } else { 0.0 },
        bf16_vs_f32_weight_bytes: if f32_weight_bytes > 0 {
            bf16_weight_bytes as f64 / f32_weight_bytes as f64
        } else {
            0.0
        },
    }
}

/// `serve stats`: run a short demo load and print the metrics registry
/// as Prometheus exposition text — the closest thing a listener-less
/// process has to a `/metrics` endpoint, and the output shown in the
/// README's "Observing a running server" quickstart.
fn stats_main() {
    let model = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed: 42,
        ..AdarNetConfig::default()
    });
    let ckpt = checkpoint::snapshot(&model, &NormStats::identity());
    let registry = Arc::new(ModelRegistry::new());
    registry.register("demo", ckpt);
    registry.activate("demo").unwrap();
    let server = Server::start(
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            max_linger: Duration::from_millis(2),
            workers: 1,
            cache_capacity: 1024,
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();
    let pool = field_pool(4, 16, 32, 7);
    let (_, _) = run_closed_loop(&server, &pool, 4, 4);
    // A couple of explicitly-routed bf16 requests so the demo output
    // shows both weight planes: the second engine hydrates lazily on
    // first routed request, its gauges join the registry, and the
    // per-precision completion split below is non-trivial.
    for f in pool.iter().take(2) {
        let r = server.submit_wait_with(
            f.clone(),
            adarnet_serve::SubmitOptions {
                precision: Some(adarnet_serve::Precision::Bf16),
                ..adarnet_serve::SubmitOptions::default()
            },
        );
        r.prediction.recycle();
    }
    let stats = server.stats();
    server.shutdown();
    print!("{}", adarnet_obs::registry().render_text());
    for (i, n) in stats.completed_per_precision.iter().enumerate() {
        let p = adarnet_serve::Precision::from_index(i).expect("stats index is a precision");
        println!("# serve completions at precision {}: {n}", p.name());
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("stats") {
        return stats_main();
    }
    let mut scale = std::env::var("ADARNET_SERVE_SCALE").unwrap_or_else(|_| "quick".into());
    if scale != "quick" && scale != "full" {
        eprintln!("warning: unknown ADARNET_SERVE_SCALE '{scale}', using quick");
        scale = "quick".into();
    }
    let (h, w, patch, default_requests) = match scale.as_str() {
        "full" => (64, 256, 16, 4),
        _ => (16, 32, 8, 8),
    };
    let requests_per_client = env_usize("ADARNET_SERVE_REQUESTS", default_requests);
    let out_path = std::env::var("ADARNET_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let concurrencies = [1usize, 8, 32];

    // One checkpoint shared by every run (weights are random — serving
    // cost does not depend on training quality).
    let model = AdarNet::new(AdarNetConfig {
        ph: patch,
        pw: patch,
        seed: 42,
        ..AdarNetConfig::default()
    });
    let ckpt = checkpoint::snapshot(&model, &NormStats::identity());

    let pool = field_pool(8, h, w, 1234);
    println!(
        "serve bench: scale={scale}, fields {h}x{w}, patch {patch}, pool {}",
        pool.len()
    );

    let mut runs: Vec<LoadReport> = Vec::new();
    let mut speedup_at_max = 0.0;

    for &concurrency in &concurrencies {
        let mut throughput = [0.0f64; 2];
        for (mode_idx, mode) in ["batched", "unbatched"].into_iter().enumerate() {
            let registry = Arc::new(ModelRegistry::new());
            registry.register("bench", ckpt.clone());
            registry.activate("bench").unwrap();
            let base = ServeConfig {
                queue_capacity: 256,
                max_batch: 8,
                max_linger: Duration::from_millis(2),
                workers: 1,
                cache_capacity: 4096,
                ..ServeConfig::default()
            };
            let cfg = if mode == "batched" {
                base
            } else {
                base.unbatched()
            };
            let server = Server::start(cfg, registry).unwrap();
            let window = LatencyWindow::start();
            let (observations, elapsed) =
                run_closed_loop(&server, &pool, concurrency, requests_per_client);
            let report = LoadReport::from_run(
                mode,
                concurrency,
                &server,
                &observations,
                elapsed,
                &window.finish(),
            );
            println!(
                "{:>9} c={:<3} {:>8.2} req/s  p50 {:>8.2} ms  p95 {:>8.2} ms  p99 {:>8.2} ms  max {:>8.2} ms  cache {:>3.0}%  shed {}",
                report.mode,
                report.concurrency,
                report.throughput_rps,
                report.p50_ms,
                report.p95_ms,
                report.p99_ms,
                report.max_ms,
                report.cache_hit_rate * 100.0,
                report.shed_queue_full + report.shed_inference_error,
            );
            throughput[mode_idx] = report.throughput_rps;
            runs.push(report);
            server.shutdown();
        }
        if concurrency == *concurrencies.last().unwrap() && throughput[1] > 0.0 {
            speedup_at_max = throughput[0] / throughput[1];
        }
    }
    println!("batched/unbatched speedup at c=32: {speedup_at_max:.2}x");

    // Saturation: queue bound 4, burst of 32 submissions before the
    // single worker can drain — overflow must shed, nothing may hang.
    let saturation = {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("bench", ckpt.clone());
        registry.activate("bench").unwrap();
        let cfg = ServeConfig {
            queue_capacity: 4,
            max_batch: 4,
            max_linger: Duration::from_millis(20),
            workers: 1,
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let burst = 32;
        let server = Server::start(cfg, registry).unwrap();
        let receivers: Vec<_> = (0..burst)
            .map(|i| server.submit(pool[i % pool.len()].clone()))
            .collect();
        let mut degraded = 0u64;
        let mut full = 0u64;
        for rx in receivers {
            match rx.recv().unwrap().kind {
                ResponseKind::Full => full += 1,
                _ => degraded += 1,
            }
        }
        let shed = server.stats().shed_queue_full;
        println!(
            "saturation: burst {burst} over capacity 4 -> {full} full, {degraded} degraded ({shed} shed at queue)"
        );
        server.shutdown();
        SaturationReport {
            queue_capacity: 4,
            burst,
            shed_queue_full: shed,
            degraded_seen: degraded,
            full_seen: full,
        }
    };

    // Shared-engine vs. replica-per-worker at the highest concurrency.
    let comparison = engine_comparison(&ckpt, &pool, 32, requests_per_client);
    println!(
        "engine: shared {:.2} req/s ({} B resident) vs {}x replicas {:.2} req/s ({} B resident) -> {:.2}x",
        comparison.shared_throughput_rps,
        comparison.shared_weight_bytes_resident,
        comparison.replica_workers,
        comparison.replica_throughput_rps,
        comparison.replica_weight_bytes_resident,
        comparison.shared_vs_replica_speedup,
    );

    // f32 vs. bf16 weight plane from the same checkpoint, same load.
    let precision = precision_comparison(&ckpt, &pool, 32, requests_per_client);
    println!(
        "precision: f32 {:.2} req/s ({} B resident) vs bf16 {:.2} req/s ({} B resident) -> {:.2}x speed, {:.2}x bytes",
        precision.f32_throughput_rps,
        precision.f32_weight_bytes_resident,
        precision.bf16_throughput_rps,
        precision.bf16_weight_bytes_resident,
        precision.bf16_vs_f32_speedup,
        precision.bf16_vs_f32_weight_bytes,
    );

    let output = BenchOutput {
        scale,
        field_h: h,
        field_w: w,
        patch,
        pool_size: pool.len(),
        runs,
        batched_vs_unbatched_speedup_at_max_concurrency: speedup_at_max,
        saturation,
        engine_comparison: comparison,
        precision_comparison: precision,
    };
    let json = serde_json::to_string_pretty(&output).expect("report serializes");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Ok(metrics_path) = std::env::var("ADARNET_SERVE_METRICS_OUT") {
        let text = adarnet_obs::registry().render_text();
        if let Err(e) = std::fs::write(&metrics_path, text) {
            eprintln!("error: cannot write {metrics_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {metrics_path}");
    }
}
