//! Serving configuration.

use std::time::Duration;

use adarnet_nn::Precision;

use crate::lanes::NUM_LANES;
use crate::quota::QuotaConfig;

/// Maximum per-tenant precision overrides a config can carry (the
/// config stays `Copy`; beyond this, tenants ride the default plane or
/// set [`crate::SubmitOptions::precision`] per request).
pub const MAX_TENANT_PRECISION_OVERRIDES: usize = 8;

/// Tunables for the inference service.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bounded request-queue capacity *per lane*; submissions beyond
    /// this are shed (answered with a degraded bin-0 response instead
    /// of queued).
    pub queue_capacity: usize,
    /// Maximum requests fused into one decoder micro-batch.
    pub max_batch: usize,
    /// How long the batcher lingers for more requests after the first
    /// one is picked up, before dispatching a partial batch.
    pub max_linger: Duration,
    /// Worker threads. All workers share one frozen engine (one
    /// resident weight copy); this only sets batching concurrency.
    pub workers: usize,
    /// Decoded-patch cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Weighted-deficit credits per refill cycle for the
    /// interactive/standard/bulk lanes (each clamped ≥ 1; see
    /// [`crate::lanes::LaneQueue`]).
    pub lane_weights: [u64; NUM_LANES],
    /// Collapse every submission into the standard lane — the FIFO
    /// baseline configuration the lane benchmark compares against.
    pub fifo_only: bool,
    /// Per-tenant token-bucket admission quota; `None` admits every
    /// tenant unconditionally.
    pub quota: Option<QuotaConfig>,
    /// Weight-plane precision requests ride when neither the request
    /// nor its tenant asks for one. Defaults to
    /// [`Precision::active`]'s resolution of `ADARNET_PRECISION`.
    pub default_precision: Precision,
    /// Per-tenant precision overrides, consulted at admission after the
    /// per-request option and before `default_precision`. Fixed-size so
    /// the config stays `Copy`; empty slots are `None`.
    pub tenant_precision: [Option<(u64, Precision)>; MAX_TENANT_PRECISION_OVERRIDES],
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            max_linger: Duration::from_millis(2),
            workers: 1,
            cache_capacity: 4096,
            lane_weights: [8, 4, 1],
            fifo_only: false,
            quota: None,
            default_precision: Precision::active(),
            tenant_precision: [None; MAX_TENANT_PRECISION_OVERRIDES],
        }
    }
}

impl ServeConfig {
    /// Route every request of `tenant` to `precision` unless the
    /// request itself overrides. Panics if the override table is full
    /// ([`MAX_TENANT_PRECISION_OVERRIDES`]) — a static capacity bug,
    /// not a runtime condition.
    pub fn with_tenant_precision(mut self, tenant: u64, precision: Precision) -> ServeConfig {
        let slot = self
            .tenant_precision
            .iter_mut()
            .find(|s| s.is_none() || s.is_some_and(|(t, _)| t == tenant))
            .expect("tenant precision override table full");
        *slot = Some((tenant, precision));
        self
    }

    /// The plane a request from `tenant` rides absent a per-request
    /// override: the tenant's configured precision, else the default.
    pub fn precision_for_tenant(&self, tenant: u64) -> Precision {
        self.tenant_precision
            .iter()
            .flatten()
            .find(|(t, _)| *t == tenant)
            .map(|(_, p)| *p)
            .unwrap_or(self.default_precision)
    }

    /// The unbatched baseline: one request per decoder pass, no linger,
    /// no cache. This is the per-request-inference configuration the
    /// `serve_throughput` bench compares against.
    pub fn unbatched(self) -> ServeConfig {
        ServeConfig {
            max_batch: 1,
            max_linger: Duration::ZERO,
            cache_capacity: 0,
            ..self
        }
    }
}
