//! Serving configuration.

use std::time::Duration;

use crate::lanes::NUM_LANES;
use crate::quota::QuotaConfig;

/// Tunables for the inference service.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bounded request-queue capacity *per lane*; submissions beyond
    /// this are shed (answered with a degraded bin-0 response instead
    /// of queued).
    pub queue_capacity: usize,
    /// Maximum requests fused into one decoder micro-batch.
    pub max_batch: usize,
    /// How long the batcher lingers for more requests after the first
    /// one is picked up, before dispatching a partial batch.
    pub max_linger: Duration,
    /// Worker threads. All workers share one frozen engine (one
    /// resident weight copy); this only sets batching concurrency.
    pub workers: usize,
    /// Decoded-patch cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Weighted-deficit credits per refill cycle for the
    /// interactive/standard/bulk lanes (each clamped ≥ 1; see
    /// [`crate::lanes::LaneQueue`]).
    pub lane_weights: [u64; NUM_LANES],
    /// Collapse every submission into the standard lane — the FIFO
    /// baseline configuration the lane benchmark compares against.
    pub fifo_only: bool,
    /// Per-tenant token-bucket admission quota; `None` admits every
    /// tenant unconditionally.
    pub quota: Option<QuotaConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            max_linger: Duration::from_millis(2),
            workers: 1,
            cache_capacity: 4096,
            lane_weights: [8, 4, 1],
            fifo_only: false,
            quota: None,
        }
    }
}

impl ServeConfig {
    /// The unbatched baseline: one request per decoder pass, no linger,
    /// no cache. This is the per-request-inference configuration the
    /// `serve_throughput` bench compares against.
    pub fn unbatched(self) -> ServeConfig {
        ServeConfig {
            max_batch: 1,
            max_linger: Duration::ZERO,
            cache_capacity: 0,
            ..self
        }
    }
}
