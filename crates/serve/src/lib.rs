//! # adarnet-serve
//!
//! A multi-threaded inference service for trained ADARNet models,
//! turning the paper's batched non-uniform SR (Figure 1's motivation)
//! into a serving system:
//!
//! * **micro-batching** ([`server`]): concurrent requests are fused so
//!   same-bin patches from different requests share decoder batches —
//!   the cross-request generalization of `AdarNet::predict_batch`;
//! * **decoded-patch cache** ([`cache`]): content-hash-keyed LRU over
//!   decoder outputs; repeated freestream patches skip the decoder
//!   entirely, with bitwise-identical results;
//! * **shared frozen engine** ([`registry`], [`server`]): every worker
//!   clones one `Arc<InferenceEngine>` — one resident weight copy with
//!   pre-packed GEMM panels, no model lock;
//! * **reduced-precision planes** ([`registry`], [`config`],
//!   [`server`]): one shared engine per [`Precision`] weight plane
//!   (f32, bf16-packed panels with f32 accumulation), with per-request
//!   and per-tenant routing at admission — bf16 tenants ride ~0.25× the
//!   resident weight bytes, gated by the accuracy budget in
//!   `adarnet-core`;
//! * **model registry** ([`registry`]): named checkpoints with
//!   generation-counted hot swap — workers re-fetch the shared engine
//!   at batch boundaries, never mid-flight, and an in-flight batch
//!   completes on the old generation's weights;
//! * **priority lanes** ([`lanes`], [`server`]): three bounded lanes
//!   (interactive / standard / bulk) drained by weighted deficit
//!   pickup, so small latency-sensitive fields never queue behind bulk
//!   refinement jobs and bulk still cannot starve;
//! * **admission control** ([`quota`], [`server`]): per-tenant
//!   token-bucket quotas and deadline-aware brownouts — every rejected
//!   or expired request is answered with a typed
//!   [`server::RejectReason`] and its own counter, never silently shed;
//! * **backpressure** ([`server`]): bounded lanes that shed load by
//!   answering with a degraded bin-0 (no-SR) prediction instead of
//!   blocking, with observable shed counters;
//! * **load generation** ([`loadgen`]): a closed-loop synthetic driver
//!   over the `adarnet-dataset` families, reporting throughput and
//!   p50/p95/p99 latency (the `serve` bin writes `BENCH_serve.json`).

// The weight-plane precision axis is part of the serving API surface
// (per-request routing, per-tenant config) — re-export it so wire-layer
// crates don't need a direct `adarnet-nn` dependency.
pub use adarnet_nn::quantize::PRECISION_COUNT;
pub use adarnet_nn::Precision;

pub mod batch;
pub mod cache;
pub mod config;
pub mod lanes;
pub mod loadgen;
pub mod queue;
pub mod quota;
pub mod registry;
pub mod server;

pub use batch::{degraded_prediction, infer_cached};
pub use cache::{PatchCache, PatchKey};
pub use config::ServeConfig;
pub use lanes::{select_lane_spec, LaneQueue, Priority, NUM_LANES};
pub use loadgen::{
    field_pool, run_closed_loop, slowest_trace_hex, LatencyWindow, LoadReport, Observation,
    RejectBreakdown,
};
pub use queue::{BoundedQueue, PushOutcome};
pub use quota::{QuotaConfig, QuotaTable, TokenBucket};
pub use registry::{ActiveModel, ModelRegistry, RegistryError};
pub use server::{RejectReason, ResponseKind, ServeResponse, ServeStats, Server, SubmitOptions};
