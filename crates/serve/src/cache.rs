//! Decoded-patch cache: content-addressed, LRU-evicted, collision-proof.
//!
//! ADARNet's decoder is the expensive stage, and flow fields arriving at
//! a serving endpoint are highly repetitive — freestream patches of the
//! same case family are byte-identical across requests. The cache keys
//! each decoded patch by a content hash of everything that determines
//! its output: the model generation, the bin level, and the raw bytes
//! of the decoder-input tensor (LR patch + latent + coordinate
//! channels). Keying on the full decoder input rather than the bare LR
//! patch is what makes hits *bitwise* safe: two identical LR patches at
//! different grid positions get different coordinate channels, hence
//! different keys.
//!
//! Hash collisions cannot corrupt results: every entry stores its full
//! key bytes, a hit compares them, and a mismatch is treated as a miss
//! and overwritten.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use adarnet_core::sync;
use adarnet_tensor::Tensor;

/// FNV-1a 64-bit over a byte stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Content key of one decoded patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchKey {
    bytes: Vec<u8>,
    hash: u64,
}

impl PatchKey {
    /// Build the key for a decoder input at `level` under model
    /// `generation`.
    pub fn new(generation: u64, level: u8, decoder_input: &Tensor<f32>) -> PatchKey {
        let data = decoder_input.as_slice();
        let mut bytes = Vec::with_capacity(9 + 4 * data.len());
        bytes.extend_from_slice(&generation.to_le_bytes());
        bytes.push(level);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let hash = fnv1a(&bytes);
        PatchKey { bytes, hash }
    }
}

struct Entry {
    key_bytes: Vec<u8>,
    value: Tensor<f32>,
    tick: u64,
}

struct CacheInner {
    /// hash → entry. Collisions resolved by exact key-byte comparison.
    map: HashMap<u64, Entry>,
    /// recency tick → hash, oldest first (exact LRU order).
    recency: BTreeMap<u64, u64>,
    tick: u64,
}

/// Shared LRU cache of decoded patches with hit/miss counters.
pub struct PatchCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PatchCache {
    /// Create a cache holding at most `capacity` decoded patches.
    /// `capacity == 0` disables caching (every lookup misses, inserts
    /// are dropped).
    pub fn new(capacity: usize) -> PatchCache {
        PatchCache {
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether caching is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up a decoded patch, refreshing its recency on hit.
    pub fn get(&self, key: &PatchKey) -> Option<Tensor<f32>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            adarnet_obs::counter!("serve_cache_misses_total").inc();
            return None;
        }
        let mut inner = sync::lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key.hash) {
            if entry.key_bytes == key.bytes {
                let old_tick = entry.tick;
                entry.tick = tick;
                let value = entry.value.clone();
                inner.recency.remove(&old_tick);
                inner.recency.insert(tick, key.hash);
                self.hits.fetch_add(1, Ordering::Relaxed);
                adarnet_obs::counter!("serve_cache_hits_total").inc();
                return Some(value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        adarnet_obs::counter!("serve_cache_misses_total").inc();
        None
    }

    /// Insert a decoded patch, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&self, key: &PatchKey, value: Tensor<f32>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = sync::lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key.hash,
            Entry {
                key_bytes: key.bytes.clone(),
                value,
                tick,
            },
        ) {
            // Same hash slot reused (refresh or collision overwrite).
            inner.recency.remove(&old.tick);
        }
        inner.recency.insert(tick, key.hash);
        while inner.map.len() > self.capacity {
            let Some((&oldest_tick, &oldest_hash)) = inner.recency.iter().next() else {
                debug_assert!(false, "recency must track every entry");
                break;
            };
            inner.recency.remove(&oldest_tick);
            inner.map.remove(&oldest_hash);
        }
    }

    /// Drop every entry (e.g. on model hot-swap; entries are also
    /// generation-keyed, so this is an optimization, not correctness).
    pub fn clear(&self) {
        let mut inner = sync::lock(&self.inner);
        inner.map.clear();
        inner.recency.clear();
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        sync::lock(&self.inner).map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits / (hits + misses), or 0 with no traffic.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adarnet_tensor::Shape;

    fn patch(seed: f32) -> Tensor<f32> {
        Tensor::from_vec(
            Shape::d3(1, 2, 2),
            (0..4).map(|i| seed + i as f32).collect(),
        )
    }

    #[test]
    fn hit_after_insert_returns_identical_tensor() {
        let cache = PatchCache::new(8);
        let input = patch(1.0);
        let key = PatchKey::new(0, 2, &input);
        assert!(cache.get(&key).is_none());
        let decoded = patch(100.0);
        cache.insert(&key, decoded.clone());
        assert_eq!(cache.get(&key).unwrap(), decoded);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn level_and_generation_distinguish_identical_patches() {
        let cache = PatchCache::new(8);
        let input = patch(1.0);
        cache.insert(&PatchKey::new(0, 1, &input), patch(10.0));
        assert!(cache.get(&PatchKey::new(0, 2, &input)).is_none());
        assert!(cache.get(&PatchKey::new(1, 1, &input)).is_none());
        assert_eq!(
            cache.get(&PatchKey::new(0, 1, &input)).unwrap(),
            patch(10.0)
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PatchCache::new(2);
        let (ka, kb, kc) = (
            PatchKey::new(0, 0, &patch(1.0)),
            PatchKey::new(0, 0, &patch(2.0)),
            PatchKey::new(0, 0, &patch(3.0)),
        );
        cache.insert(&ka, patch(10.0));
        cache.insert(&kb, patch(20.0));
        // Touch A so B is now the LRU entry.
        assert!(cache.get(&ka).is_some());
        cache.insert(&kc, patch(30.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&kb).is_none(), "B should be evicted");
        assert!(cache.get(&ka).is_some());
        assert!(cache.get(&kc).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = PatchCache::new(0);
        let key = PatchKey::new(0, 0, &patch(1.0));
        cache.insert(&key, patch(9.0));
        assert!(cache.get(&key).is_none());
        assert!(!cache.enabled());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties() {
        let cache = PatchCache::new(4);
        cache.insert(&PatchKey::new(0, 0, &patch(1.0)), patch(5.0));
        cache.clear();
        assert!(cache.is_empty());
    }
}
