//! The bounded micro-batch queue, extracted from the server so the
//! `check` crate's deterministic model checker can drive it directly.
//!
//! Semantics (the oracle in `crates/check` re-states these as a
//! sequential shadow model):
//!
//! * **bounded**: at most `capacity` items are ever queued; a push
//!   against a full queue returns the item to the caller
//!   ([`PushOutcome::Saturated`]) instead of blocking or dropping it —
//!   the server turns that into a degraded bin-0 response;
//! * **FIFO**: items pop in push order, and every accepted item pops
//!   exactly once (patch-count conservation starts here);
//! * **batching**: [`BoundedQueue::pop_batch`] blocks for the first
//!   item, then lingers up to a deadline to fuse more arrivals into one
//!   micro-batch, never exceeding `max` items;
//! * **shutdown**: after [`BoundedQueue::shutdown`], pushes are
//!   rejected, already-queued items drain, and poppers return `None`
//!   once the queue is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use adarnet_core::sync;

/// What happened to a pushed item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome<T> {
    /// The item was queued and will be served.
    Enqueued,
    /// The queue was at capacity; the item comes back to the caller.
    Saturated(T),
    /// The queue is shut down; the item comes back to the caller.
    Rejected(T),
}

impl<T> PushOutcome<T> {
    /// Whether the item was accepted.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, PushOutcome::Enqueued)
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

/// A bounded, shutdown-aware MPMC queue with batched popping.
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    notify: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                shutdown: false,
            }),
            notify: Condvar::new(),
        }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer one item. Never blocks: a full queue saturates and a shut
    /// down queue rejects, both returning the item.
    pub fn push(&self, item: T) -> PushOutcome<T> {
        {
            let mut inner = sync::lock(&self.inner);
            if inner.shutdown {
                return PushOutcome::Rejected(item);
            }
            if inner.items.len() >= self.capacity {
                return PushOutcome::Saturated(item);
            }
            inner.items.push_back(item);
        }
        self.notify.notify_one();
        PushOutcome::Enqueued
    }

    /// Pop one item if immediately available (model-checker entry
    /// point; the server uses [`BoundedQueue::pop_batch`]).
    pub fn try_pop(&self) -> Option<T> {
        sync::lock(&self.inner).items.pop_front()
    }

    /// Pop up to `max` immediately available items without blocking.
    pub fn try_pop_batch(&self, max: usize) -> Vec<T> {
        let mut inner = sync::lock(&self.inner);
        let take = inner.items.len().min(max.max(1));
        inner.items.drain(..take).collect()
    }

    /// Block for the first item, then linger up to `linger` fusing more
    /// arrivals, returning a batch of 1..=`max` items. Returns `None`
    /// only when the queue is shut down *and* drained.
    pub fn pop_batch(&self, max: usize, linger: Duration) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut inner = sync::lock(&self.inner);
        loop {
            if !inner.items.is_empty() {
                break;
            }
            if inner.shutdown {
                return None;
            }
            inner = sync::wait(&self.notify, inner);
        }
        let mut batch = Vec::with_capacity(max.min(inner.items.len()));
        if let Some(first) = inner.items.pop_front() {
            batch.push(first);
        }
        let deadline = Instant::now() + linger;
        while batch.len() < max {
            if let Some(item) = inner.items.pop_front() {
                batch.push(item);
                continue;
            }
            let now = Instant::now();
            if now >= deadline || inner.shutdown {
                break;
            }
            inner = sync::wait_timeout(&self.notify, inner, deadline - now);
        }
        Some(batch)
    }

    /// Stop accepting new items and wake every blocked popper. Queued
    /// items still drain.
    pub fn shutdown(&self) {
        {
            let mut inner = sync::lock(&self.inner);
            inner.shutdown = true;
        }
        self.notify.notify_all();
    }

    /// Whether [`BoundedQueue::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        sync::lock(&self.inner).shutdown
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        sync::lock(&self.inner).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_enqueued());
        assert!(q.push(2).is_enqueued());
        assert_eq!(q.push(3), PushOutcome::Saturated(3));
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.push(3).is_enqueued());
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn shutdown_rejects_new_but_drains_old() {
        let q = BoundedQueue::new(4);
        assert!(q.push(10).is_enqueued());
        q.shutdown();
        assert_eq!(q.push(11), PushOutcome::Rejected(11));
        assert_eq!(q.pop_batch(8, Duration::ZERO), Some(vec![10]));
        assert_eq!(q.pop_batch(8, Duration::ZERO), None);
    }

    #[test]
    fn pop_batch_fuses_queued_items_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            assert!(q.push(i).is_enqueued());
        }
        let batch = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        assert_eq!(q.try_pop_batch(10), vec![3, 4]);
    }

    #[test]
    fn pop_batch_wakes_on_cross_thread_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop_batch(4, Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(10));
        assert!(q.push(42).is_enqueued());
        let batch = h.join().expect("popper panicked");
        assert_eq!(batch, Some(vec![42]));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push(1).is_enqueued());
        assert_eq!(q.push(2), PushOutcome::Saturated(2));
    }
}
