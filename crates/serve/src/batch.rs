//! Cache-aware micro-batch inference and the degraded bin-0 fallback.
//!
//! [`infer_cached`] is the serving-side twin of
//! `AdarNet::predict_batch`: same-bin patches from every request in the
//! micro-batch form one decoder batch, but each patch first consults
//! the [`PatchCache`] — only misses are decoded, and fresh decodes are
//! inserted for the next request. Because cache values are the exact
//! tensors the decoder produced (keyed on the exact decoder input),
//! predictions are bitwise identical with the cache on or off.
//!
//! [`degraded_prediction`] is the load-shedding path: a bin-0-everywhere
//! "prediction" whose patches are the raw (normalized) LR patches — no
//! scorer, no decoder, no model at all. It is what a saturated server
//! answers instead of queueing, mirroring how an AMR code under memory
//! pressure falls back to the unrefined mesh.

use std::time::Instant;

use adarnet_amr::PatchLayout;
use adarnet_core::engine::{EngineError, InferenceEngine};
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNetConfig, ForwardPlan, Prediction};
use adarnet_core::ranker::Binning;
use adarnet_obs::trace::TraceCtx;
use adarnet_tensor::{Shape, Tensor};

use crate::cache::{PatchCache, PatchKey};

/// Batched inference over raw LR fields with decoded-patch caching.
///
/// `generation` namespaces cache keys so entries from a hot-swapped-out
/// model can never serve a hit for the new one. The whole pass is
/// `&engine` — the frozen weight plane is shared, so any number of
/// workers run this concurrently against one engine.
///
/// `traces` runs parallel to `fields` (`&[]` = nothing traced): a
/// bin's shared decoder forward is recorded as a `stage_decoder` span
/// under every traced request contributing patches to that bin — the
/// per-bin decode attribution the admin endpoint's span trees show.
pub fn infer_cached(
    engine: &InferenceEngine,
    generation: u64,
    fields: &[Tensor<f32>],
    traces: &[Option<TraceCtx>],
    cache: &PatchCache,
) -> Result<Vec<Prediction>, EngineError> {
    if fields.is_empty() {
        return Ok(Vec::new());
    }
    let norm = *engine.norm();
    let bins = engine.config().bins;
    let frozen = engine.frozen();
    let normalized: Vec<Tensor<f32>> = fields.iter().map(|x| norm.normalize(x)).collect();
    let plans: Result<Vec<ForwardPlan>, _> =
        normalized.iter().map(|x| frozen.try_plan(x)).collect();
    for x in normalized {
        x.recycle();
    }
    let plans = plans?;
    let mut outputs: Vec<Vec<Option<Tensor<f32>>>> = plans
        .iter()
        .map(|p| (0..p.layout.num_patches()).map(|_| None).collect())
        .collect();

    for bin in 0..bins {
        // Gather this bin's (sample, patch) pairs across the whole
        // micro-batch, resolving cache hits up front.
        let mut owners: Vec<(usize, usize, PatchKey)> = Vec::new();
        let mut inputs: Vec<Tensor<f32>> = Vec::new();
        for (si, plan) in plans.iter().enumerate() {
            for &pi in &plan.binning.groups[bin as usize] {
                let dec_in = plan.decoder_input(pi);
                let key = PatchKey::new(generation, bin, &dec_in);
                if let Some(hit) = cache.get(&key) {
                    outputs[si][pi] = Some(hit);
                } else {
                    owners.push((si, pi, key));
                    inputs.push(dec_in);
                }
            }
        }
        if inputs.is_empty() {
            continue;
        }
        let batch = Tensor::pooled_stack(&inputs);
        for dec_in in inputs {
            dec_in.recycle();
        }
        let decode_start = Instant::now();
        let out = {
            let _span = adarnet_obs::span!("stage_decoder", bin = bin);
            frozen.decoder().forward(&batch)
        };
        batch.recycle();
        // Attribute the shared decode to each traced request whose
        // patches rode this bin's decoder batch.
        let decode_ns = decode_start.elapsed().as_nanos() as u64;
        let mut seen = usize::MAX;
        for &(si, _, _) in &owners {
            if si == seen {
                continue;
            }
            seen = si;
            if let Some(ctx) = traces.get(si).copied().flatten() {
                adarnet_obs::trace::arena().record(
                    ctx,
                    "stage_decoder",
                    decode_ns,
                    "bin",
                    bin as u64,
                );
            }
        }
        for (k, (si, pi, key)) in owners.into_iter().enumerate() {
            let image = out.pooled_image(k);
            // The cache owns an independent copy; the pooled image
            // travels with the prediction and is recycled by callers.
            cache.insert(&key, image.clone());
            outputs[si][pi] = Some(image);
        }
        out.recycle();
    }

    Ok(plans
        .into_iter()
        .zip(outputs)
        .map(|(plan, patches)| {
            let ForwardPlan {
                layout,
                scores,
                aug,
                binning,
            } = plan;
            aug.recycle();
            Prediction {
                layout,
                binning,
                patches: patches
                    .into_iter()
                    .map(|p| p.expect("per-bin loops fill every patch"))
                    .collect(),
                scores,
            }
        })
        .collect())
}

/// Build the bin-0 fallback for one raw `(C, H, W)` LR field: every
/// patch at level 0, patch contents = the normalized LR patches
/// themselves (what "no super-resolution" means in this pipeline).
pub fn degraded_prediction(
    norm: &NormStats,
    cfg: AdarNetConfig,
    field: &Tensor<f32>,
) -> Prediction {
    assert_eq!(field.shape().rank(), 3, "expected a (C, H, W) field");
    assert_eq!(field.dim(0), cfg.in_channels, "channel count mismatch");
    let (h, w) = (field.dim(1), field.dim(2));
    let layout = PatchLayout::for_field(h, w, cfg.ph, cfg.pw);
    let n = layout.num_patches();
    let normalized = norm.normalize(field);

    let patches: Vec<Tensor<f32>> = (0..n)
        .map(|idx| {
            let (py, px) = layout.coords(idx);
            normalized.pooled_extract_patch(py * layout.ph, px * layout.pw, layout.ph, layout.pw)
        })
        .collect();
    normalized.recycle();

    let mut groups = vec![Vec::new(); cfg.bins as usize];
    groups[0] = (0..n).collect();
    Prediction {
        layout,
        binning: Binning {
            bin_of_patch: vec![0; n],
            groups,
        },
        patches,
        scores: Tensor::<f32>::pooled_zeroed(Shape::d4(1, 1, layout.npy, layout.npx)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adarnet_core::network::AdarNet;

    fn sample(h: usize, w: usize, phase: f32) -> Tensor<f32> {
        Tensor::from_vec(
            Shape::d3(4, h, w),
            (0..4 * h * w)
                .map(|i| ((i as f32) * 0.017 + phase).sin())
                .collect(),
        )
    }

    fn tiny_engine(seed: u64) -> InferenceEngine {
        let model = AdarNet::new(AdarNetConfig {
            ph: 8,
            pw: 8,
            seed,
            ..AdarNetConfig::default()
        });
        InferenceEngine::new(model, NormStats::identity())
    }

    #[test]
    fn cached_inference_matches_uncached_bitwise() {
        let engine = tiny_engine(3);
        let fields = vec![sample(16, 32, 0.0), sample(16, 32, 1.1)];
        let cache = PatchCache::new(512);
        let disabled = PatchCache::new(0);
        let warm = infer_cached(&engine, 1, &fields, &[], &cache).unwrap();
        // Second pass: now everything hits the cache.
        let hot = infer_cached(&engine, 1, &fields, &[], &cache).unwrap();
        let cold = infer_cached(&engine, 1, &fields, &[], &disabled).unwrap();
        assert!(cache.hits() > 0, "second pass must hit");
        for (a, b) in warm.iter().zip(&hot) {
            assert_eq!(a.binning.bin_of_patch, b.binning.bin_of_patch);
            for (x, y) in a.patches.iter().zip(&b.patches) {
                assert_eq!(x, y);
            }
        }
        for (a, b) in warm.iter().zip(&cold) {
            for (x, y) in a.patches.iter().zip(&b.patches) {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn generation_change_invalidates_hits() {
        let engine = tiny_engine(4);
        let fields = vec![sample(16, 16, 0.5)];
        let cache = PatchCache::new(512);
        infer_cached(&engine, 1, &fields, &[], &cache).unwrap();
        let hits_before = cache.hits();
        infer_cached(&engine, 2, &fields, &[], &cache).unwrap();
        assert_eq!(cache.hits(), hits_before, "new generation must not hit");
    }

    #[test]
    fn degraded_prediction_is_all_bin_zero_lr_patches() {
        let cfg = AdarNetConfig {
            ph: 8,
            pw: 8,
            ..AdarNetConfig::default()
        };
        let norm = NormStats::identity();
        let field = sample(16, 32, 0.0);
        let pred = degraded_prediction(&norm, cfg, &field);
        assert_eq!(pred.patches.len(), 2 * 4);
        assert!(pred.binning.bin_of_patch.iter().all(|&b| b == 0));
        assert_eq!(pred.active_cells(), 16 * 32);
        for p in &pred.patches {
            assert_eq!((p.dim(0), p.dim(1), p.dim(2)), (4, 8, 8));
        }
        // Patch 0 is the top-left LR patch verbatim.
        assert_eq!(pred.patches[0].get3(0, 0, 0), field.get3(0, 0, 0));
    }
}
