//! Per-tenant token-bucket admission quotas.
//!
//! Each tenant owns a token bucket: `burst` tokens of instantaneous
//! headroom, refilled continuously at `rate_per_sec` tokens per second.
//! A request takes one token at admission; an empty bucket means the
//! request is shed (degraded bin-0 response with
//! [`crate::server::RejectReason::QuotaExceeded`]) before it can touch
//! the lanes — one tenant flooding bulk traffic cannot consume another
//! tenant's queue capacity.
//!
//! All arithmetic is in integer *nano-tokens* (`1 token = 1e9
//! nano-tokens`) against a caller-supplied `now_ns` clock, so refill is
//! exact (no float drift), deterministic under a logical clock, and
//! checkable by the `QuotaModel` oracle in `crates/check`: over any
//! window, `granted ≤ burst + elapsed_ns * rate / 1e9` (conservation).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use adarnet_core::sync;

/// Nano-tokens per token.
const NANO: u64 = 1_000_000_000;

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Sustained admission rate, tokens (requests) per second. Clamped
    /// to ≥ 1.
    pub rate_per_sec: u64,
    /// Instantaneous burst headroom, tokens. Clamped to ≥ 1.
    pub burst: u64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            rate_per_sec: 1000,
            burst: 100,
        }
    }
}

/// A single tenant's bucket. Pure state machine over a `now_ns` clock —
/// no internal time source — so the model checker can drive it with a
/// logical clock and the server drives it with [`Instant`].
#[derive(Debug, Clone)]
pub struct TokenBucket {
    cfg: QuotaConfig,
    /// Current fill, nano-tokens. Invariant: `≤ burst * NANO`.
    tokens_nano: u64,
    /// Clock value at the last refill.
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket that starts full (a new tenant gets its burst headroom
    /// immediately).
    pub fn new(cfg: QuotaConfig, now_ns: u64) -> TokenBucket {
        let cfg = QuotaConfig {
            rate_per_sec: cfg.rate_per_sec.max(1),
            burst: cfg.burst.max(1),
        };
        TokenBucket {
            cfg,
            tokens_nano: cfg.burst.saturating_mul(NANO),
            last_ns: now_ns,
        }
    }

    /// Refill for the elapsed clock, then try to take one token.
    /// Returns whether the request is admitted. A non-monotonic clock
    /// (now < last) refills nothing rather than underflowing.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        let elapsed = now_ns.saturating_sub(self.last_ns);
        self.last_ns = self.last_ns.max(now_ns);
        let cap = self.cfg.burst.saturating_mul(NANO);
        let refill = (elapsed as u128).saturating_mul(self.cfg.rate_per_sec as u128);
        let refill = u64::try_from(refill).unwrap_or(u64::MAX);
        self.tokens_nano = self.tokens_nano.saturating_add(refill).min(cap);
        if self.tokens_nano >= NANO {
            self.tokens_nano -= NANO;
            true
        } else {
            false
        }
    }

    /// Current fill in whole tokens (diagnostic).
    pub fn available(&self) -> u64 {
        self.tokens_nano / NANO
    }

    /// The limits this bucket enforces.
    pub fn config(&self) -> QuotaConfig {
        self.cfg
    }
}

/// Lazily-populated map of tenant id → bucket, sharing one
/// [`QuotaConfig`] (per-tenant overrides can layer on later without a
/// wire change — the frame already carries the tenant id). A tenant's
/// bucket is created full on first sight.
pub struct QuotaTable {
    cfg: QuotaConfig,
    epoch: Instant,
    buckets: Mutex<HashMap<u64, TokenBucket>>,
}

impl QuotaTable {
    /// Build a table enforcing `cfg` for every tenant.
    pub fn new(cfg: QuotaConfig) -> QuotaTable {
        QuotaTable {
            cfg,
            epoch: Instant::now(),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Admit-or-shed decision for one request from `tenant`, against
    /// the wall clock.
    pub fn try_take(&self, tenant: u64) -> bool {
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        self.try_take_at(tenant, now_ns)
    }

    /// Clock-explicit variant (tests and the model checker).
    pub fn try_take_at(&self, tenant: u64, now_ns: u64) -> bool {
        let mut buckets = sync::lock(&self.buckets);
        buckets
            .entry(tenant)
            .or_insert_with(|| TokenBucket::new(self.cfg, now_ns))
            .try_take(now_ns)
    }

    /// Tenants seen so far.
    pub fn tenants(&self) -> usize {
        sync::lock(&self.buckets).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: QuotaConfig = QuotaConfig {
        rate_per_sec: 10,
        burst: 3,
    };

    #[test]
    fn burst_then_deny_then_refill() {
        let mut b = TokenBucket::new(CFG, 0);
        // Full burst available immediately.
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst exhausted");
        // 10 tokens/s → one token every 100ms.
        assert!(!b.try_take(50_000_000), "half a token is not a token");
        assert!(b.try_take(100_000_000));
        assert!(!b.try_take(100_000_000), "spent the refilled token");
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(CFG, 0);
        for _ in 0..CFG.burst {
            assert!(b.try_take(0));
        }
        // A long idle period refills to burst, not beyond.
        let much_later = 3600 * NANO;
        for _ in 0..CFG.burst {
            assert!(b.try_take(much_later));
        }
        assert!(!b.try_take(much_later), "cap exceeded");
    }

    #[test]
    fn conservation_over_a_window() {
        // granted ≤ burst + elapsed * rate / 1e9, for a dense request
        // stream at a fixed tick.
        let mut b = TokenBucket::new(CFG, 0);
        let tick = 17_000_000u64; // 17ms
        let mut granted = 0u64;
        let mut now = 0u64;
        for _ in 0..200 {
            if b.try_take(now) {
                granted += 1;
            }
            now += tick;
        }
        let elapsed = 199 * tick;
        let bound = CFG.burst + (elapsed as u128 * CFG.rate_per_sec as u128 / NANO as u128) as u64;
        assert!(granted <= bound + 1, "granted {granted} > bound {bound}");
        // And the bucket is not uselessly strict: sustained rate is
        // achieved within rounding.
        assert!(
            granted + 2 >= bound.min(200),
            "granted {granted} far below bound {bound}"
        );
    }

    #[test]
    fn non_monotonic_clock_is_tolerated() {
        let mut b = TokenBucket::new(CFG, NANO);
        for _ in 0..CFG.burst {
            assert!(b.try_take(NANO));
        }
        // Clock jumps backwards: no refill, no underflow, no panic.
        assert!(!b.try_take(0));
        // Forward progress from the max clock seen still refills.
        assert!(b.try_take(NANO + 100_000_000));
    }

    #[test]
    fn table_isolates_tenants() {
        let table = QuotaTable::new(QuotaConfig {
            rate_per_sec: 1,
            burst: 2,
        });
        assert!(table.try_take_at(1, 0));
        assert!(table.try_take_at(1, 0));
        assert!(!table.try_take_at(1, 0), "tenant 1 exhausted");
        // Tenant 2's bucket is untouched.
        assert!(table.try_take_at(2, 0));
        assert_eq!(table.tenants(), 2);
    }
}
