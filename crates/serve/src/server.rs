//! The inference server: priority lanes → quota-gated admission →
//! micro-batcher → decoder workers, with typed load shedding, deadline
//! brownouts, and hot-swap awareness.
//!
//! Requests enter a three-lane [`LaneQueue`] (interactive / standard /
//! bulk, weighted deficit pickup — see `lanes.rs` for the scheduling
//! spec). Admission runs a small state machine *before* anything is
//! queued:
//!
//! 1. **deadline** — a request already past its deadline is answered
//!    immediately with the degraded bin-0 brownout response
//!    ([`RejectReason::DeadlineExceeded`]) instead of wasting a lane
//!    slot;
//! 2. **quota** — each tenant draws one token from its bucket
//!    ([`crate::quota::QuotaTable`]); an empty bucket sheds the request
//!    ([`RejectReason::QuotaExceeded`]) so one tenant cannot consume
//!    another's queue capacity;
//! 3. **lane push** — a full lane sheds ([`RejectReason::QueueFull`]),
//!    a shut-down server sheds ([`RejectReason::Shutdown`]). Every
//!    reject path is *typed* and increments its own obs counter — no
//!    reason is ever lumped with another.
//!
//! Every worker thread shares **one** frozen engine per routed
//! precision (`Arc<InferenceEngine>` from [`ModelRegistry::shared_with`])
//! — one resident weight copy per weight plane regardless of worker
//! count, and planes nobody routes to are never built; a worker pops one
//! lane-pure batch, lingers up to `max_linger` for more arrivals from
//! the same lane, drops any request whose deadline expired while
//! queued (answered with the brownout, not silently shed), and runs the
//! survivors through [`crate::batch::infer_cached`] so same-bin patches
//! from concurrent requests share decoder batches. A hot swap is an
//! `Arc` swap: workers re-fetch the shared engine at the next batch
//! boundary, and a batch in flight during the swap completes on the old
//! generation's weights (its `Arc` keeps them alive). Inference errors
//! (e.g. NaN scores from a bad checkpoint) degrade the affected
//! requests instead of killing the worker — no path in this module
//! panics (the in-repo lint enforces it; the model checker in
//! `crates/check` exercises the lane/quota/cache/registry
//! interleavings).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNetConfig, Prediction};
use adarnet_nn::quantize::PRECISION_COUNT;
use adarnet_nn::Precision;
use adarnet_obs::trace::{self, TraceCtx};
use adarnet_tensor::Tensor;

use crate::batch::{degraded_prediction, infer_cached};
use crate::cache::PatchCache;
use crate::config::ServeConfig;
use crate::lanes::{LaneQueue, Priority};
use crate::queue::PushOutcome;
use crate::registry::{ModelRegistry, RegistryError};

/// Why a request was not served in full. Carried in the response (and
/// on the wire by `crates/net`) so clients can distinguish "slow down"
/// from "shrink your deadline" from "the server is going away".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The request's lane was at capacity.
    QueueFull,
    /// The tenant's token bucket was empty at admission.
    QuotaExceeded,
    /// The deadline had passed — at admission or while queued.
    DeadlineExceeded,
    /// The server is shutting down.
    Shutdown,
    /// Inference failed for the batch carrying this request.
    InferenceError,
}

impl RejectReason {
    /// Stable wire/report tag.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::QuotaExceeded => "quota_exceeded",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
            RejectReason::Shutdown => "shutdown",
            RejectReason::InferenceError => "inference_error",
        }
    }
}

/// Why a response is what it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// Full ADARNet inference.
    Full,
    /// Bin-0 fallback because the request's lane was saturated.
    ShedQueueFull,
    /// Bin-0 fallback because inference failed for this batch.
    ShedInferenceError,
    /// Bin-0 fallback because the tenant exceeded its quota.
    ShedQuota,
    /// Bin-0 fallback because the server is shutting down.
    ShedShutdown,
    /// Bin-0 brownout because the deadline passed before inference
    /// could start — answered, never silently dropped.
    BrownoutDeadline,
}

impl ResponseKind {
    /// Whether this response was degraded rather than fully inferred.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, ResponseKind::Full)
    }

    /// The typed reject reason, `None` for a full response.
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self {
            ResponseKind::Full => None,
            ResponseKind::ShedQueueFull => Some(RejectReason::QueueFull),
            ResponseKind::ShedInferenceError => Some(RejectReason::InferenceError),
            ResponseKind::ShedQuota => Some(RejectReason::QuotaExceeded),
            ResponseKind::ShedShutdown => Some(RejectReason::Shutdown),
            ResponseKind::BrownoutDeadline => Some(RejectReason::DeadlineExceeded),
        }
    }
}

/// Per-request admission options. [`Default`] is the pre-lane behavior:
/// standard lane, tenant 0, no deadline.
#[derive(Debug, Clone, Copy)]
pub struct SubmitOptions {
    /// Which lane the request rides (ignored under
    /// [`ServeConfig::fifo_only`], which maps everything to standard).
    pub priority: Priority,
    /// Tenant id for quota accounting and per-tenant counters.
    pub tenant: u64,
    /// Absolute deadline; past it, the request is answered with the
    /// degraded brownout instead of being inferred.
    pub deadline: Option<Instant>,
    /// Trace context for per-request attribution (DESIGN.md §16).
    /// `None` = untraced: the request pays one branch per span site
    /// and nothing else.
    pub trace: Option<TraceCtx>,
    /// Weight-plane precision for this request. `None` resolves at
    /// admission: the tenant's configured plane
    /// ([`ServeConfig::precision_for_tenant`]), else the server
    /// default.
    pub precision: Option<Precision>,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            priority: Priority::Standard,
            tenant: 0,
            deadline: None,
            trace: None,
            precision: None,
        }
    }
}

/// One answered request.
pub struct ServeResponse {
    /// The (possibly degraded) prediction, in normalized units.
    pub prediction: Prediction,
    /// Full or degraded, and why.
    pub kind: ResponseKind,
    /// Server-side latency from submission to completion.
    pub latency: Duration,
    /// Model generation that served the request (0 for shed responses
    /// answered without touching the model).
    pub generation: u64,
    /// Lane the request was admitted to.
    pub priority: Priority,
    /// Trace id the request carried (0 = untraced). The span tree, if
    /// the tail sampler retained it, is served on the admin endpoint's
    /// `/traces` under this id.
    pub trace_id: u64,
    /// Weight-plane precision the request was routed to at admission
    /// (degraded responses report the plane the request *would* have
    /// ridden).
    pub precision: Precision,
}

struct Job {
    field: Tensor<f32>,
    submitted: Instant,
    deadline: Option<Instant>,
    tenant: u64,
    priority: Priority,
    precision: Precision,
    trace: Option<TraceCtx>,
    reply: Sender<ServeResponse>,
}

/// Point-in-time view of the server's monotone counters, taken by
/// [`Server::stats`] behind an acquire fence. The per-server cells are
/// the exact source of truth (the process-global obs registry mirrors
/// them for fleet dashboards, but multiple servers in one process — the
/// test suite, notably — share that registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Fully served requests.
    pub completed: u64,
    /// Requests shed at submission (lane full).
    pub shed_queue_full: u64,
    /// Requests degraded because inference errored.
    pub shed_inference_error: u64,
    /// Requests shed at admission because the tenant's bucket was empty.
    pub shed_quota: u64,
    /// Requests shed because the server was shutting down.
    pub shed_shutdown: u64,
    /// Requests answered with the deadline brownout (at admission or
    /// after queueing).
    pub brownout_deadline: u64,
    /// Decoder micro-batches dispatched.
    pub batches: u64,
    /// Requests carried by those batches (batches ≤ this; the ratio is
    /// the achieved batching factor).
    pub batched_requests: u64,
    /// Shared-engine swaps observed by workers after hot swaps.
    pub engine_swaps: u64,
    /// Fully served requests per lane (interactive/standard/bulk).
    pub completed_per_lane: [u64; 3],
    /// Fully served requests per weight-plane precision, indexed by
    /// [`Precision::index`] (f32, bf16).
    pub completed_per_precision: [u64; PRECISION_COUNT],
}

impl ServeStats {
    /// Total degraded responses.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full
            + self.shed_inference_error
            + self.shed_quota
            + self.shed_shutdown
            + self.brownout_deadline
    }
}

/// Internal counter cells. Increments use `Release` so that a reader
/// who synchronized with the incrementing thread (e.g. joined it in
/// `shutdown()`, or received its reply on a channel) observes the
/// count under the acquire fence in [`StatsCells::snapshot`] — plain
/// `Relaxed` loads right after shutdown-drain could legally read stale
/// values.
#[derive(Default)]
struct StatsCells {
    completed: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_inference_error: AtomicU64,
    shed_quota: AtomicU64,
    shed_shutdown: AtomicU64,
    brownout_deadline: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    engine_swaps: AtomicU64,
    completed_per_lane: [AtomicU64; 3],
    completed_per_precision: [AtomicU64; PRECISION_COUNT],
}

impl StatsCells {
    fn snapshot(&self) -> ServeStats {
        fence(Ordering::Acquire);
        ServeStats {
            completed: self.completed.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_inference_error: self.shed_inference_error.load(Ordering::Relaxed),
            shed_quota: self.shed_quota.load(Ordering::Relaxed),
            shed_shutdown: self.shed_shutdown.load(Ordering::Relaxed),
            brownout_deadline: self.brownout_deadline.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            engine_swaps: self.engine_swaps.load(Ordering::Relaxed),
            completed_per_lane: [
                self.completed_per_lane[0].load(Ordering::Relaxed),
                self.completed_per_lane[1].load(Ordering::Relaxed),
                self.completed_per_lane[2].load(Ordering::Relaxed),
            ],
            completed_per_precision: std::array::from_fn(|i| {
                self.completed_per_precision[i].load(Ordering::Relaxed)
            }),
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: LaneQueue<Job>,
    quota: Option<crate::quota::QuotaTable>,
    registry: Arc<ModelRegistry>,
    cache: PatchCache,
    stats: StatsCells,
    /// Normalization and model config captured at startup, so shed
    /// paths can still answer if the registry is ever unreadable.
    startup_norm: NormStats,
    startup_cfg: AdarNetConfig,
}

impl Shared {
    /// Parameters for building a degraded response: the active model's
    /// if available, the startup snapshot otherwise.
    fn shed_params(&self) -> (NormStats, AdarNetConfig) {
        match self.registry.active() {
            Some(a) => (a.checkpoint.norm, model_cfg(&a.checkpoint)),
            None => (self.startup_norm, self.startup_cfg),
        }
    }

    /// Build, record, and send the degraded response for a rejected or
    /// browned-out job. Single funnel: every non-Full reply goes
    /// through here, so the typed counter bookkeeping cannot be
    /// skipped on any path.
    fn reject(&self, job: Job, kind: ResponseKind, norm: &NormStats, cfg: AdarNetConfig) {
        let (cell, counter_name) = match kind {
            ResponseKind::ShedQueueFull => {
                (&self.stats.shed_queue_full, "serve_shed_queue_full_total")
            }
            ResponseKind::ShedInferenceError => (
                &self.stats.shed_inference_error,
                "serve_shed_inference_error_total",
            ),
            ResponseKind::ShedQuota => (&self.stats.shed_quota, "serve_shed_quota_total"),
            ResponseKind::ShedShutdown => (&self.stats.shed_shutdown, "serve_shed_shutdown_total"),
            ResponseKind::BrownoutDeadline | ResponseKind::Full => (
                &self.stats.brownout_deadline,
                "serve_brownout_deadline_total",
            ),
        };
        cell.fetch_add(1, Ordering::Release);
        adarnet_obs::registry().counter(counter_name).inc();
        tenant_counter(job.tenant, "reject").inc();
        if let Some(reason) = kind.reject_reason() {
            adarnet_obs::recorder().record(
                adarnet_obs::EventKind::Shed,
                reason.as_str(),
                job.priority.as_str(),
                self.queue.len() as u64,
                0,
            );
        }
        // Overload and model failure warrant crash-forensics dumps
        // (rate-limited inside obs); policy rejections (quota,
        // deadline, shutdown) are normal operation.
        if matches!(
            kind,
            ResponseKind::ShedQueueFull | ResponseKind::ShedInferenceError
        ) {
            let _ = adarnet_obs::dump("load_shed", false);
        }
        let response = ServeResponse {
            prediction: degraded_prediction(norm, cfg, &job.field),
            kind,
            latency: job.submitted.elapsed(),
            generation: 0,
            priority: job.priority,
            trace_id: job.trace.map_or(0, |t| t.trace_id),
            precision: job.precision,
        };
        record_e2e(&response);
        // A rejected trace is always interesting: finish it errored so
        // the tail sampler retains it unconditionally.
        if let Some(ctx) = job.trace {
            trace::finish(ctx, response.latency.as_nanos() as u64, true);
        }
        let _ = job.reply.send(response);
    }
}

/// Per-tenant admit/reject/brownout counters live in the process
/// registry under dynamic names (the macro path interns literals only).
fn tenant_counter(tenant: u64, event: &str) -> Arc<adarnet_obs::Counter> {
    adarnet_obs::registry().counter(&format!("serve_tenant_{tenant}_{event}_total"))
}

/// Handle to a running inference service.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start the service on the registry's active model. Fails if no
    /// model has been activated or its checkpoint cannot restore.
    pub fn start(cfg: ServeConfig, registry: Arc<ModelRegistry>) -> Result<Server, RegistryError> {
        // Panic-hook dump + flight recorder live for the process's
        // lifetime; installing here means any embedding binary gets
        // crash forensics without its own obs::init() call.
        adarnet_obs::init();
        // Build the shared engine up front: a missing or corrupt active
        // model fails start() instead of panicking workers. Every worker
        // clones this one Arc — one resident weight copy per precision
        // actually routed to (other planes hydrate lazily on first use).
        let (generation, engine) = registry.shared_with(cfg.default_precision)?;
        let (startup_norm, startup_cfg) = (*engine.norm(), engine.config());
        let shared = Arc::new(Shared {
            cache: PatchCache::new(cfg.cache_capacity),
            queue: LaneQueue::new(cfg.queue_capacity, cfg.lane_weights),
            quota: cfg.quota.map(crate::quota::QuotaTable::new),
            cfg,
            registry,
            stats: StatsCells::default(),
            startup_norm,
            startup_cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                // Seed the worker's per-precision engine cache with the
                // default plane; other planes hydrate from the registry
                // on the first batch that routes to them.
                let mut engines: [Option<Arc<adarnet_core::engine::InferenceEngine>>;
                    PRECISION_COUNT] = std::array::from_fn(|_| None);
                engines[shared.cfg.default_precision.index()] = Some(engine.clone());
                std::thread::spawn(move || worker_loop(shared, generation, engines))
            })
            .collect();
        Ok(Server { shared, workers })
    }

    /// Submit one raw `(C, H, W)` LR field on the standard lane, tenant
    /// 0, no deadline — the pre-lane API, kept for in-process callers.
    pub fn submit(&self, field: Tensor<f32>) -> Receiver<ServeResponse> {
        self.submit_with(field, SubmitOptions::default())
    }

    /// Submit with explicit priority / tenant / deadline. Never blocks:
    /// every reject path answers immediately with a degraded bin-0
    /// response carrying a typed [`RejectReason`].
    pub fn submit_with(&self, field: Tensor<f32>, opts: SubmitOptions) -> Receiver<ServeResponse> {
        let (reply, rx) = mpsc::channel();
        let submitted = Instant::now();
        let priority = if self.shared.cfg.fifo_only {
            Priority::Standard
        } else {
            opts.priority
        };
        // Precision routing happens at admission: per-request override,
        // else the tenant's configured plane, else the server default.
        let precision = opts
            .precision
            .unwrap_or_else(|| self.shared.cfg.precision_for_tenant(opts.tenant));
        // Claim an arena slot before admission so rejected traces are
        // captured too. A saturated arena downgrades the request to
        // untraced rather than failing it.
        let traced = opts.trace.filter(|&ctx| trace::arena().start(ctx));
        let job = Job {
            field,
            submitted,
            deadline: opts.deadline,
            tenant: opts.tenant,
            priority,
            precision,
            trace: traced,
            reply,
        };

        // Admission stage 1: already past deadline → brownout now, don't
        // waste a lane slot.
        if job.deadline.is_some_and(|d| submitted >= d) {
            let (norm, cfg) = self.shared.shed_params();
            self.shared
                .reject(job, ResponseKind::BrownoutDeadline, &norm, cfg);
            return rx;
        }

        // Admission stage 2: tenant token bucket.
        if let Some(quota) = &self.shared.quota {
            if !quota.try_take(job.tenant) {
                let (norm, cfg) = self.shared.shed_params();
                self.shared.reject(job, ResponseKind::ShedQuota, &norm, cfg);
                return rx;
            }
        }

        // Admission stage 3: the lane itself.
        tenant_counter(job.tenant, "admit").inc();
        let (job, kind) = match self.shared.queue.push(priority, job) {
            PushOutcome::Enqueued => return rx,
            PushOutcome::Saturated(job) => (job, ResponseKind::ShedQueueFull),
            PushOutcome::Rejected(job) => (job, ResponseKind::ShedShutdown),
        };
        let (norm, cfg) = self.shared.shed_params();
        self.shared.reject(job, kind, &norm, cfg);
        rx
    }

    /// Submit and wait for the response (closed-loop clients). If a
    /// worker dies mid-batch and drops the reply channel, the caller
    /// gets a degraded response instead of a panic.
    pub fn submit_wait(&self, field: Tensor<f32>) -> ServeResponse {
        self.submit_wait_with(field, SubmitOptions::default())
    }

    /// [`Server::submit_wait`] with explicit admission options.
    pub fn submit_wait_with(&self, field: Tensor<f32>, opts: SubmitOptions) -> ServeResponse {
        let fallback = field.clone();
        let submitted = Instant::now();
        match self.submit_with(field, opts).recv() {
            Ok(response) => response,
            Err(_) => {
                self.shared
                    .stats
                    .shed_inference_error
                    .fetch_add(1, Ordering::Release);
                adarnet_obs::counter!("serve_shed_inference_error_total").inc();
                adarnet_obs::mark("degraded_reply", "", 0);
                let (norm, cfg) = self.shared.shed_params();
                let response = ServeResponse {
                    prediction: degraded_prediction(&norm, cfg, &fallback),
                    kind: ResponseKind::ShedInferenceError,
                    latency: submitted.elapsed(),
                    generation: 0,
                    priority: opts.priority,
                    trace_id: opts.trace.map_or(0, |t| t.trace_id),
                    precision: opts
                        .precision
                        .unwrap_or_else(|| self.shared.cfg.precision_for_tenant(opts.tenant)),
                };
                record_e2e(&response);
                if let Some(ctx) = opts.trace {
                    trace::finish(ctx, response.latency.as_nanos() as u64, true);
                }
                response
            }
        }
    }

    /// Acquire-fenced snapshot of the server counters. Reading after
    /// [`Server::shutdown`] (which joins the workers) is guaranteed to
    /// observe every increment the workers made.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Decoded-patch cache (for hit/miss reporting).
    pub fn cache(&self) -> &PatchCache {
        &self.shared.cache
    }

    /// Whether `field` matches the active model's input contract: a
    /// rank-3 `(C, H, W)` tensor with the configured channel count and
    /// extents the patch grid tiles. Callers handing the server
    /// externally-sourced fields (the wire front end) must check this
    /// before submitting — a mismatched field cannot even be answered
    /// degraded, because the bin-0 fallback extracts patches at the
    /// model's own geometry.
    pub fn field_matches_model(&self, field: &Tensor<f32>) -> bool {
        let (_, cfg) = self.shared.shed_params();
        field.shape().rank() == 3
            && field.dim(0) == cfg.in_channels
            && field.dim(1) > 0
            && field.dim(2) > 0
            && field.dim(1).is_multiple_of(cfg.ph)
            && field.dim(2).is_multiple_of(cfg.pw)
    }

    /// Requests currently queued across all lanes.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Requests currently queued in one lane.
    pub fn lane_depth(&self, priority: Priority) -> usize {
        self.shared.queue.lane_len(priority)
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Returns the final counter snapshot, which is exact: the joins
    /// synchronize with every worker's `Release` increments, so the
    /// acquire-fenced read cannot miss a count.
    pub fn shutdown(mut self) -> ServeStats {
        self.shared.queue.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.stats.snapshot()
    }
}

fn model_cfg(ckpt: &adarnet_core::checkpoint::ModelCheckpoint) -> AdarNetConfig {
    AdarNetConfig {
        in_channels: ckpt.in_channels,
        ph: ckpt.ph,
        pw: ckpt.pw,
        bins: ckpt.bins,
        seed: 0,
    }
}

/// Record a response's end-to-end latency (submission → reply) into
/// the aggregate `serve_e2e_ns` histogram every reply path shares, plus
/// the per-lane histogram (macro names must be literals, hence the
/// match). Traced responses also update the histogram's exemplar: the
/// trace id of the max-latency sample this window, linking `/metrics`
/// to `/traces`.
fn record_e2e(response: &ServeResponse) {
    let ns = response.latency.as_nanos() as u64;
    let trace_id = response.trace_id;
    adarnet_obs::histogram!("serve_e2e_ns").record_traced(ns, trace_id);
    match response.priority {
        Priority::Interactive => {
            adarnet_obs::histogram!("serve_e2e_interactive_ns").record_traced(ns, trace_id)
        }
        Priority::Standard => {
            adarnet_obs::histogram!("serve_e2e_standard_ns").record_traced(ns, trace_id)
        }
        Priority::Bulk => adarnet_obs::histogram!("serve_e2e_bulk_ns").record_traced(ns, trace_id),
    }
}

/// Per-lane queue-wait histogram (admission → batch pickup).
fn record_queue_wait(priority: Priority, ns: u64) {
    adarnet_obs::histogram!("serve_queue_wait_ns").record(ns);
    match priority {
        Priority::Interactive => {
            adarnet_obs::histogram!("serve_queue_wait_interactive_ns").record(ns)
        }
        Priority::Standard => adarnet_obs::histogram!("serve_queue_wait_standard_ns").record(ns),
        Priority::Bulk => adarnet_obs::histogram!("serve_queue_wait_bulk_ns").record(ns),
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    mut generation: u64,
    mut engines: [Option<Arc<adarnet_core::engine::InferenceEngine>>; PRECISION_COUNT],
) {
    loop {
        // Batch assembly = blocking pop + linger window on the lane the
        // deficit scheduler picked. The span includes idle waiting by
        // design: under light load it reads as the arrival gap, under
        // heavy load it collapses toward zero.
        let assembly_start = Instant::now();
        let (lane, batch) = {
            let _span = adarnet_obs::span!("serve_batch_assembly");
            match shared
                .queue
                .pop_batch(shared.cfg.max_batch, shared.cfg.max_linger)
            {
                Some(picked) => picked,
                None => return, // shutdown and drained
            }
        };
        let assembly_ns = assembly_start.elapsed().as_nanos() as u64;
        let now = Instant::now();
        for job in &batch {
            let wait_ns = now.duration_since(job.submitted).as_nanos() as u64;
            record_queue_wait(lane, wait_ns);
            // Per-request attribution: the wait this job actually saw
            // and the assembly window that picked it up (shared by the
            // whole batch, recorded under each participating trace).
            if let Some(ctx) = job.trace {
                trace::arena().record(
                    ctx,
                    "serve_queue_wait",
                    wait_ns,
                    "lane",
                    lane.index() as u64,
                );
                // Capped at the job's own wait: the histogram keeps
                // the full window (idle-gap semantics), but a trace
                // must not be charged for idle time before its request
                // existed — uncapped, a first-after-idle trace shows an
                // assembly span longer than its entire e2e.
                trace::arena().record(
                    ctx,
                    "serve_batch_assembly",
                    assembly_ns.min(wait_ns),
                    "batch",
                    batch.len() as u64,
                );
            }
        }

        // Deadline sweep: anything that expired while queued gets the
        // brownout response now — answered, counted, never inferred.
        let (live, expired): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|j| j.deadline.is_none_or(|d| now < d));
        if !expired.is_empty() {
            let (norm, cfg) = shared.shed_params();
            for job in expired {
                tenant_counter(job.tenant, "brownout").inc();
                shared.reject(job, ResponseKind::BrownoutDeadline, &norm, cfg);
            }
        }
        if live.is_empty() {
            continue;
        }
        let batch = live;

        // Hot swap: re-fetch the shared engine when the registry moved
        // on. The old Arcs drop here (or when the last in-flight batch
        // on them finishes elsewhere); no weights are copied per worker.
        // Every cached precision plane is invalidated together — a new
        // generation must never mix planes from different checkpoints.
        let current = shared.registry.generation();
        if current != generation {
            if let Ok((gen, fresh)) = shared.registry.shared_with(shared.cfg.default_precision) {
                if gen != generation {
                    adarnet_obs::recorder().record(
                        adarnet_obs::EventKind::HotSwap,
                        "engine_swap",
                        "generation",
                        gen,
                        0,
                    );
                    let _ = adarnet_obs::dump("hot_swap", false);
                    generation = gen;
                    engines = std::array::from_fn(|_| None);
                    engines[shared.cfg.default_precision.index()] = Some(fresh);
                    shared.stats.engine_swaps.fetch_add(1, Ordering::Release);
                    adarnet_obs::counter!("serve_engine_swaps_total").inc();
                }
            }
        }

        // Partition the live batch by routed precision: each plane runs
        // as its own decoder micro-batch on its own engine. Same-plane
        // patches still fuse; cross-plane fusion would mix weight
        // planes inside one GEMM pass.
        let mut groups: [Vec<Job>; PRECISION_COUNT] = std::array::from_fn(|_| Vec::new());
        for job in batch {
            groups[job.precision.index()].push(job);
        }
        for (pidx, batch) in groups.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let Some(precision) = Precision::from_index(pidx) else {
                // Unreachable: groups has exactly PRECISION_COUNT slots.
                continue;
            };
            // Resolve this plane's engine: the worker-cached Arc, else
            // hydrate (and cache) from the registry. A registry failure
            // degrades just this group — the other plane still serves.
            let engine = match &engines[pidx] {
                Some(e) => e.clone(),
                None => match shared.registry.shared_with(precision) {
                    Ok((_, fresh)) => {
                        engines[pidx] = Some(fresh.clone());
                        fresh
                    }
                    Err(_) => {
                        let (norm, cfg) = shared.shed_params();
                        for job in batch {
                            shared.reject(job, ResponseKind::ShedInferenceError, &norm, cfg);
                        }
                        continue;
                    }
                },
            };

            let fields: Vec<Tensor<f32>> = batch.iter().map(|j| j.field.clone()).collect();
            shared.stats.batches.fetch_add(1, Ordering::Release);
            shared
                .stats
                .batched_requests
                .fetch_add(batch.len() as u64, Ordering::Release);
            adarnet_obs::counter!("serve_batches_total").inc();
            adarnet_obs::counter!("serve_batched_requests_total").add(batch.len() as u64);

            // Two-phase infer spans: allocate the span id up front so the
            // per-bin decode spans inside `infer_cached` can parent under
            // it, commit the duration once the batch returns.
            let infer_start = Instant::now();
            let pending_infer: Vec<Option<trace::PendingSpan>> = batch
                .iter()
                .map(|j| {
                    j.trace
                        .and_then(|ctx| trace::arena().begin(ctx, "serve_infer"))
                })
                .collect();
            let traces: Vec<Option<TraceCtx>> = batch
                .iter()
                .zip(&pending_infer)
                .map(|(j, p)| match (j.trace, p) {
                    (Some(ctx), Some(p)) => Some(ctx.child(p.span_id)),
                    (ctx, _) => ctx,
                })
                .collect();
            // Salt the cache generation with the precision index: an
            // f32 and a bf16 engine of the same model generation decode
            // different bytes, so their patch entries must never alias.
            let cache_generation = generation * PRECISION_COUNT as u64 + pidx as u64;
            let inferred = {
                let _span = adarnet_obs::span!("serve_infer", batch = batch.len());
                infer_cached(&engine, cache_generation, &fields, &traces, &shared.cache)
            };
            let infer_ns = infer_start.elapsed().as_nanos() as u64;
            for p in pending_infer.into_iter().flatten() {
                trace::arena().commit(p, infer_ns, "batch", fields.len() as u64);
            }
            match inferred {
                Ok(predictions) => {
                    shared
                        .stats
                        .completed
                        .fetch_add(batch.len() as u64, Ordering::Release);
                    shared.stats.completed_per_lane[lane.index()]
                        .fetch_add(batch.len() as u64, Ordering::Release);
                    shared.stats.completed_per_precision[pidx]
                        .fetch_add(batch.len() as u64, Ordering::Release);
                    adarnet_obs::counter!("serve_completed_total").add(batch.len() as u64);
                    for (job, prediction) in batch.into_iter().zip(predictions) {
                        let response = ServeResponse {
                            prediction,
                            kind: ResponseKind::Full,
                            latency: job.submitted.elapsed(),
                            generation,
                            priority: job.priority,
                            trace_id: job.trace.map_or(0, |t| t.trace_id),
                            precision: job.precision,
                        };
                        record_e2e(&response);
                        if let Some(ctx) = job.trace {
                            trace::finish(ctx, response.latency.as_nanos() as u64, false);
                        }
                        let _ = job.reply.send(response);
                    }
                }
                Err(_) => {
                    // Degrade the whole group rather than killing the worker.
                    let norm = *engine.norm();
                    let cfg = engine.config();
                    for job in batch {
                        shared.reject(job, ResponseKind::ShedInferenceError, &norm, cfg);
                    }
                }
            }
        }
    }
}
