//! The inference server: bounded queue → micro-batcher → decoder
//! workers, with load shedding and hot-swap awareness.
//!
//! Requests enter a [`BoundedQueue`]. Every worker thread shares **one**
//! frozen engine (`Arc<InferenceEngine>` from
//! [`ModelRegistry::shared`]) — one resident weight copy regardless of
//! worker count; a worker pops one request, lingers up to
//! `max_linger` for more, and runs the whole group through
//! [`crate::batch::infer_cached`] so same-bin patches from concurrent
//! requests share decoder batches. A hot swap is an `Arc` swap: workers
//! re-fetch the shared engine at the next batch boundary, and a batch
//! in flight during the swap completes on the old generation's weights
//! (its `Arc` keeps them alive). When the queue is at capacity the
//! server does not block or drop: it answers immediately with the
//! degraded bin-0 prediction ([`crate::batch::degraded_prediction`])
//! and counts the shed. Inference errors (e.g. NaN scores from a bad
//! checkpoint) degrade the affected requests the same way instead of
//! killing the worker — no path in this module panics (the in-repo
//! lint enforces it; the model checker in `crates/check` exercises the
//! queue/cache/registry interleavings).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNetConfig, Prediction};
use adarnet_tensor::Tensor;

use crate::batch::{degraded_prediction, infer_cached};
use crate::cache::PatchCache;
use crate::config::ServeConfig;
use crate::queue::{BoundedQueue, PushOutcome};
use crate::registry::{ModelRegistry, RegistryError};

/// Why a response is what it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// Full ADARNet inference.
    Full,
    /// Bin-0 fallback because the queue was saturated.
    ShedQueueFull,
    /// Bin-0 fallback because inference failed for this batch.
    ShedInferenceError,
}

impl ResponseKind {
    /// Whether this response was degraded rather than fully inferred.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, ResponseKind::Full)
    }
}

/// One answered request.
pub struct ServeResponse {
    /// The (possibly degraded) prediction, in normalized units.
    pub prediction: Prediction,
    /// Full or degraded, and why.
    pub kind: ResponseKind,
    /// Server-side latency from submission to completion.
    pub latency: Duration,
    /// Model generation that served the request (0 for shed responses
    /// answered without touching the model).
    pub generation: u64,
}

struct Job {
    field: Tensor<f32>,
    submitted: Instant,
    reply: Sender<ServeResponse>,
}

/// Point-in-time view of the server's monotone counters, taken by
/// [`Server::stats`] behind an acquire fence. The per-server cells are
/// the exact source of truth (the process-global obs registry mirrors
/// them for fleet dashboards, but multiple servers in one process — the
/// test suite, notably — share that registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Fully served requests.
    pub completed: u64,
    /// Requests shed at submission (queue full).
    pub shed_queue_full: u64,
    /// Requests degraded because inference errored.
    pub shed_inference_error: u64,
    /// Decoder micro-batches dispatched.
    pub batches: u64,
    /// Requests carried by those batches (batches ≤ this; the ratio is
    /// the achieved batching factor).
    pub batched_requests: u64,
    /// Shared-engine swaps observed by workers after hot swaps.
    pub engine_swaps: u64,
}

impl ServeStats {
    /// Total degraded responses.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_inference_error
    }
}

/// Internal counter cells. Increments use `Release` so that a reader
/// who synchronized with the incrementing thread (e.g. joined it in
/// `shutdown()`, or received its reply on a channel) observes the
/// count under the acquire fence in [`StatsCells::snapshot`] — plain
/// `Relaxed` loads right after shutdown-drain could legally read stale
/// values.
#[derive(Default)]
struct StatsCells {
    completed: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_inference_error: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    engine_swaps: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServeStats {
        fence(Ordering::Acquire);
        ServeStats {
            completed: self.completed.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_inference_error: self.shed_inference_error.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            engine_swaps: self.engine_swaps.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    registry: Arc<ModelRegistry>,
    cache: PatchCache,
    stats: StatsCells,
    /// Normalization and model config captured at startup, so shed
    /// paths can still answer if the registry is ever unreadable.
    startup_norm: NormStats,
    startup_cfg: AdarNetConfig,
}

impl Shared {
    /// Parameters for building a degraded response: the active model's
    /// if available, the startup snapshot otherwise.
    fn shed_params(&self) -> (NormStats, AdarNetConfig) {
        match self.registry.active() {
            Some(a) => (a.checkpoint.norm, model_cfg(&a.checkpoint)),
            None => (self.startup_norm, self.startup_cfg),
        }
    }
}

/// Handle to a running inference service.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start the service on the registry's active model. Fails if no
    /// model has been activated or its checkpoint cannot restore.
    pub fn start(cfg: ServeConfig, registry: Arc<ModelRegistry>) -> Result<Server, RegistryError> {
        // Panic-hook dump + flight recorder live for the process's
        // lifetime; installing here means any embedding binary gets
        // crash forensics without its own obs::init() call.
        adarnet_obs::init();
        // Build the shared engine up front: a missing or corrupt active
        // model fails start() instead of panicking workers. Every worker
        // clones this one Arc — one resident weight copy.
        let (generation, engine) = registry.shared()?;
        let (startup_norm, startup_cfg) = (*engine.norm(), engine.config());
        let shared = Arc::new(Shared {
            cache: PatchCache::new(cfg.cache_capacity),
            queue: BoundedQueue::new(cfg.queue_capacity),
            cfg,
            registry,
            stats: StatsCells::default(),
            startup_norm,
            startup_cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                let engine = engine.clone();
                std::thread::spawn(move || worker_loop(shared, generation, engine))
            })
            .collect();
        Ok(Server { shared, workers })
    }

    /// Submit one raw `(C, H, W)` LR field. Never blocks on a full
    /// queue: saturation answers immediately with a degraded bin-0
    /// response on the returned channel.
    pub fn submit(&self, field: Tensor<f32>) -> Receiver<ServeResponse> {
        let (reply, rx) = mpsc::channel();
        let submitted = Instant::now();
        let job = Job {
            field,
            submitted,
            reply,
        };
        let job = match self.shared.queue.push(job) {
            PushOutcome::Enqueued => return rx,
            PushOutcome::Saturated(job) | PushOutcome::Rejected(job) => job,
        };
        // Shed: answer inline from the caller's thread (cheap — no model).
        self.shared
            .stats
            .shed_queue_full
            .fetch_add(1, Ordering::Release);
        adarnet_obs::counter!("serve_shed_queue_full_total").inc();
        adarnet_obs::recorder().record(
            adarnet_obs::EventKind::Shed,
            "shed_queue_full",
            "queue_depth",
            self.shared.queue.len() as u64,
            0,
        );
        let _ = adarnet_obs::dump("load_shed", false);
        let (norm, cfg) = self.shared.shed_params();
        let response = ServeResponse {
            prediction: degraded_prediction(&norm, cfg, &job.field),
            kind: ResponseKind::ShedQueueFull,
            latency: job.submitted.elapsed(),
            generation: 0,
        };
        record_e2e(&response);
        let _ = job.reply.send(response);
        rx
    }

    /// Submit and wait for the response (closed-loop clients). If a
    /// worker dies mid-batch and drops the reply channel, the caller
    /// gets a degraded response instead of a panic.
    pub fn submit_wait(&self, field: Tensor<f32>) -> ServeResponse {
        let fallback = field.clone();
        let submitted = Instant::now();
        match self.submit(field).recv() {
            Ok(response) => response,
            Err(_) => {
                self.shared
                    .stats
                    .shed_inference_error
                    .fetch_add(1, Ordering::Release);
                adarnet_obs::counter!("serve_shed_inference_error_total").inc();
                adarnet_obs::mark("degraded_reply", "", 0);
                let (norm, cfg) = self.shared.shed_params();
                let response = ServeResponse {
                    prediction: degraded_prediction(&norm, cfg, &fallback),
                    kind: ResponseKind::ShedInferenceError,
                    latency: submitted.elapsed(),
                    generation: 0,
                };
                record_e2e(&response);
                response
            }
        }
    }

    /// Acquire-fenced snapshot of the server counters. Reading after
    /// [`Server::shutdown`] (which joins the workers) is guaranteed to
    /// observe every increment the workers made.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Decoded-patch cache (for hit/miss reporting).
    pub fn cache(&self) -> &PatchCache {
        &self.shared.cache
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Returns the final counter snapshot, which is exact: the joins
    /// synchronize with every worker's `Release` increments, so the
    /// acquire-fenced read cannot miss a count.
    pub fn shutdown(mut self) -> ServeStats {
        self.shared.queue.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.stats.snapshot()
    }
}

fn model_cfg(ckpt: &adarnet_core::checkpoint::ModelCheckpoint) -> AdarNetConfig {
    AdarNetConfig {
        in_channels: ckpt.in_channels,
        ph: ckpt.ph,
        pw: ckpt.pw,
        bins: ckpt.bins,
        seed: 0,
    }
}

/// Record a response's end-to-end latency (submission → reply) into
/// the `serve_e2e_ns` histogram every reply path shares.
fn record_e2e(response: &ServeResponse) {
    adarnet_obs::histogram!("serve_e2e_ns").record(response.latency.as_nanos() as u64);
}

fn worker_loop(
    shared: Arc<Shared>,
    mut generation: u64,
    mut engine: Arc<adarnet_core::engine::InferenceEngine>,
) {
    loop {
        // Batch assembly = blocking pop + linger window. The span
        // includes idle waiting by design: under light load it reads as
        // the arrival gap, under heavy load it collapses toward zero.
        let batch = {
            let _span = adarnet_obs::span!("serve_batch_assembly");
            match shared
                .queue
                .pop_batch(shared.cfg.max_batch, shared.cfg.max_linger)
            {
                Some(batch) => batch,
                None => return, // shutdown and drained
            }
        };
        let queue_wait = adarnet_obs::histogram!("serve_queue_wait_ns");
        for job in &batch {
            queue_wait.record(job.submitted.elapsed().as_nanos() as u64);
        }

        // Hot swap: re-fetch the shared engine when the registry moved
        // on. The old Arc drops here (or when the last in-flight batch
        // on it finishes elsewhere); no weights are copied per worker.
        let current = shared.registry.generation();
        if current != generation {
            if let Ok((gen, fresh)) = shared.registry.shared() {
                if gen != generation {
                    adarnet_obs::recorder().record(
                        adarnet_obs::EventKind::HotSwap,
                        "engine_swap",
                        "generation",
                        gen,
                        0,
                    );
                    let _ = adarnet_obs::dump("hot_swap", false);
                    generation = gen;
                    engine = fresh;
                    shared.stats.engine_swaps.fetch_add(1, Ordering::Release);
                    adarnet_obs::counter!("serve_engine_swaps_total").inc();
                }
            }
        }

        let fields: Vec<Tensor<f32>> = batch.iter().map(|j| j.field.clone()).collect();
        shared.stats.batches.fetch_add(1, Ordering::Release);
        shared
            .stats
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Release);
        adarnet_obs::counter!("serve_batches_total").inc();
        adarnet_obs::counter!("serve_batched_requests_total").add(batch.len() as u64);

        let inferred = {
            let _span = adarnet_obs::span!("serve_infer", batch = batch.len());
            infer_cached(&engine, generation, &fields, &shared.cache)
        };
        match inferred {
            Ok(predictions) => {
                shared
                    .stats
                    .completed
                    .fetch_add(batch.len() as u64, Ordering::Release);
                adarnet_obs::counter!("serve_completed_total").add(batch.len() as u64);
                for (job, prediction) in batch.into_iter().zip(predictions) {
                    let response = ServeResponse {
                        prediction,
                        kind: ResponseKind::Full,
                        latency: job.submitted.elapsed(),
                        generation,
                    };
                    record_e2e(&response);
                    let _ = job.reply.send(response);
                }
            }
            Err(_) => {
                // Degrade the whole batch rather than killing the worker.
                shared
                    .stats
                    .shed_inference_error
                    .fetch_add(batch.len() as u64, Ordering::Release);
                adarnet_obs::counter!("serve_shed_inference_error_total").add(batch.len() as u64);
                adarnet_obs::recorder().record(
                    adarnet_obs::EventKind::Shed,
                    "shed_inference_error",
                    "batch",
                    batch.len() as u64,
                    0,
                );
                let _ = adarnet_obs::dump("load_shed", false);
                let norm = *engine.norm();
                let cfg = engine.config();
                for job in batch {
                    let response = ServeResponse {
                        prediction: degraded_prediction(&norm, cfg, &job.field),
                        kind: ResponseKind::ShedInferenceError,
                        latency: job.submitted.elapsed(),
                        generation,
                    };
                    record_e2e(&response);
                    let _ = job.reply.send(response);
                }
            }
        }
    }
}
