//! Synthetic closed-loop load generator and latency reporting.
//!
//! Clients are closed-loop: each thread submits one request, waits for
//! its response, records the end-to-end latency, and immediately
//! submits the next — so offered load scales with concurrency and the
//! server is never measured against an open-loop arrival process it
//! cannot shape. Fields are drawn round-robin from a pool produced by
//! the `adarnet-dataset` generators (the three canonical flow
//! families), giving the repetitive-patch traffic a CFD serving
//! endpoint actually sees.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use adarnet_dataset::{generate, DatasetConfig};
use adarnet_obs::HistogramSnapshot;
use adarnet_tensor::Tensor;
use serde::Serialize;

use crate::server::{ResponseKind, Server};

/// Delimits a measurement window over the server-side `serve_e2e_ns`
/// histogram: snapshot the cumulative histogram at [`start`], and
/// [`finish`] returns only the samples recorded in between. Latency
/// percentiles in [`LoadReport`] come from this window, so they measure
/// the *server's* submission-to-reply distribution (including shed
/// fast-paths), not the client's scheduling jitter.
///
/// The histogram is process-global: overlapping windows from two
/// concurrent servers in one process will blend. The bench driver and
/// tests run one load at a time.
///
/// [`start`]: LatencyWindow::start
/// [`finish`]: LatencyWindow::finish
pub struct LatencyWindow {
    before: HistogramSnapshot,
}

impl LatencyWindow {
    /// Open a window at the histogram's current state.
    pub fn start() -> LatencyWindow {
        LatencyWindow {
            before: adarnet_obs::histogram!("serve_e2e_ns").snapshot(),
        }
    }

    /// Close the window: the e2e samples recorded since [`LatencyWindow::start`].
    pub fn finish(self) -> HistogramSnapshot {
        adarnet_obs::histogram!("serve_e2e_ns")
            .snapshot()
            .since(&self.before)
    }
}

/// Build a pool of `count` distinct LR fields of extent `h x w` from
/// the dataset generators.
pub fn field_pool(count: usize, h: usize, w: usize, seed: u64) -> Vec<Tensor<f32>> {
    let per_family = count.div_ceil(3).max(2);
    let cfg = DatasetConfig {
        per_family,
        h,
        w,
        seed,
        val_fraction: 0.0,
    };
    generate(&cfg)
        .into_iter()
        .take(count)
        .map(|s| s.field)
        .collect()
}

/// One client-side observation.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// End-to-end latency (submit → response received).
    pub latency: Duration,
    /// What kind of response came back.
    pub kind: ResponseKind,
    /// Trace id the request ran under (0 when untraced).
    pub trace_id: u64,
}

/// Drive `clients` closed-loop threads, each issuing
/// `requests_per_client` requests round-robin over `fields`. Every
/// request is traced (a fresh [`TraceCtx`] per submission), so the
/// report can name the slowest request's trace. Returns every
/// observation plus the wall-clock span of the whole run.
///
/// [`TraceCtx`]: adarnet_obs::TraceCtx
pub fn run_closed_loop(
    server: &Server,
    fields: &[Tensor<f32>],
    clients: usize,
    requests_per_client: usize,
) -> (Vec<Observation>, Duration) {
    assert!(!fields.is_empty(), "need at least one field");
    let next = AtomicU64::new(0);
    let started = Instant::now();
    let mut all = Vec::with_capacity(clients * requests_per_client);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut observations = Vec::with_capacity(requests_per_client);
                    for _ in 0..requests_per_client {
                        let idx = next.fetch_add(1, Ordering::Relaxed) as usize % fields.len();
                        let opts = crate::server::SubmitOptions {
                            trace: Some(adarnet_obs::TraceCtx::mint()),
                            ..crate::server::SubmitOptions::default()
                        };
                        let t0 = Instant::now();
                        let response = server.submit_wait_with(fields[idx].clone(), opts);
                        observations.push(Observation {
                            latency: t0.elapsed(),
                            kind: response.kind,
                            trace_id: response.trace_id,
                        });
                    }
                    observations
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("client thread panicked"));
        }
    });
    (all, started.elapsed())
}

/// Nearest-rank percentile over a sorted slice of latencies.
fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// Per-reason counts of the degraded responses a run's clients saw,
/// keyed by the typed [`RejectReason`]. Explicit fields (not a map) so
/// the `BENCH_serve.json` schema is stable and diffable.
///
/// [`RejectReason`]: crate::server::RejectReason
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RejectBreakdown {
    /// Shed at admission: the lane queue was full.
    pub queue_full: u64,
    /// Shed at admission: the tenant's token bucket was empty.
    pub quota_exceeded: u64,
    /// Browned out: the deadline had already passed (at admission or
    /// in the queue).
    pub deadline_exceeded: u64,
    /// Answered degraded because the server was shutting down.
    pub shutdown: u64,
    /// Degraded by an inference failure.
    pub inference_error: u64,
}

impl RejectBreakdown {
    /// Tally the typed reject reasons across a run's observations.
    pub fn from_observations(observations: &[Observation]) -> RejectBreakdown {
        use crate::server::RejectReason;
        let mut b = RejectBreakdown::default();
        for o in observations {
            match o.kind.reject_reason() {
                Some(RejectReason::QueueFull) => b.queue_full += 1,
                Some(RejectReason::QuotaExceeded) => b.quota_exceeded += 1,
                Some(RejectReason::DeadlineExceeded) => b.deadline_exceeded += 1,
                Some(RejectReason::Shutdown) => b.shutdown += 1,
                Some(RejectReason::InferenceError) => b.inference_error += 1,
                None => {}
            }
        }
        b
    }

    /// Sum over all reasons.
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.quota_exceeded
            + self.deadline_exceeded
            + self.shutdown
            + self.inference_error
    }
}

/// The trace id of the slowest client-observed request, as the
/// zero-padded hex string `/traces` uses (`"0"` when nothing was
/// traced).
pub fn slowest_trace_hex(observations: &[Observation]) -> String {
    observations
        .iter()
        .filter(|o| o.trace_id != 0)
        .max_by_key(|o| o.latency)
        .map_or_else(|| String::from("0"), |o| format!("{:016x}", o.trace_id))
}

/// Aggregated report for one load-generator run (serialized into
/// `BENCH_serve.json`).
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Run label (e.g. "batched" / "unbatched").
    pub mode: String,
    /// Closed-loop client count.
    pub concurrency: usize,
    /// Total requests issued.
    pub requests: usize,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Median latency, milliseconds (server-side histogram window).
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst latency in the window, milliseconds.
    pub max_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Decoded-patch cache hit rate over the server's lifetime so far.
    pub cache_hit_rate: f64,
    /// Responses shed at submission (queue full).
    pub shed_queue_full: u64,
    /// Responses degraded by inference errors.
    pub shed_inference_error: u64,
    /// Degraded responses observed by the clients of *this* run.
    pub degraded_seen: u64,
    /// Per-reason breakdown of those degraded responses.
    pub rejects: RejectBreakdown,
    /// Trace id (hex) of the slowest request this run's clients saw —
    /// look it up under `/traces` on the admin endpoint.
    pub slowest_trace: String,
}

impl LoadReport {
    /// Summarize a closed-loop run against the server's counters and an
    /// e2e-latency histogram `window` (see [`LatencyWindow`]).
    /// Percentiles come from the window when it saw traffic; with the
    /// obs layer disabled (empty window) they fall back to the client
    /// observations so the report never silently zeroes out.
    pub fn from_run(
        mode: impl Into<String>,
        concurrency: usize,
        server: &Server,
        observations: &[Observation],
        elapsed: Duration,
        window: &HistogramSnapshot,
    ) -> LoadReport {
        let (p50_ms, p95_ms, p99_ms, max_ms, mean_ms) = if window.count > 0 {
            (
                window.percentile(50.0) / 1e6,
                window.percentile(95.0) / 1e6,
                window.percentile(99.0) / 1e6,
                window.max as f64 / 1e6,
                window.mean() / 1e6,
            )
        } else {
            let mut sorted: Vec<Duration> = observations.iter().map(|o| o.latency).collect();
            sorted.sort();
            let mean_ms = if sorted.is_empty() {
                0.0
            } else {
                sorted.iter().map(|d| d.as_secs_f64()).sum::<f64>() / sorted.len() as f64 * 1e3
            };
            (
                percentile_ms(&sorted, 50.0),
                percentile_ms(&sorted, 95.0),
                percentile_ms(&sorted, 99.0),
                sorted.last().map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0),
                mean_ms,
            )
        };
        let stats = server.stats();
        LoadReport {
            mode: mode.into(),
            concurrency,
            requests: observations.len(),
            throughput_rps: observations.len() as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_ms,
            p95_ms,
            p99_ms,
            max_ms,
            mean_ms,
            cache_hit_rate: server.cache().hit_rate(),
            shed_queue_full: stats.shed_queue_full,
            shed_inference_error: stats.shed_inference_error,
            degraded_seen: observations.iter().filter(|o| o.kind.is_degraded()).count() as u64,
            rejects: RejectBreakdown::from_observations(observations),
            slowest_trace: slowest_trace_hex(observations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_pool_yields_distinct_fields() {
        let pool = field_pool(4, 16, 32, 7);
        assert_eq!(pool.len(), 4);
        for f in &pool {
            assert_eq!((f.dim(0), f.dim(1), f.dim(2)), (4, 16, 32));
        }
        assert_ne!(pool[0], pool[1]);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert!((percentile_ms(&sorted, 50.0) - 50.0).abs() <= 1.0);
        assert!((percentile_ms(&sorted, 99.0) - 99.0).abs() <= 1.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }
}
