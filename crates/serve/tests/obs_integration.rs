//! Observability acceptance tests: after real traffic the metrics
//! snapshot must expose per-stage latency histograms and per-bin patch
//! counters, and `Server::stats()` must be exact once `shutdown()` has
//! joined the workers.

use std::sync::Arc;
use std::time::Duration;

use adarnet_core::checkpoint::{self, ModelCheckpoint};
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig};
use adarnet_serve::{ModelRegistry, ResponseKind, ServeConfig, Server};
use adarnet_tensor::{Shape, Tensor};

fn sample(h: usize, w: usize, phase: f32) -> Tensor<f32> {
    Tensor::from_vec(
        Shape::d3(4, h, w),
        (0..4 * h * w)
            .map(|i| ((i as f32) * 0.017 + phase).sin())
            .collect(),
    )
}

fn ckpt(seed: u64) -> ModelCheckpoint {
    let model = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed,
        ..AdarNetConfig::default()
    });
    checkpoint::snapshot(&model, &NormStats::identity())
}

fn registry_with(name: &str, seed: u64) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    registry.register(name, ckpt(seed));
    registry.activate(name).unwrap();
    registry
}

/// Acceptance: the registry snapshot exposes per-stage latency
/// histograms (scorer, ranker, decoder, batch assembly, e2e) with
/// samples in them, plus per-bin patch counters, after serving traffic.
#[test]
fn snapshot_exposes_stage_histograms_and_bin_counters() {
    let cfg = ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_millis(1),
        workers: 1,
        cache_capacity: 1024,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, registry_with("obs", 7)).unwrap();
    for i in 0..6 {
        let r = server.submit_wait(sample(16, 32, i as f32 * 0.3));
        assert_eq!(r.kind, ResponseKind::Full);
    }
    server.shutdown();

    let snap = adarnet_obs::registry().snapshot();
    for name in [
        "stage_scorer_ns",
        "stage_ranker_ns",
        "stage_decoder_ns",
        "serve_batch_assembly_ns",
        "serve_e2e_ns",
    ] {
        let h = snap
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram {name} must be registered"));
        assert!(h.count > 0, "histogram {name} must have samples");
        assert!(h.sum > 0, "histogram {name} durations must be nonzero");
        assert!(
            h.percentile(99.0) >= h.percentile(50.0),
            "{name}: percentiles must be monotone"
        );
    }
    let binned: u64 = (0..8)
        .filter_map(|b| snap.counter(&format!("core_patches_bin{b}_total")))
        .sum();
    assert!(binned > 0, "per-bin patch counters must see traffic");

    // The snapshot also round-trips through the text exposition.
    let parsed = adarnet_obs::text::parse(&snap.render_text()).unwrap();
    assert_eq!(
        parsed.histogram("serve_e2e_ns").map(|h| h.count),
        snap.histogram("serve_e2e_ns").map(|h| h.count)
    );
}

/// Regression: `stats()` after `shutdown()` (which joins the workers)
/// must be *exact* — every submitted request accounted for, no stale
/// reads. The shed/completed counters are written with `Release` and
/// read behind an `Acquire` fence, so the joined workers' final
/// increments are all visible.
#[test]
fn stats_are_exact_after_shutdown_drain() {
    let cfg = ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_millis(1),
        workers: 2,
        cache_capacity: 1024,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, registry_with("exact", 9)).unwrap();
    let n = 12u64;
    // Three distinct fields cycled: repeats hit the decoded-patch cache,
    // keeping the drain fast even in debug builds.
    let receivers: Vec<_> = (0..n)
        .map(|i| server.submit(sample(16, 32, (i % 3) as f32 * 0.2)))
        .collect();
    let mut full = 0u64;
    for rx in receivers {
        if rx.recv_timeout(Duration::from_secs(120)).unwrap().kind == ResponseKind::Full {
            full += 1;
        }
    }
    let live = server.stats();
    let stats = server.shutdown();
    assert_eq!(
        stats.completed + stats.shed_total(),
        n,
        "every request must be counted exactly once after the drain"
    );
    assert_eq!(stats.completed, full);
    assert_eq!(stats.batched_requests, stats.completed);
    assert!(stats.batches > 0 && stats.batches <= stats.batched_requests);
    // The pre-shutdown snapshot can never exceed the drained totals.
    assert!(live.completed <= stats.completed);
    assert!(live.shed_total() <= stats.shed_total());
}
