//! Flight-recorder dump on load shed. Lives in its own integration
//! test binary (= its own process) so the `ADARNET_OBS_DUMP`
//! environment variable and the one-dump-per-second rate limit are not
//! shared with any other test.

use std::sync::Arc;
use std::time::Duration;

use adarnet_core::checkpoint;
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig};
use adarnet_serve::{ModelRegistry, ServeConfig, Server};
use adarnet_tensor::{Shape, Tensor};
use serde::Value;

fn field(phase: f32) -> Tensor<f32> {
    Tensor::from_vec(
        Shape::d3(4, 16, 32),
        (0..4 * 16 * 32)
            .map(|i| ((i as f32) * 0.017 + phase).sin())
            .collect(),
    )
}

fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(n, _)| n == key).map(|(_, v)| v)
}

/// Acceptance: overloading the queue makes the server dump the flight
/// recorder, and the dump file is parseable JSON carrying shed events
/// plus an embedded metrics snapshot.
#[test]
fn load_shed_dumps_parseable_flight_record() {
    let dir = std::env::temp_dir().join(format!("adarnet-obs-shed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump_path = dir.join("obs-dump.json");
    std::env::set_var("ADARNET_OBS_DUMP", &dump_path);

    let cfg = ServeConfig {
        queue_capacity: 2,
        max_batch: 2,
        max_linger: Duration::from_millis(10),
        workers: 1,
        cache_capacity: 0,
        ..ServeConfig::default()
    };
    let registry = Arc::new(ModelRegistry::new());
    let model = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed: 5,
        ..AdarNetConfig::default()
    });
    registry.register("m", checkpoint::snapshot(&model, &NormStats::identity()));
    registry.activate("m").unwrap();
    let server = Server::start(cfg, registry).unwrap();

    let receivers: Vec<_> = (0..24)
        .map(|i| server.submit(field(i as f32 * 0.1)))
        .collect();
    for rx in receivers {
        rx.recv_timeout(Duration::from_secs(60))
            .expect("every request answered");
    }
    let stats = server.shutdown();
    assert!(
        stats.shed_queue_full > 0,
        "burst over a capacity-2 queue must shed"
    );

    let text = std::fs::read_to_string(&dump_path)
        .unwrap_or_else(|e| panic!("dump file {} must exist: {e}", dump_path.display()));
    let doc = serde_json::parse_value(&text).expect("dump must be valid JSON");
    let obj = doc.as_object().expect("dump is a JSON object");

    assert_eq!(
        get(obj, "reason").and_then(|v| v.as_str()),
        Some("load_shed")
    );
    let events = get(obj, "events")
        .and_then(|v| v.as_array())
        .expect("events array");
    let shed_events = events
        .iter()
        .filter(|e| {
            e.as_object()
                .and_then(|o| get(o, "kind"))
                .and_then(|v| v.as_str())
                == Some("shed")
        })
        .count();
    assert!(shed_events > 0, "dump must carry shed events");
    let metrics = get(obj, "metrics")
        .and_then(|v| v.as_object())
        .expect("embedded metrics snapshot");
    assert!(get(metrics, "counters").is_some());
    assert!(get(metrics, "histograms").is_some());

    let _ = std::fs::remove_dir_all(&dir);
}
