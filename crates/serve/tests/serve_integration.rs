//! Integration tests for the serving subsystem: cache bitwise
//! identity, saturation shedding, and checkpoint round-trip through
//! the registry with hot swap.

use std::sync::Arc;
use std::time::Duration;

use adarnet_core::checkpoint::{self, ModelCheckpoint};
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig, Prediction};
use adarnet_serve::{ModelRegistry, ResponseKind, ServeConfig, Server};
use adarnet_tensor::{Shape, Tensor};

fn sample(h: usize, w: usize, phase: f32) -> Tensor<f32> {
    Tensor::from_vec(
        Shape::d3(4, h, w),
        (0..4 * h * w)
            .map(|i| ((i as f32) * 0.017 + phase).sin())
            .collect(),
    )
}

fn ckpt(seed: u64) -> ModelCheckpoint {
    let model = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed,
        ..AdarNetConfig::default()
    });
    checkpoint::snapshot(&model, &NormStats::identity())
}

fn registry_with(name: &str, seed: u64) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    registry.register(name, ckpt(seed));
    registry.activate(name).unwrap();
    registry
}

fn assert_predictions_bitwise_eq(a: &Prediction, b: &Prediction) {
    assert_eq!(a.binning.bin_of_patch, b.binning.bin_of_patch);
    assert_eq!(a.patches.len(), b.patches.len());
    for (x, y) in a.patches.iter().zip(&b.patches) {
        assert_eq!(x, y, "patch tensors must be bitwise identical");
    }
}

/// Acceptance: cache on vs. off yields bitwise-identical predictions
/// for a deterministic request stream.
#[test]
fn cache_on_off_bitwise_identical_stream() {
    let stream: Vec<Tensor<f32>> = (0..6).map(|i| sample(16, 32, (i % 3) as f32)).collect();

    let run = |cache_capacity: usize| -> Vec<Prediction> {
        let cfg = ServeConfig {
            queue_capacity: 64,
            max_batch: 4,
            max_linger: Duration::from_millis(1),
            workers: 1,
            cache_capacity,
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, registry_with("m", 7)).unwrap();
        let predictions: Vec<Prediction> = stream
            .iter()
            .map(|f| {
                let r = server.submit_wait(f.clone());
                assert_eq!(r.kind, ResponseKind::Full);
                r.prediction
            })
            .collect();
        server.shutdown();
        predictions
    };

    let with_cache = run(1024);
    let without_cache = run(0);
    for (a, b) in with_cache.iter().zip(&without_cache) {
        assert_predictions_bitwise_eq(a, b);
    }
}

/// The repetitive stream above must actually exercise the cache.
#[test]
fn repeated_fields_hit_cache() {
    let cfg = ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_millis(1),
        workers: 1,
        cache_capacity: 1024,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, registry_with("m", 7)).unwrap();
    let field = sample(16, 32, 0.0);
    let first = server.submit_wait(field.clone());
    let hits_after_first = server.cache().hits();
    let second = server.submit_wait(field.clone());
    assert!(
        server.cache().hits() > hits_after_first,
        "identical request must hit the decoded-patch cache"
    );
    assert_predictions_bitwise_eq(&first.prediction, &second.prediction);
    server.shutdown();
}

/// Acceptance: with the queue bounded at N and far more than N
/// submissions in flight, the overflow is answered with degraded bin-0
/// responses — no panic, no deadlock — and the shed count is observable.
#[test]
fn saturation_sheds_with_degraded_bin0_responses() {
    let capacity = 3;
    let cfg = ServeConfig {
        queue_capacity: capacity,
        max_batch: 2,
        max_linger: Duration::from_millis(10),
        workers: 1,
        cache_capacity: 0,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, registry_with("m", 7)).unwrap();
    let burst = 24;
    let receivers: Vec<_> = (0..burst)
        .map(|i| server.submit(sample(16, 32, i as f32 * 0.1)))
        .collect();

    let mut full = 0;
    let mut degraded = 0;
    for rx in receivers {
        let response = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("every request must be answered (no deadlock)");
        match response.kind {
            ResponseKind::Full => full += 1,
            ResponseKind::ShedQueueFull => {
                degraded += 1;
                // Degraded = bin 0 everywhere, LR-resolution patches.
                assert!(response
                    .prediction
                    .binning
                    .bin_of_patch
                    .iter()
                    .all(|&b| b == 0));
                assert_eq!(response.prediction.active_cells(), 16 * 32);
            }
            other => panic!("unexpected response kind under saturation: {other:?}"),
        }
    }
    assert_eq!(full + degraded, burst);
    assert!(
        degraded > 0,
        "burst of {burst} over capacity {capacity} must shed"
    );
    assert_eq!(server.stats().shed_queue_full, degraded as u64);
    server.shutdown();
}

/// Satellite: checkpoint round-trip through the registry — save to
/// disk, load back, hot-swap to it, and verify bitwise-identical
/// inference on a fixed seed.
#[test]
fn registry_checkpoint_roundtrip_hot_swap_bitwise_identical() {
    let dir = std::env::temp_dir().join("adarnet_serve_registry_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model_a.json");

    // Save model A to disk via core::checkpoint.
    let (model_a, norm_a) = checkpoint::restore(&ckpt(11)).unwrap();
    checkpoint::save_file(&model_a, &norm_a, &path).unwrap();

    let registry = Arc::new(ModelRegistry::new());
    registry.register("b", ckpt(22));
    registry.load("a", &path).unwrap();
    registry.activate("b").unwrap();

    let cfg = ServeConfig {
        queue_capacity: 16,
        max_batch: 2,
        max_linger: Duration::from_millis(1),
        workers: 1,
        cache_capacity: 256,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, registry.clone()).unwrap();
    let field = sample(16, 16, 0.3);

    let before_swap = server.submit_wait(field.clone());
    assert_eq!(before_swap.generation, 1);

    // Hot swap to the from-disk model; workers re-fetch the shared
    // engine lazily.
    registry.activate("a").unwrap();
    let after_swap = server.submit_wait(field.clone());
    assert_eq!(after_swap.generation, 2);
    assert_eq!(server.stats().engine_swaps, 1);

    // The served result must be bitwise what model A computes directly.
    let mut direct = checkpoint::load_file(&path).map(|(m, _)| m).unwrap();
    let expected = direct.predict(&field);
    assert_predictions_bitwise_eq(&after_swap.prediction, &expected);

    // And differ from model B's output (the swap really happened).
    assert_ne!(
        before_swap.prediction.patches[0], after_swap.prediction.patches[0],
        "different weights must produce different patches"
    );

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Hot swap under concurrent traffic: no panics, every response comes
/// from a coherent generation.
#[test]
fn hot_swap_under_load_is_coherent() {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("a", ckpt(1));
    registry.register("b", ckpt(2));
    registry.activate("a").unwrap();
    let cfg = ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_millis(1),
        workers: 1,
        cache_capacity: 512,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, registry.clone()).unwrap();
    for i in 0..4 {
        let r = server.submit_wait(sample(16, 16, i as f32));
        assert_eq!(r.kind, ResponseKind::Full);
        assert_eq!(r.generation, 1);
    }
    registry.activate("b").unwrap();
    for i in 0..4 {
        let r = server.submit_wait(sample(16, 16, i as f32));
        assert_eq!(r.kind, ResponseKind::Full);
        assert_eq!(r.generation, 2);
    }
    server.shutdown();
}

/// Satellite: every reject path is typed. A tenant over its quota gets
/// `ShedQuota` / `QuotaExceeded`, a distinct stats cell from
/// queue-full, and other tenants are unaffected.
#[test]
fn quota_sheds_are_typed_and_tenant_isolated() {
    use adarnet_serve::{QuotaConfig, RejectReason, SubmitOptions};
    let cfg = ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_millis(1),
        workers: 1,
        cache_capacity: 0,
        quota: Some(QuotaConfig {
            rate_per_sec: 1,
            burst: 2,
        }),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, registry_with("m", 7)).unwrap();
    let opts = |tenant: u64| SubmitOptions {
        tenant,
        ..SubmitOptions::default()
    };
    // Admit back-to-back (admission is decided at submit time; waiting
    // for each reply would let the bucket refill between requests).
    let receivers: Vec<_> = (0..5)
        .map(|i| server.submit_with(sample(16, 32, i as f32), opts(1)))
        .collect();
    let mut quota_shed = 0u64;
    for rx in receivers {
        let r = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("every request answered");
        if r.kind == ResponseKind::ShedQuota {
            quota_shed += 1;
            assert_eq!(r.kind.reject_reason(), Some(RejectReason::QuotaExceeded));
            assert!(r.prediction.binning.bin_of_patch.iter().all(|&b| b == 0));
        }
    }
    assert!(quota_shed >= 2, "burst 2 + 5 rapid requests must shed");
    // Tenant 2's bucket is untouched by tenant 1's exhaustion.
    let r = server.submit_wait_with(sample(16, 32, 9.0), opts(2));
    assert_eq!(r.kind, ResponseKind::Full);
    let stats = server.shutdown();
    assert_eq!(stats.shed_quota, quota_shed);
    assert_eq!(stats.shed_queue_full, 0, "quota sheds must not be lumped");
}

/// Satellite: a request past its deadline is answered with the typed
/// deadline brownout — degraded bin-0, `DeadlineExceeded`, its own
/// stats cell — never silently dropped.
#[test]
fn expired_deadline_gets_typed_brownout_response() {
    use adarnet_serve::{Priority, RejectReason, SubmitOptions};
    use std::time::Instant;
    let cfg = ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_millis(1),
        workers: 1,
        cache_capacity: 0,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, registry_with("m", 7)).unwrap();
    // Already-expired deadline: browned out at admission.
    let r = server.submit_wait_with(
        sample(16, 32, 0.0),
        SubmitOptions {
            priority: Priority::Interactive,
            tenant: 3,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..SubmitOptions::default()
        },
    );
    assert_eq!(r.kind, ResponseKind::BrownoutDeadline);
    assert_eq!(r.kind.reject_reason(), Some(RejectReason::DeadlineExceeded));
    assert!(r.kind.is_degraded());
    assert!(r.prediction.binning.bin_of_patch.iter().all(|&b| b == 0));
    // A generous deadline is served in full, on the requested lane.
    let r = server.submit_wait_with(
        sample(16, 32, 1.0),
        SubmitOptions {
            priority: Priority::Interactive,
            tenant: 3,
            deadline: Some(Instant::now() + Duration::from_secs(60)),
            ..SubmitOptions::default()
        },
    );
    assert_eq!(r.kind, ResponseKind::Full);
    assert_eq!(r.priority, Priority::Interactive);
    let stats = server.shutdown();
    assert_eq!(stats.brownout_deadline, 1);
    assert_eq!(
        stats.shed_queue_full, 0,
        "deadline misses are not queue-full"
    );
    assert_eq!(
        stats.completed_per_lane[0], 1,
        "served on the interactive lane"
    );
}

/// Tentpole: precision routing end-to-end. A tenant configured onto
/// the bf16 plane (and a request overriding to bf16 explicitly) is
/// served by the reduced-precision engine — the response reports the
/// routed plane, the refinement decisions match the f32 plane for the
/// same field, and the per-precision completion counters split.
#[test]
fn precision_routing_per_tenant_and_per_request() {
    use adarnet_nn::Precision;
    use adarnet_serve::SubmitOptions;
    let cfg = ServeConfig {
        queue_capacity: 64,
        max_batch: 4,
        max_linger: Duration::from_millis(1),
        workers: 1,
        cache_capacity: 256,
        default_precision: Precision::F32,
        ..ServeConfig::default()
    }
    .with_tenant_precision(5, Precision::Bf16);
    assert_eq!(cfg.precision_for_tenant(5), Precision::Bf16);
    assert_eq!(cfg.precision_for_tenant(0), Precision::F32);
    let server = Server::start(cfg, registry_with("m", 7)).unwrap();
    let field = sample(16, 32, 0.4);

    // Default tenant rides the f32 plane.
    let f32_resp = server.submit_wait(field.clone());
    assert_eq!(f32_resp.kind, ResponseKind::Full);
    assert_eq!(f32_resp.precision, Precision::F32);

    // Tenant 5 is routed to bf16 by configuration alone.
    let tenant_resp = server.submit_wait_with(
        field.clone(),
        SubmitOptions {
            tenant: 5,
            ..SubmitOptions::default()
        },
    );
    assert_eq!(tenant_resp.kind, ResponseKind::Full);
    assert_eq!(tenant_resp.precision, Precision::Bf16);

    // A per-request override beats the tenant default.
    let request_resp = server.submit_wait_with(
        field.clone(),
        SubmitOptions {
            precision: Some(Precision::Bf16),
            ..SubmitOptions::default()
        },
    );
    assert_eq!(request_resp.kind, ResponseKind::Full);
    assert_eq!(request_resp.precision, Precision::Bf16);

    // The mesh must not change across planes: identical refinement
    // decisions for the same field (the accuracy gate's end-to-end
    // contract, observed through the serving path).
    assert_eq!(
        f32_resp.prediction.binning.bin_of_patch, tenant_resp.prediction.binning.bin_of_patch,
        "bf16 plane changed refinement decisions"
    );
    // And the two bf16-routed responses must agree bitwise — same
    // engine, same field, deterministic per plane (the salted patch
    // cache must not leak f32 entries into the bf16 group).
    assert_predictions_bitwise_eq(&tenant_resp.prediction, &request_resp.prediction);

    let stats = server.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.completed_per_precision[Precision::F32.index()], 1);
    assert_eq!(stats.completed_per_precision[Precision::Bf16.index()], 2);
}
