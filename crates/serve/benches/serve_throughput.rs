//! Batched vs. unbatched serving throughput at 1/8/32 concurrent
//! closed-loop clients.
//!
//! "Batched" is the full service (micro-batching + decoded-patch
//! cache); "unbatched" forces one request per decoder pass with the
//! cache off — naive per-request inference. Same model, same field
//! pool, same client count in both arms.

use std::sync::Arc;
use std::time::Duration;

use adarnet_core::checkpoint;
use adarnet_core::loss::NormStats;
use adarnet_core::network::{AdarNet, AdarNetConfig};
use adarnet_serve::{field_pool, run_closed_loop, ModelRegistry, ServeConfig, Server};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fresh_server(batched: bool) -> Server {
    let model = AdarNet::new(AdarNetConfig {
        ph: 8,
        pw: 8,
        seed: 42,
        ..AdarNetConfig::default()
    });
    let registry = Arc::new(ModelRegistry::new());
    registry.register(
        "bench",
        checkpoint::snapshot(&model, &NormStats::identity()),
    );
    registry.activate("bench").unwrap();
    let base = ServeConfig {
        queue_capacity: 256,
        max_batch: 8,
        max_linger: Duration::from_millis(2),
        workers: 1,
        cache_capacity: 4096,
        ..ServeConfig::default()
    };
    let cfg = if batched { base } else { base.unbatched() };
    Server::start(cfg, registry).unwrap()
}

fn serve_throughput(c: &mut Criterion) {
    let pool = field_pool(8, 16, 32, 1234);
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for concurrency in [1usize, 8, 32] {
        for (label, batched) in [("batched", true), ("unbatched", false)] {
            group.bench_with_input(
                BenchmarkId::new(label, concurrency),
                &concurrency,
                |b, &clients| {
                    // One server per arm so cache warmth persists across
                    // iterations (steady-state serving), torn down after.
                    let server = fresh_server(batched);
                    b.iter(|| run_closed_loop(&server, &pool, clients, 2));
                    server.shutdown();
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, serve_throughput);
criterion_main!(benches);
