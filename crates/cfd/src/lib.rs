//! # adarnet-cfd
//!
//! Physics substrate for the ADARNet reproduction: a 2-D incompressible
//! steady RANS solver with the Spalart–Allmaras one-equation turbulence
//! model (the paper's Eq. 2–4), discretized on the composite patch meshes
//! of [`adarnet_amr`].
//!
//! This crate plays the role OpenFOAM plays in the paper (§4.3):
//! * LR data generation for training,
//! * the physics solver that drives ADARNet's inference to convergence,
//! * the inner solver of the iterative feature-based AMR baseline
//!   (via the [`adarnet_amr::AmrSim`] implementation on [`RansSolver`]).
//!
//! Numerical method and OpenFOAM-substitution rationale are documented in
//! DESIGN.md §2 and §4.

pub mod geometry;
pub mod mesh;
pub mod monitor;
pub mod qoi;
pub mod sa;
pub mod solver;
pub mod state;

pub use geometry::{Body, CaseConfig, SideBc, NU};
pub use mesh::CaseMesh;
pub use monitor::{ConvergenceHistory, RunReport};
pub use qoi::{drag_coefficient, lift_coefficient, skin_friction_coefficient, HOERNER_CYLINDER_CD};
pub use sa::SaConstants;
pub use solver::{RansSolver, SolverConfig};
pub use state::FlowState;
