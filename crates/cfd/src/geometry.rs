//! Case geometries: the paper's three canonical flow families.
//!
//! * Channel flow: diameter 0.1 m, length 6 m, walls top and bottom (§4.1).
//! * Flat plate: height 0.2 m, length 10 m, wall bottom, symmetry top (§4.1).
//! * Flow around solid bodies (ellipse family, cylinder, NACA airfoils):
//!   the paper uses a body-fitted O-grid with a 30-chord far field. We
//!   substitute a Cartesian box with a stair-step immersed body (see
//!   DESIGN.md §2): inlet left, outlet right, symmetry top/bottom. The
//!   near-body physics — no-slip solid, wall distance for SA, the wake —
//!   are preserved; absolute drag carries larger discretization error.
//!
//! Bodies are closed polygons: point-in-polygon gives the solid mask,
//! distance-to-polyline gives the SA wall distance.

use serde::{Deserialize, Serialize};

/// Physical boundary condition on one side of the rectangular domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SideBc {
    /// Fixed velocity `(u_in, 0)`, fixed inflow `nu_tilde`, zero-gradient p.
    Inlet,
    /// Zero-gradient velocity and `nu_tilde`, fixed `p = 0`.
    Outlet,
    /// No-slip wall: zero velocity, `nu_tilde = 0`, zero-gradient p.
    Wall,
    /// Symmetry/free-slip: zero normal velocity, zero-gradient otherwise.
    Symmetry,
}

/// A closed polygonal body immersed in the domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Body {
    /// Boundary vertices, in order (closed implicitly).
    pub pts: Vec<(f64, f64)>,
}

impl Body {
    /// Circle of radius `r` centered at `(cx, cy)`, sampled with `n` points.
    pub fn cylinder(cx: f64, cy: f64, r: f64, n: usize) -> Body {
        assert!(n >= 8, "need at least 8 boundary points");
        let pts = (0..n)
            .map(|k| {
                let t = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                (cx + r * t.cos(), cy + r * t.sin())
            })
            .collect();
        Body { pts }
    }

    /// Ellipse with semi-axes `(a, b)` centered at `(cx, cy)`, rotated by
    /// `alpha_deg` (angle of attack; Figure 7 of the paper).
    pub fn ellipse(cx: f64, cy: f64, a: f64, b: f64, alpha_deg: f64, n: usize) -> Body {
        assert!(n >= 8, "need at least 8 boundary points");
        let alpha = alpha_deg.to_radians();
        let (ca, sa) = (alpha.cos(), alpha.sin());
        let pts = (0..n)
            .map(|k| {
                let t = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                let (x, y) = (a * t.cos(), b * t.sin());
                // Positive alpha pitches the nose up (rotate by -alpha).
                (cx + x * ca + y * sa, cy - x * sa + y * ca)
            })
            .collect();
        Body { pts }
    }

    /// NACA 4-digit airfoil (e.g. "0012", "1412"), chord `c`, leading edge
    /// at `(x_le, y_le)`, angle of attack `alpha_deg` (Figure 8).
    pub fn naca4(code: &str, c: f64, x_le: f64, y_le: f64, alpha_deg: f64, n: usize) -> Body {
        assert_eq!(code.len(), 4, "NACA 4-digit code expected");
        assert!(n >= 8, "need at least 8 boundary points per surface");
        let digits: Vec<u32> = code
            .chars()
            .map(|ch| ch.to_digit(10).expect("NACA code must be digits"))
            .collect();
        let m = digits[0] as f64 / 100.0; // max camber
        let p = digits[1] as f64 / 10.0; // camber position
        let t = (digits[2] * 10 + digits[3]) as f64 / 100.0; // thickness

        // Closed-trailing-edge thickness distribution.
        let yt = |x: f64| -> f64 {
            5.0 * t
                * (0.2969 * x.sqrt() - 0.1260 * x - 0.3516 * x * x + 0.2843 * x * x * x
                    - 0.1036 * x * x * x * x)
        };
        let camber = |x: f64| -> (f64, f64) {
            // m and p are non-negative digit ratios; <= is the exact
            // zero test without a float equality.
            if m <= 0.0 || p <= 0.0 {
                (0.0, 0.0)
            } else if x < p {
                (
                    m / (p * p) * (2.0 * p * x - x * x),
                    2.0 * m / (p * p) * (p - x),
                )
            } else {
                (
                    m / ((1.0 - p) * (1.0 - p)) * ((1.0 - 2.0 * p) + 2.0 * p * x - x * x),
                    2.0 * m / ((1.0 - p) * (1.0 - p)) * (p - x),
                )
            }
        };

        let alpha = alpha_deg.to_radians();
        let (ca, sa) = (alpha.cos(), alpha.sin());
        let mut pts = Vec::with_capacity(2 * n);
        // Upper surface: leading edge -> trailing edge; lower: back. Cosine
        // clustering near the leading edge where curvature is highest.
        for k in 0..n {
            let beta = std::f64::consts::PI * k as f64 / (n - 1) as f64;
            let x = 0.5 * (1.0 - beta.cos());
            let (yc, dyc) = camber(x);
            let th = dyc.atan();
            let xu = x - yt(x) * th.sin();
            let yu = yc + yt(x) * th.cos();
            pts.push((xu, yu));
        }
        for k in (1..n - 1).rev() {
            let beta = std::f64::consts::PI * k as f64 / (n - 1) as f64;
            let x = 0.5 * (1.0 - beta.cos());
            let (yc, dyc) = camber(x);
            let th = dyc.atan();
            let xl = x + yt(x) * th.sin();
            let yl = yc - yt(x) * th.cos();
            pts.push((xl, yl));
        }
        // Scale by chord, rotate by -alpha about the leading edge, translate.
        let pts = pts
            .into_iter()
            .map(|(x, y)| {
                let (x, y) = (x * c, y * c);
                (x_le + x * ca + y * sa, y_le - x * sa + y * ca)
            })
            .collect();
        Body { pts }
    }

    /// Point-in-polygon by ray casting.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let n = self.pts.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = self.pts[i];
            let (xj, yj) = self.pts[j];
            if ((yi > y) != (yj > y)) && (x < (xj - xi) * (y - yi) / (yj - yi) + xi) {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Unsigned distance from `(x, y)` to the body boundary polyline.
    pub fn distance(&self, x: f64, y: f64) -> f64 {
        let n = self.pts.len();
        let mut best = f64::INFINITY;
        for i in 0..n {
            let (x1, y1) = self.pts[i];
            let (x2, y2) = self.pts[(i + 1) % n];
            let (dx, dy) = (x2 - x1, y2 - y1);
            let len2 = dx * dx + dy * dy;
            let t = if len2 > 0.0 {
                (((x - x1) * dx + (y - y1) * dy) / len2).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let (px, py) = (x1 + t * dx, y1 + t * dy);
            let d2 = (x - px) * (x - px) + (y - py) * (y - py);
            if d2 < best {
                best = d2;
            }
        }
        best.sqrt()
    }

    /// Axis-aligned bounding box `(xmin, ymin, xmax, ymax)`.
    pub fn bbox(&self) -> (f64, f64, f64, f64) {
        let mut bb = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for &(x, y) in &self.pts {
            bb.0 = bb.0.min(x);
            bb.1 = bb.1.min(y);
            bb.2 = bb.2.max(x);
            bb.3 = bb.3.max(y);
        }
        bb
    }

    /// Frontal (projected vertical) extent, the reference area for drag.
    pub fn frontal_height(&self) -> f64 {
        let (_, ymin, _, ymax) = self.bbox();
        ymax - ymin
    }
}

/// A complete flow case: domain, boundary conditions, fluid properties,
/// and an optional immersed body.
///
/// ```
/// use adarnet_cfd::CaseConfig;
///
/// let case = CaseConfig::channel(2.5e3); // a paper test case (§5)
/// assert_eq!(case.ly, 0.1);              // 0.1 m diameter
/// assert!((case.u_in - 0.25).abs() < 1e-12);
/// assert!(case.body.is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseConfig {
    /// Human-readable case name (used in reports).
    pub name: String,
    /// Domain length in x (meters).
    pub lx: f64,
    /// Domain height in y (meters).
    pub ly: f64,
    /// Inlet velocity (m/s).
    pub u_in: f64,
    /// Laminar kinematic viscosity (m^2/s).
    pub nu: f64,
    /// Boundary condition at `y = 0`.
    pub bottom: SideBc,
    /// Boundary condition at `y = ly`.
    pub top: SideBc,
    /// Boundary condition at `x = 0`.
    pub left: SideBc,
    /// Boundary condition at `x = lx`.
    pub right: SideBc,
    /// Immersed solid body, if any.
    pub body: Option<Body>,
    /// Reynolds number this case was configured for (bookkeeping).
    pub reynolds: f64,
}

/// Laminar kinematic viscosity shared by all cases (air-like).
pub const NU: f64 = 1e-5;

impl CaseConfig {
    /// Channel flow at Reynolds number `re` (based on the 0.1 m diameter):
    /// walls top and bottom, inlet left, outlet right (§4.1).
    pub fn channel(re: f64) -> CaseConfig {
        let d = 0.1;
        CaseConfig {
            name: format!("channel Re={re:.3e}"),
            lx: 6.0,
            ly: d,
            u_in: re * NU / d,
            nu: NU,
            bottom: SideBc::Wall,
            top: SideBc::Wall,
            left: SideBc::Inlet,
            right: SideBc::Outlet,
            body: None,
            reynolds: re,
        }
    }

    /// Flat plate at Reynolds number `re` (based on the 10 m plate length):
    /// wall bottom, symmetry top (§4.1).
    pub fn flat_plate(re: f64) -> CaseConfig {
        let l = 10.0;
        CaseConfig {
            name: format!("flat plate Re={re:.3e}"),
            lx: l,
            ly: 0.2,
            u_in: re * NU / l,
            nu: NU,
            bottom: SideBc::Wall,
            top: SideBc::Symmetry,
            left: SideBc::Inlet,
            right: SideBc::Outlet,
            body: None,
            reynolds: re,
        }
    }

    /// External flow around an immersed body of chord ~1 m in an 8 m x 2 m
    /// box (body centered at x = 2 m): inlet left, outlet right, symmetry
    /// top/bottom. Substitutes the paper's 30-chord O-grid (DESIGN.md §2).
    fn external(name: String, re: f64, body: Body) -> CaseConfig {
        let c = 1.0;
        CaseConfig {
            name,
            lx: 8.0,
            ly: 2.0,
            u_in: re * NU / c,
            nu: NU,
            bottom: SideBc::Symmetry,
            top: SideBc::Symmetry,
            left: SideBc::Inlet,
            right: SideBc::Outlet,
            body: Some(body),
            reynolds: re,
        }
    }

    /// Flow around a cylinder of diameter 1 m (test geometry, Figure 8).
    pub fn cylinder(re: f64) -> CaseConfig {
        Self::external(
            format!("cylinder Re={re:.3e}"),
            re,
            Body::cylinder(2.0, 1.0, 0.5, 256),
        )
    }

    /// Flow around the symmetric NACA0012 airfoil (test geometry, Figure 8).
    pub fn naca0012(re: f64) -> CaseConfig {
        Self::external(
            format!("NACA0012 Re={re:.3e}"),
            re,
            Body::naca4("0012", 1.0, 1.5, 1.0, 0.0, 128),
        )
    }

    /// Flow around the non-symmetric NACA1412 airfoil (test geometry,
    /// Figure 8).
    pub fn naca1412(re: f64) -> CaseConfig {
        Self::external(
            format!("NACA1412 Re={re:.3e}"),
            re,
            Body::naca4("1412", 1.0, 1.5, 1.0, 0.0, 128),
        )
    }

    /// Flow around a training-family ellipse (Figure 7): aspect ratio
    /// `b/a = aspect`, angle of attack `alpha_deg`.
    pub fn ellipse(aspect: f64, alpha_deg: f64, re: f64) -> CaseConfig {
        let a = 0.5; // semi-chord: chord 1 m
        Self::external(
            format!("ellipse ar={aspect} aoa={alpha_deg} Re={re:.3e}"),
            re,
            Body::ellipse(2.0, 1.0, a, a * aspect, alpha_deg, 256),
        )
    }

    /// True if `(x, y)` lies inside the solid body.
    pub fn is_solid(&self, x: f64, y: f64) -> bool {
        self.body
            .as_ref()
            .map(|b| b.contains(x, y))
            .unwrap_or(false)
    }

    /// Distance to the nearest no-slip wall (domain walls and/or body),
    /// used by the SA destruction term. Returns a large value if the case
    /// has no walls.
    pub fn wall_distance(&self, x: f64, y: f64) -> f64 {
        let mut d = f64::INFINITY;
        if self.bottom == SideBc::Wall {
            d = d.min(y);
        }
        if self.top == SideBc::Wall {
            d = d.min(self.ly - y);
        }
        if self.left == SideBc::Wall {
            d = d.min(x);
        }
        if self.right == SideBc::Wall {
            d = d.min(self.lx - x);
        }
        if let Some(body) = &self.body {
            d = d.min(body.distance(x, y));
        }
        if d.is_infinite() {
            // No walls anywhere: SA destruction vanishes.
            d = 1e6;
        }
        d.max(0.0)
    }

    /// Inflow value of the SA working variable (`nu_tilde = 3 nu`, the
    /// standard SA freestream recommendation).
    pub fn nu_tilde_inflow(&self) -> f64 {
        3.0 * self.nu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cylinder_contains_and_distance() {
        let b = Body::cylinder(0.0, 0.0, 1.0, 256);
        assert!(b.contains(0.0, 0.0));
        assert!(b.contains(0.5, 0.5));
        assert!(!b.contains(1.5, 0.0));
        // Distance from origin to unit circle boundary ~ 1.
        assert!((b.distance(0.0, 0.0) - 1.0).abs() < 1e-3);
        // Distance from (2, 0) ~ 1.
        assert!((b.distance(2.0, 0.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn ellipse_respects_aspect_and_rotation() {
        let b = Body::ellipse(0.0, 0.0, 1.0, 0.25, 0.0, 256);
        assert!(b.contains(0.9, 0.0));
        assert!(!b.contains(0.0, 0.5));
        let (xmin, ymin, xmax, ymax) = b.bbox();
        assert!((xmax - xmin - 2.0).abs() < 1e-2);
        assert!((ymax - ymin - 0.5).abs() < 1e-2);
        // 90-degree rotation swaps the extents.
        let b90 = Body::ellipse(0.0, 0.0, 1.0, 0.25, 90.0, 256);
        let (x0, y0, x1, y1) = b90.bbox();
        assert!((x1 - x0 - 0.5).abs() < 1e-2);
        assert!((y1 - y0 - 2.0).abs() < 1e-2);
    }

    #[test]
    fn naca0012_is_symmetric() {
        let b = Body::naca4("0012", 1.0, 0.0, 0.0, 0.0, 64);
        // Max thickness of a 0012 is 12% of chord.
        let (_, ymin, _, ymax) = b.bbox();
        assert!((ymax - ymin - 0.12).abs() < 5e-3, "{}", ymax - ymin);
        assert!((ymax + ymin).abs() < 1e-9, "symmetric about the chord line");
        // Mid-chord interior point is inside; above the surface is not.
        assert!(b.contains(0.3, 0.0));
        assert!(!b.contains(0.3, 0.08));
    }

    #[test]
    fn naca1412_is_cambered() {
        let b = Body::naca4("1412", 1.0, 0.0, 0.0, 0.0, 64);
        let (_, ymin, _, ymax) = b.bbox();
        // Camber shifts the section upward: |ymax| > |ymin|.
        assert!(ymax > -ymin, "ymax={ymax} ymin={ymin}");
    }

    #[test]
    fn channel_wall_distance() {
        let c = CaseConfig::channel(2.5e3);
        assert!((c.u_in - 0.25).abs() < 1e-12);
        assert!((c.wall_distance(3.0, 0.02) - 0.02).abs() < 1e-12);
        assert!((c.wall_distance(3.0, 0.09) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn flat_plate_only_bottom_wall() {
        let c = CaseConfig::flat_plate(2.5e5);
        assert!((c.wall_distance(5.0, 0.15) - 0.15).abs() < 1e-12);
        assert_eq!(c.top, SideBc::Symmetry);
    }

    #[test]
    fn cylinder_case_wall_distance_is_body_distance() {
        let c = CaseConfig::cylinder(1e5);
        assert!(c.is_solid(2.0, 1.0));
        assert!(!c.is_solid(0.5, 1.0));
        // Point one radius upstream of the surface.
        assert!((c.wall_distance(1.0, 1.0) - 0.5).abs() < 1e-2);
        assert!((c.u_in - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frontal_height_of_cylinder_is_diameter() {
        let b = Body::cylinder(0.0, 0.0, 0.5, 128);
        assert!((b.frontal_height() - 1.0).abs() < 1e-3);
    }
}
