//! Quantities of interest for the grid-convergence study (Figure 11).
//!
//! * `Cf` — skin-friction coefficient at `x = 0.95 L` on the lower wall
//!   (channel flow and flat plate test cases).
//! * `Cd` — drag coefficient of the immersed body (cylinder and airfoil
//!   test cases), pressure plus friction, integrated over the stair-step
//!   surface.
//!
//! Both are evaluated on a uniform sampling of the composite solution at
//! the mesh's finest level, so the value reflects the composite mesh the
//! solver actually used.

use crate::mesh::CaseMesh;
use crate::state::FlowState;

/// Experimental cylinder drag coefficient from Hoerner (1965), the red
/// reference point in Figure 11.
pub const HOERNER_CYLINDER_CD: f64 = 1.108;

fn finest_level(mesh: &CaseMesh) -> u8 {
    mesh.map.levels().iter().copied().max().unwrap_or(0)
}

/// Skin-friction coefficient `Cf = tau_w / (0.5 u_in^2)` on the bottom
/// wall at `x = x_frac * lx`, with `tau_w = nu * u1 / (dy / 2)` from the
/// first cell row (one-sided gradient, no-slip wall).
pub fn skin_friction_coefficient(state: &FlowState, mesh: &CaseMesh, x_frac: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x_frac), "x_frac must be in [0, 1]");
    let level = finest_level(mesh);
    let u = state.u.to_uniform(level);
    let (dy, _) = mesh.cell_size(level);
    let j = ((x_frac * u.nx() as f64) as usize).min(u.nx() - 1);
    let u1 = u.get(0, j);
    let tau_w = mesh.case.nu * u1 / (dy / 2.0);
    tau_w / (0.5 * mesh.case.u_in * mesh.case.u_in)
}

/// Lift coefficient of the immersed body:
/// `Cl = F_y / (0.5 u_in^2 * chord)`, pressure force only (friction lift
/// is negligible for these sections).
///
/// Zero within discretization error for symmetric bodies at zero
/// incidence (cylinder, NACA0012); nonzero for the cambered NACA1412.
/// Panics if the case has no body.
pub fn lift_coefficient(state: &FlowState, mesh: &CaseMesh) -> f64 {
    let body = mesh
        .case
        .body
        .as_ref()
        .expect("lift_coefficient requires an immersed body");
    let level = finest_level(mesh);
    let p = state.p.to_uniform(level);
    let (dy, dx) = mesh.cell_size(level);
    let (ny, nx) = (p.ny(), p.nx());
    let is_solid = |i: i64, j: i64| -> bool {
        if i < 0 || j < 0 || i >= ny as i64 || j >= nx as i64 {
            return false;
        }
        body.contains((j as f64 + 0.5) * dx, (i as f64 + 0.5) * dy)
    };
    let mut f_y = 0.0;
    for i in 0..ny as i64 {
        for j in 0..nx as i64 {
            if is_solid(i, j) {
                continue;
            }
            // y-normal faces: pressure from the fluid side pushes the body
            // away from that side.
            if is_solid(i + 1, j) {
                // Fluid below the surface pushes the body up (+y).
                f_y += p.get(i as usize, j as usize) * dx;
            }
            if is_solid(i - 1, j) {
                f_y -= p.get(i as usize, j as usize) * dx;
            }
        }
    }
    let (xmin, _, xmax, _) = body.bbox();
    let chord = (xmax - xmin).max(1e-12);
    f_y / (0.5 * mesh.case.u_in * mesh.case.u_in * chord)
}

/// Drag coefficient of the immersed body:
/// `Cd = (F_pressure + F_friction) / (0.5 u_in^2 * frontal_height)`.
///
/// Forces are integrated over the stair-step solid surface at the mesh's
/// finest level: pressure acts on x-normal faces, wall shear on y-normal
/// faces. Panics if the case has no body.
pub fn drag_coefficient(state: &FlowState, mesh: &CaseMesh) -> f64 {
    let body = mesh
        .case
        .body
        .as_ref()
        .expect("drag_coefficient requires an immersed body");
    let level = finest_level(mesh);
    let u = state.u.to_uniform(level);
    let p = state.p.to_uniform(level);
    let (dy, dx) = mesh.cell_size(level);
    let (ny, nx) = (u.ny(), u.nx());

    // Uniform-resolution solid mask from the geometry.
    let is_solid = |i: i64, j: i64| -> bool {
        if i < 0 || j < 0 || i >= ny as i64 || j >= nx as i64 {
            return false;
        }
        let x = (j as f64 + 0.5) * dx;
        let y = (i as f64 + 0.5) * dy;
        body.contains(x, y)
    };

    let mut f_pressure = 0.0;
    let mut f_friction = 0.0;
    for i in 0..ny as i64 {
        for j in 0..nx as i64 {
            if is_solid(i, j) {
                continue;
            }
            let (iu, ju) = (i as usize, j as usize);
            // x-normal faces: fluid cell with solid neighbor east/west.
            if is_solid(i, j + 1) {
                // Surface faces -x; pressure pushes the body +x.
                f_pressure += p.get(iu, ju) * dy;
            }
            if is_solid(i, j - 1) {
                // Surface faces +x; pressure pushes the body -x.
                f_pressure -= p.get(iu, ju) * dy;
            }
            // y-normal faces: wall shear drags the body along +-x with the
            // local flow.
            if is_solid(i + 1, j) || is_solid(i - 1, j) {
                let tau = mesh.case.nu * u.get(iu, ju) / (dy / 2.0);
                f_friction += tau * dx;
            }
        }
    }

    let q = 0.5 * mesh.case.u_in * mesh.case.u_in * body.frontal_height();
    (f_pressure + f_friction) / q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CaseConfig;
    use adarnet_amr::{PatchLayout, RefinementMap};

    fn channel_mesh() -> CaseMesh {
        let layout = PatchLayout::new(2, 8, 8, 8);
        CaseMesh::new(
            CaseConfig::channel(2.5e3),
            RefinementMap::uniform(layout, 0, 3),
        )
    }

    #[test]
    fn cf_zero_for_zero_flow() {
        let mesh = channel_mesh();
        let state = FlowState::zeros(&mesh.map);
        assert_eq!(skin_friction_coefficient(&state, &mesh, 0.95), 0.0);
    }

    #[test]
    fn cf_positive_for_forward_flow_and_scales_linearly() {
        let mesh = channel_mesh();
        let mut state = FlowState::zeros(&mesh.map);
        for px in 0..8 {
            let patch = state.u.patch_mut(0, px);
            for j in 0..8 {
                patch.set(0, j, 0.1);
            }
        }
        let cf1 = skin_friction_coefficient(&state, &mesh, 0.95);
        assert!(cf1 > 0.0);
        for px in 0..8 {
            let patch = state.u.patch_mut(0, px);
            for j in 0..8 {
                patch.set(0, j, 0.2);
            }
        }
        let cf2 = skin_friction_coefficient(&state, &mesh, 0.95);
        assert!((cf2 / cf1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cd_positive_for_uniform_pressure_difference() {
        // Freestream pressure higher upstream than downstream of the body
        // gives positive pressure drag.
        let layout = PatchLayout::new(2, 8, 8, 8);
        let mesh = CaseMesh::new(
            CaseConfig::cylinder(1e5),
            RefinementMap::uniform(layout, 1, 3),
        );
        let mut state = FlowState::zeros(&mesh.map);
        // p = -x gradient: higher pressure on the upstream (west) side.
        let layoutc = *mesh.layout();
        for py in 0..layoutc.npy {
            for px in 0..layoutc.npx {
                let (h, w) = layoutc.patch_extent(mesh.map.level(py, px));
                for i in 0..h {
                    for j in 0..w {
                        let (x, _) = {
                            let level = mesh.map.level(py, px);
                            let (_, dxl) = mesh.cell_size(level);
                            let x0 = px as f64 * layoutc.pw as f64 * mesh.case.lx
                                / layoutc.coarse_w() as f64;
                            (x0 + (j as f64 + 0.5) * dxl, 0.0)
                        };
                        state.p.patch_mut(py, px).set(i, j, -x);
                    }
                }
            }
        }
        let cd = drag_coefficient(&state, &mesh);
        assert!(cd > 0.0, "cd = {cd}");
    }

    #[test]
    #[should_panic(expected = "requires an immersed body")]
    fn cd_requires_body() {
        let mesh = channel_mesh();
        let state = FlowState::zeros(&mesh.map);
        let _ = drag_coefficient(&state, &mesh);
    }

    #[test]
    fn lift_zero_for_uniform_pressure() {
        // A constant pressure field exerts no net lift on a closed body.
        let layout = PatchLayout::new(4, 8, 8, 8);
        let mesh = CaseMesh::new(
            CaseConfig::cylinder(1e5),
            RefinementMap::uniform(layout, 1, 3),
        );
        let mut state = FlowState::zeros(&mesh.map);
        for py in 0..4 {
            for px in 0..8 {
                state.p.patch_mut(py, px).fill(3.0);
            }
        }
        let cl = lift_coefficient(&state, &mesh);
        assert!(cl.abs() < 1e-9, "cl = {cl}");
    }

    #[test]
    fn lift_positive_when_pressure_higher_below() {
        // Higher pressure under the body than above it lifts it.
        let layout = PatchLayout::new(4, 8, 8, 8);
        let mesh = CaseMesh::new(
            CaseConfig::cylinder(1e5),
            RefinementMap::uniform(layout, 1, 3),
        );
        let mut state = FlowState::zeros(&mesh.map);
        let ly = mesh.case.ly;
        let layoutc = *mesh.layout();
        for py in 0..layoutc.npy {
            for px in 0..layoutc.npx {
                let level = mesh.map.level(py, px);
                let (dyl, _) = mesh.cell_size(level);
                let y0 = py as f64 * layoutc.ph as f64 * ly / layoutc.coarse_h() as f64;
                let (h, w) = layoutc.patch_extent(level);
                for i in 0..h {
                    let y = y0 + (i as f64 + 0.5) * dyl;
                    for j in 0..w {
                        state.p.patch_mut(py, px).set(i, j, ly - y); // high below
                    }
                }
            }
        }
        let cl = lift_coefficient(&state, &mesh);
        assert!(cl > 0.0, "cl = {cl}");
    }
}
