//! Case meshes: a [`CaseConfig`] discretized on a composite patch mesh,
//! with precomputed solid masks and SA wall distances.

use adarnet_amr::{PatchLayout, RefinementMap};
use rayon::prelude::*;

use crate::geometry::CaseConfig;

/// A [`CaseConfig`] bound to a [`RefinementMap`]: per-cell solid masks and
/// wall distances at each patch's resolution.
#[derive(Debug, Clone)]
pub struct CaseMesh {
    /// The physical case.
    pub case: CaseConfig,
    /// The composite mesh.
    pub map: RefinementMap,
    /// Per-patch row-major solid mask (true = inside the body).
    pub solid: Vec<Vec<bool>>,
    /// Per-patch row-major wall distance at cell centers, clamped to at
    /// least half the local cell diagonal (SA needs d > 0).
    pub dist: Vec<Vec<f64>>,
}

impl CaseMesh {
    /// Discretize `case` on `map`, computing masks and wall distances.
    /// Patch work is embarrassingly parallel and rayon-distributed, since
    /// polygon distance over fine immersed-body patches is the single most
    /// expensive setup step.
    pub fn new(case: CaseConfig, map: RefinementMap) -> CaseMesh {
        let layout = *map.layout();
        let per_patch: Vec<(Vec<bool>, Vec<f64>)> = (0..layout.num_patches())
            .into_par_iter()
            .map(|idx| {
                let (py, px) = layout.coords(idx);
                let level = map.level_at(idx);
                let (h, w) = layout.patch_extent(level);
                let dx = case.lx / (layout.coarse_w() << level) as f64;
                let dy = case.ly / (layout.coarse_h() << level) as f64;
                let x0 = px as f64 * layout.pw as f64 * case.lx / layout.coarse_w() as f64;
                let y0 = py as f64 * layout.ph as f64 * case.ly / layout.coarse_h() as f64;
                let dmin = 0.5 * (dx * dx + dy * dy).sqrt();
                let mut solid = Vec::with_capacity(h * w);
                let mut dist = Vec::with_capacity(h * w);
                for i in 0..h {
                    for j in 0..w {
                        let x = x0 + (j as f64 + 0.5) * dx;
                        let y = y0 + (i as f64 + 0.5) * dy;
                        solid.push(case.is_solid(x, y));
                        dist.push(case.wall_distance(x, y).max(dmin));
                    }
                }
                (solid, dist)
            })
            .collect();
        let (solid, dist) = per_patch.into_iter().unzip();
        CaseMesh {
            case,
            map,
            solid,
            dist,
        }
    }

    /// The patch layout.
    pub fn layout(&self) -> &PatchLayout {
        self.map.layout()
    }

    /// Level-0 cell size `(dy0, dx0)`.
    pub fn cell_size0(&self) -> (f64, f64) {
        (
            self.case.ly / self.layout().coarse_h() as f64,
            self.case.lx / self.layout().coarse_w() as f64,
        )
    }

    /// Cell size `(dy, dx)` at refinement level `level`.
    pub fn cell_size(&self, level: u8) -> (f64, f64) {
        let (dy0, dx0) = self.cell_size0();
        let s = (1u64 << level) as f64;
        (dy0 / s, dx0 / s)
    }

    /// Physical center of cell `(i, j)` in patch `(py, px)`.
    pub fn cell_center(&self, py: usize, px: usize, i: usize, j: usize) -> (f64, f64) {
        let layout = self.layout();
        let level = self.map.level(py, px);
        let (dy, dx) = self.cell_size(level);
        let x0 = px as f64 * layout.pw as f64 * self.case.lx / layout.coarse_w() as f64;
        let y0 = py as f64 * layout.ph as f64 * self.case.ly / layout.coarse_h() as f64;
        (x0 + (j as f64 + 0.5) * dx, y0 + (i as f64 + 0.5) * dy)
    }

    /// Number of fluid (non-solid) cells across the mesh.
    pub fn fluid_cells(&self) -> usize {
        self.solid
            .iter()
            .map(|p| p.iter().filter(|&&s| !s).count())
            .sum()
    }

    /// Total active cells.
    pub fn active_cells(&self) -> usize {
        self.solid.iter().map(|p| p.len()).sum()
    }

    /// Rebind this mesh to a new refinement map (same case), recomputing
    /// masks and distances.
    pub fn with_map(&self, map: RefinementMap) -> CaseMesh {
        CaseMesh::new(self.case.clone(), map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CaseConfig;

    fn small_layout() -> PatchLayout {
        PatchLayout::new(2, 8, 8, 8) // 16 x 64 coarse cells
    }

    #[test]
    fn channel_mesh_has_no_solids() {
        let map = RefinementMap::uniform(small_layout(), 0, 3);
        let mesh = CaseMesh::new(CaseConfig::channel(2.5e3), map);
        assert_eq!(mesh.fluid_cells(), mesh.active_cells());
        let (dy0, dx0) = mesh.cell_size0();
        assert!((dy0 - 0.1 / 16.0).abs() < 1e-12);
        assert!((dx0 - 6.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn channel_wall_distance_clamped_positive() {
        let map = RefinementMap::uniform(small_layout(), 0, 3);
        let mesh = CaseMesh::new(CaseConfig::channel(2.5e3), map);
        for p in &mesh.dist {
            for &d in p {
                assert!(d > 0.0);
            }
        }
        // Wall distance of the first interior row ~ dy/2 (clamped at half
        // diagonal, which is larger here because dx >> dy).
        let d = mesh.dist[0][0];
        assert!(d >= 0.1 / 16.0 / 2.0);
    }

    #[test]
    fn cylinder_mesh_masks_the_body() {
        let map = RefinementMap::uniform(small_layout(), 1, 3);
        let mesh = CaseMesh::new(CaseConfig::cylinder(1e5), map);
        assert!(mesh.fluid_cells() < mesh.active_cells());
        // Solid fraction ~ area(pi r^2) / domain area = pi*0.25/16 ~ 4.9%.
        let frac = 1.0 - mesh.fluid_cells() as f64 / mesh.active_cells() as f64;
        assert!((frac - 0.049).abs() < 0.02, "solid fraction {frac}");
    }

    #[test]
    fn cell_center_positions() {
        let map = RefinementMap::uniform(small_layout(), 0, 3);
        let mesh = CaseMesh::new(CaseConfig::channel(2.5e3), map);
        let (x, y) = mesh.cell_center(0, 0, 0, 0);
        assert!((x - 6.0 / 64.0 / 2.0).abs() < 1e-12);
        assert!((y - 0.1 / 16.0 / 2.0).abs() < 1e-12);
        // Last cell of last patch.
        let (x, y) = mesh.cell_center(1, 7, 7, 7);
        assert!((x - (6.0 - 6.0 / 64.0 / 2.0)).abs() < 1e-12);
        assert!((y - (0.1 - 0.1 / 16.0 / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn finer_map_refines_mask_resolution() {
        let layout = small_layout();
        let coarse = CaseMesh::new(
            CaseConfig::cylinder(1e5),
            RefinementMap::uniform(layout, 0, 3),
        );
        let fine = coarse.with_map(RefinementMap::uniform(layout, 2, 3));
        assert_eq!(fine.active_cells(), coarse.active_cells() * 16);
        // Solid fraction converges toward the exact area ratio as cells
        // shrink; fine should be at least as accurate.
        let exact = std::f64::consts::PI * 0.25 / 16.0;
        let f_frac = 1.0 - fine.fluid_cells() as f64 / fine.active_cells() as f64;
        assert!((f_frac - exact).abs() < 0.01, "{f_frac} vs {exact}");
    }
}
