//! Steady incompressible RANS + Spalart–Allmaras solver on composite patch
//! meshes, via artificial-compressibility pseudo-time marching.
//!
//! Role in the reproduction: this is the **physics solver** of the paper's
//! end-to-end framework (OpenFOAM `pimpleFoam` in §4.3). It (a) generates
//! LR training/input data, (b) drives ADARNet's DNN inference to
//! convergence on the DNN's non-uniform mesh, and (c) is the inner solver
//! of the iterative AMR baseline.
//!
//! Numerics (see DESIGN.md §4 for the OpenFOAM substitution argument):
//! * continuity is relaxed with an artificial compressibility term
//!   `dp/dtau + beta * div(u) = 0`, plus Jameson-style scalar pressure
//!   dissipation to suppress collocated-grid odd-even decoupling;
//! * convection first-order upwind, diffusion central with face-averaged
//!   effective viscosity `nu + nu_t`;
//! * SA transport with the standard production/destruction/diffusion
//!   split ([`crate::sa`]);
//! * explicit local pseudo-time stepping with a CFL bound combining
//!   convective, acoustic, and viscous limits;
//! * patch sweeps are rayon-parallel; ghost lines across refinement-level
//!   jumps come from [`CompositeField::ghost_line`].

use adarnet_amr::{gradient_indicator, AmrSim, RefinementMap, Side, SolveStats};
use rayon::prelude::*;
use std::time::Instant;

use crate::geometry::SideBc;
use crate::mesh::CaseMesh;
use crate::sa::{self, SaConstants};
use crate::state::FlowState;

/// Solver tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// CFL number for the explicit pseudo-time step.
    pub cfl: f64,
    /// Artificial compressibility `beta = beta_factor * u_in^2`.
    pub beta_factor: f64,
    /// Pressure dissipation coefficient (Jameson-style 2nd difference).
    pub kp: f64,
    /// Convection-scheme blend: `0.0` = pure first-order upwind (robust,
    /// diffusive), `1.0` = pure central (2nd-order, needs the pressure
    /// dissipation for stability). The classic hybrid scheme; values up to
    /// ~0.7 are stable on the bench cases and reduce numerical diffusion.
    pub conv_blend: f64,
    /// Convergence tolerance on the normalized momentum residual.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: u64,
    /// How often (iterations) the residual is evaluated.
    pub check_every: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            cfl: 0.6,
            beta_factor: 1.0,
            kp: 0.25,
            conv_blend: 0.0,
            tol: 2e-3,
            max_iters: 20_000,
            check_every: 10,
        }
    }
}

/// One patch's padded working arrays: `(ny + 2) x (nx + 2)` with ghost ring.
struct Padded {
    ny: usize,
    nx: usize,
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<f64>,
    nt: Vec<f64>,
    solid: Vec<bool>,
}

impl Padded {
    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> usize {
        i * (self.nx + 2) + j
    }
}

/// The RANS + SA solver bound to a mesh and state.
pub struct RansSolver {
    /// Discretized case (masks, wall distances).
    pub mesh: CaseMesh,
    /// Current flow state.
    pub state: FlowState,
    /// Tuning knobs.
    pub cfg: SolverConfig,
    /// SA closure constants.
    pub sa: SaConstants,
    /// `(iteration, normalized residual)` samples.
    pub history: Vec<(u64, f64)>,
    iters_done: u64,
}

impl RansSolver {
    /// Create a solver from a mesh with a freestream initial state.
    pub fn new(mesh: CaseMesh, cfg: SolverConfig) -> RansSolver {
        let state = FlowState::freestream(&mesh);
        RansSolver {
            mesh,
            state,
            cfg,
            sa: SaConstants::standard(),
            history: Vec::new(),
            iters_done: 0,
        }
    }

    /// Create a solver starting from an existing state (e.g. a DNN
    /// prediction to be driven to convergence).
    pub fn with_state(mesh: CaseMesh, state: FlowState, cfg: SolverConfig) -> RansSolver {
        assert_eq!(
            state.map(),
            &mesh.map,
            "state and mesh must share a refinement map"
        );
        RansSolver {
            mesh,
            state,
            cfg,
            sa: SaConstants::standard(),
            history: Vec::new(),
            iters_done: 0,
        }
    }

    /// Total iterations performed so far by this solver instance.
    pub fn iterations(&self) -> u64 {
        self.iters_done
    }

    fn beta(&self) -> f64 {
        (self.cfg.beta_factor * self.mesh.case.u_in * self.mesh.case.u_in).max(1e-8)
    }

    /// Build the padded array for one patch from the current state.
    fn pad_patch(&self, py: usize, px: usize) -> Padded {
        let s = &self.state;
        let layout = self.mesh.layout();
        let idx = layout.idx(py, px);
        let gu = s.u.patch_at(idx);
        let gv = s.v.patch_at(idx);
        let gp = s.p.patch_at(idx);
        let gn = s.nt.patch_at(idx);
        let (ny, nx) = (gu.ny(), gu.nx());
        let (pnx, stride) = (nx + 2, nx + 2);
        let n = (ny + 2) * pnx;
        let mut pad = Padded {
            ny,
            nx,
            u: vec![0.0; n],
            v: vec![0.0; n],
            p: vec![0.0; n],
            nt: vec![0.0; n],
            solid: vec![false; n],
        };
        // Interior.
        for i in 0..ny {
            let base = (i + 1) * stride + 1;
            pad.u[base..base + nx].copy_from_slice(&gu.as_slice()[i * nx..(i + 1) * nx]);
            pad.v[base..base + nx].copy_from_slice(&gv.as_slice()[i * nx..(i + 1) * nx]);
            pad.p[base..base + nx].copy_from_slice(&gp.as_slice()[i * nx..(i + 1) * nx]);
            pad.nt[base..base + nx].copy_from_slice(&gn.as_slice()[i * nx..(i + 1) * nx]);
            for j in 0..nx {
                pad.solid[base + j] = self.mesh.solid[idx][i * nx + j];
            }
        }

        let u_in = self.mesh.case.u_in;
        let nt_in = self.mesh.case.nu_tilde_inflow();

        // Ghost values for one variable along one side, from the neighbor
        // patch or from the physical BC.
        // Interior line adjacent to each side, per variable.
        let fill_side = |pad_field: &mut [f64],
                         field: &adarnet_amr::CompositeField,
                         side: Side,
                         // (interior_value) -> ghost_value at a physical BC
                         bc: &dyn Fn(f64) -> f64| {
            match field.ghost_line(py, px, side) {
                Some(g) => match side {
                    Side::ILo => {
                        for (j, &val) in g.iter().enumerate() {
                            pad_field[j + 1] = val;
                        }
                    }
                    Side::IHi => {
                        for (j, &val) in g.iter().enumerate() {
                            pad_field[(ny + 1) * stride + j + 1] = val;
                        }
                    }
                    Side::JLo => {
                        for (i, &val) in g.iter().enumerate() {
                            pad_field[(i + 1) * stride] = val;
                        }
                    }
                    Side::JHi => {
                        for (i, &val) in g.iter().enumerate() {
                            pad_field[(i + 1) * stride + nx + 1] = val;
                        }
                    }
                },
                None => match side {
                    Side::ILo => {
                        for j in 0..nx {
                            pad_field[j + 1] = bc(pad_field[stride + j + 1]);
                        }
                    }
                    Side::IHi => {
                        for j in 0..nx {
                            pad_field[(ny + 1) * stride + j + 1] =
                                bc(pad_field[ny * stride + j + 1]);
                        }
                    }
                    Side::JLo => {
                        for i in 0..ny {
                            pad_field[(i + 1) * stride] = bc(pad_field[(i + 1) * stride + 1]);
                        }
                    }
                    Side::JHi => {
                        for i in 0..ny {
                            pad_field[(i + 1) * stride + nx + 1] =
                                bc(pad_field[(i + 1) * stride + nx]);
                        }
                    }
                },
            }
        };

        // Physical BC ghost formulas per variable. `i = 0` is the domain
        // bottom, so Side::ILo at py = 0 is the bottom boundary.
        let case = &self.mesh.case;
        for side in Side::ALL {
            let bc_kind = match side {
                Side::ILo => case.bottom,
                Side::IHi => case.top,
                Side::JLo => case.left,
                Side::JHi => case.right,
            };
            let tangential_x = matches!(side, Side::ILo | Side::IHi);
            type BcFn = Box<dyn Fn(f64) -> f64>;
            let (bc_u, bc_v): (BcFn, BcFn) = match bc_kind {
                SideBc::Inlet => (Box::new(move |c| 2.0 * u_in - c), Box::new(|c| -c)),
                SideBc::Outlet => (Box::new(|c| c), Box::new(|c| c)),
                SideBc::Wall => (Box::new(|c| -c), Box::new(|c| -c)),
                SideBc::Symmetry => {
                    if tangential_x {
                        // Horizontal boundary: u tangential, v normal.
                        (Box::new(|c| c), Box::new(|c| -c))
                    } else {
                        (Box::new(|c| -c), Box::new(|c| c))
                    }
                }
            };
            let bc_p: Box<dyn Fn(f64) -> f64> = match bc_kind {
                SideBc::Outlet => Box::new(|c| -c), // p = 0 at the face
                _ => Box::new(|c| c),               // zero gradient
            };
            let bc_nt: Box<dyn Fn(f64) -> f64> = match bc_kind {
                SideBc::Inlet => Box::new(move |c| 2.0 * nt_in - c),
                SideBc::Wall => Box::new(|c| -c),
                _ => Box::new(|c| c),
            };
            fill_side(&mut pad.u, &s.u, side, bc_u.as_ref());
            fill_side(&mut pad.v, &s.v, side, bc_v.as_ref());
            fill_side(&mut pad.p, &s.p, side, bc_p.as_ref());
            fill_side(&mut pad.nt, &s.nt, side, bc_nt.as_ref());
        }

        // Corners: copy the diagonal interior value (not used by the
        // 5-point stencils, but keeps the arrays finite).
        for field in [&mut pad.u, &mut pad.v, &mut pad.p, &mut pad.nt] {
            field[0] = field[stride + 1];
            field[nx + 1] = field[stride + nx];
            field[(ny + 1) * stride] = field[ny * stride + 1];
            field[(ny + 1) * stride + nx + 1] = field[ny * stride + nx];
        }
        pad
    }

    /// One explicit pseudo-time step across all patches. Returns the
    /// normalized momentum residual (RMS of the momentum RHS scaled by
    /// `ly / u_in^2`).
    pub fn step(&mut self) -> f64 {
        let layout = *self.mesh.layout();
        let beta = self.beta();
        let cfg = self.cfg;
        let sa_c = self.sa;
        let nu = self.mesh.case.nu;
        let u_ref = self.mesh.case.u_in.max(1e-12);
        let l_ref = self.mesh.case.ly;

        // Compute every patch's update from the *old* state (Jacobi in
        // space so the rayon sweep is race-free).
        struct PatchOut {
            u: Vec<f64>,
            v: Vec<f64>,
            p: Vec<f64>,
            nt: Vec<f64>,
            res_sq: f64,
            cells: usize,
        }

        let outs: Vec<PatchOut> = (0..layout.num_patches())
            .into_par_iter()
            .map(|idx| {
                let (py, px) = layout.coords(idx);
                let level = self.mesh.map.level_at(idx);
                let (dy, dx) = self.mesh.cell_size(level);
                let pad = self.pad_patch(py, px);
                let (ny, nx) = (pad.ny, pad.nx);
                let dist = &self.mesh.dist[idx];

                let mut out = PatchOut {
                    u: vec![0.0; ny * nx],
                    v: vec![0.0; ny * nx],
                    p: vec![0.0; ny * nx],
                    nt: vec![0.0; ny * nx],
                    res_sq: 0.0,
                    cells: 0,
                };

                for i in 0..ny {
                    for j in 0..nx {
                        let c = pad.at(i + 1, j + 1);
                        let k = i * nx + j;
                        if pad.solid[c] {
                            // Solid cells: zero velocity and nu_tilde,
                            // pressure relaxed toward fluid neighbors for a
                            // smooth gradient at the surface.
                            let mut psum = 0.0;
                            let mut cnt = 0.0;
                            for nb in [
                                pad.at(i + 1, j),
                                pad.at(i + 1, j + 2),
                                pad.at(i, j + 1),
                                pad.at(i + 2, j + 1),
                            ] {
                                if !pad.solid[nb] {
                                    psum += pad.p[nb];
                                    cnt += 1.0;
                                }
                            }
                            out.p[k] = if cnt > 0.0 { psum / cnt } else { pad.p[c] };
                            continue;
                        }

                        let (uc, vc, pc, ntc) = (pad.u[c], pad.v[c], pad.p[c], pad.nt[c]);
                        let w = pad.at(i + 1, j);
                        let e = pad.at(i + 1, j + 2);
                        let s_ = pad.at(i, j + 1);
                        let n_ = pad.at(i + 2, j + 1);

                        // Neighbor values with no-slip reflection across
                        // solid faces (stair-step immersed boundary).
                        let gv = |arr: &[f64], nb: usize, center: f64, refl: f64| -> f64 {
                            if pad.solid[nb] {
                                refl * center
                            } else {
                                arr[nb]
                            }
                        };
                        let u_w = gv(&pad.u, w, uc, -1.0);
                        let u_e = gv(&pad.u, e, uc, -1.0);
                        let u_s = gv(&pad.u, s_, uc, -1.0);
                        let u_n = gv(&pad.u, n_, uc, -1.0);
                        let v_w = gv(&pad.v, w, vc, -1.0);
                        let v_e = gv(&pad.v, e, vc, -1.0);
                        let v_s = gv(&pad.v, s_, vc, -1.0);
                        let v_n = gv(&pad.v, n_, vc, -1.0);
                        let p_w = gv(&pad.p, w, pc, 1.0);
                        let p_e = gv(&pad.p, e, pc, 1.0);
                        let p_s = gv(&pad.p, s_, pc, 1.0);
                        let p_n = gv(&pad.p, n_, pc, 1.0);
                        let nt_w = gv(&pad.nt, w, ntc, -1.0);
                        let nt_e = gv(&pad.nt, e, ntc, -1.0);
                        let nt_s = gv(&pad.nt, s_, ntc, -1.0);
                        let nt_n = gv(&pad.nt, n_, ntc, -1.0);

                        // Effective viscosity at the cell and faces.
                        let nut_c = sa::eddy_viscosity(ntc, nu, &sa_c);
                        let nue_c = nu + nut_c;
                        let face_nue = |nt_nb: f64| -> f64 {
                            nu + 0.5 * (nut_c + sa::eddy_viscosity(nt_nb.max(0.0), nu, &sa_c))
                        };
                        let nue_e = face_nue(nt_e);
                        let nue_w = face_nue(nt_w);
                        let nue_n = face_nue(nt_n);
                        let nue_s = face_nue(nt_s);

                        // Convection: first-order upwind blended with a
                        // central contribution per cfg.conv_blend (hybrid
                        // scheme; non-conservative form).
                        let blend = cfg.conv_blend;
                        let upwind = |q_c: f64, q_w: f64, q_e: f64, q_s: f64, q_n: f64| -> f64 {
                            let fx_up = if uc >= 0.0 {
                                uc * (q_c - q_w) / dx
                            } else {
                                uc * (q_e - q_c) / dx
                            };
                            let fy_up = if vc >= 0.0 {
                                vc * (q_c - q_s) / dy
                            } else {
                                vc * (q_n - q_c) / dy
                            };
                            if blend <= 0.0 {
                                return fx_up + fy_up;
                            }
                            let fx_ct = uc * (q_e - q_w) / (2.0 * dx);
                            let fy_ct = vc * (q_n - q_s) / (2.0 * dy);
                            (1.0 - blend) * (fx_up + fy_up) + blend * (fx_ct + fy_ct)
                        };

                        let conv_u = upwind(uc, u_w, u_e, u_s, u_n);
                        let conv_v = upwind(vc, v_w, v_e, v_s, v_n);
                        let conv_nt = upwind(ntc, nt_w, nt_e, nt_s, nt_n);

                        let diff_u = (nue_e * (u_e - uc) - nue_w * (uc - u_w)) / (dx * dx)
                            + (nue_n * (u_n - uc) - nue_s * (uc - u_s)) / (dy * dy);
                        let diff_v = (nue_e * (v_e - vc) - nue_w * (vc - v_w)) / (dx * dx)
                            + (nue_n * (v_n - vc) - nue_s * (vc - v_s)) / (dy * dy);

                        let dpdx = (p_e - p_w) / (2.0 * dx);
                        let dpdy = (p_n - p_s) / (2.0 * dy);

                        let rhs_u = -conv_u - dpdx + diff_u;
                        let rhs_v = -conv_v - dpdy + diff_v;

                        // Continuity with artificial compressibility plus
                        // scalar pressure dissipation.
                        let div = (u_e - u_w) / (2.0 * dx) + (v_n - v_s) / (2.0 * dy);
                        let c_ac = (uc * uc + vc * vc + beta).sqrt();
                        let diss_p = cfg.kp
                            * c_ac
                            * ((p_e - 2.0 * pc + p_w) / dx + (p_n - 2.0 * pc + p_s) / dy);
                        let rhs_p = -beta * div + diss_p;

                        // SA transport.
                        let omega = ((v_e - v_w) / (2.0 * dx) - (u_n - u_s) / (2.0 * dy)).abs();
                        let d_wall = dist[k];
                        let src = sa::source(ntc, nu, omega, d_wall, &sa_c);
                        let face_dnt = |nt_nb: f64| -> f64 { nu + 0.5 * (ntc + nt_nb.max(0.0)) };
                        let diff_nt = ((face_dnt(nt_e) * (nt_e - ntc)
                            - face_dnt(nt_w) * (ntc - nt_w))
                            / (dx * dx)
                            + (face_dnt(nt_n) * (nt_n - ntc) - face_dnt(nt_s) * (ntc - nt_s))
                                / (dy * dy))
                            / sa_c.sigma;
                        let grad_nt_sq = {
                            let gx = (nt_e - nt_w) / (2.0 * dx);
                            let gy = (nt_n - nt_s) / (2.0 * dy);
                            gx * gx + gy * gy
                        };
                        let rhs_nt = -conv_nt + src + diff_nt + sa_c.cb2 / sa_c.sigma * grad_nt_sq;

                        // Local pseudo-time step.
                        let lam_x = uc.abs() + c_ac;
                        let lam_y = vc.abs() + c_ac;
                        let dt = cfg.cfl
                            / (lam_x / dx
                                + lam_y / dy
                                + 2.0 * nue_c * (1.0 / (dx * dx) + 1.0 / (dy * dy))
                                + 1e-30);

                        out.u[k] = uc + dt * rhs_u;
                        out.v[k] = vc + dt * rhs_v;
                        out.p[k] = pc + dt * rhs_p;
                        out.nt[k] = (ntc + dt * rhs_nt).max(0.0);

                        out.res_sq += rhs_u * rhs_u + rhs_v * rhs_v;
                        out.cells += 1;
                    }
                }
                out
            })
            .collect();

        // Write back and accumulate the residual.
        let mut res_sq = 0.0;
        let mut cells = 0usize;
        for (idx, o) in outs.into_iter().enumerate() {
            self.state
                .u
                .patch_at_mut(idx)
                .as_mut_slice()
                .copy_from_slice(&o.u);
            self.state
                .v
                .patch_at_mut(idx)
                .as_mut_slice()
                .copy_from_slice(&o.v);
            self.state
                .p
                .patch_at_mut(idx)
                .as_mut_slice()
                .copy_from_slice(&o.p);
            self.state
                .nt
                .patch_at_mut(idx)
                .as_mut_slice()
                .copy_from_slice(&o.nt);
            res_sq += o.res_sq;
            cells += o.cells;
        }
        self.iters_done += 1;
        let rms = (res_sq / (2.0 * cells.max(1) as f64)).sqrt();
        rms * l_ref / (u_ref * u_ref)
    }

    /// March to convergence: iterate until the normalized residual drops
    /// below `cfg.tol` or `cfg.max_iters` is reached.
    pub fn solve_to_convergence(&mut self) -> SolveStats {
        let _span = adarnet_obs::span!("stage_solver");
        let t0 = Instant::now();
        let start_iters = self.iters_done;
        let mut res = f64::INFINITY;
        while self.iters_done - start_iters < self.cfg.max_iters {
            res = self.step();
            if (self.iters_done - start_iters).is_multiple_of(self.cfg.check_every) {
                self.history.push((self.iters_done, res));
                if !res.is_finite() {
                    break;
                }
            }
            if res < self.cfg.tol {
                break;
            }
        }
        SolveStats {
            iterations: self.iters_done - start_iters,
            final_residual: res,
            seconds: t0.elapsed().as_secs_f64(),
            converged: res < self.cfg.tol,
        }
    }

    /// Per-patch refinement indicator: max |grad nu_tilde| (the
    /// feature-based heuristic of the baseline AMR solver, §4.3).
    pub fn nt_gradient_indicator(&self) -> Vec<f64> {
        let (dy0, dx0) = self.mesh.cell_size0();
        gradient_indicator(&self.state.nt, dy0, dx0)
    }
}

impl AmrSim for RansSolver {
    fn solve(&mut self, map: &RefinementMap) -> SolveStats {
        if map != &self.mesh.map {
            self.project_to(map);
        }
        self.solve_to_convergence()
    }

    fn indicator(&self) -> Vec<f64> {
        self.nt_gradient_indicator()
    }

    fn project_to(&mut self, new_map: &RefinementMap) {
        self.mesh = self.mesh.with_map(new_map.clone());
        self.state = self.state.project_to(new_map);
        self.state.enforce_solid(&self.mesh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CaseConfig;
    use adarnet_amr::PatchLayout;

    fn tiny_channel(iters: u64) -> RansSolver {
        // Short channel so the flow develops quickly: 16 x 64 cells.
        let mut case = CaseConfig::channel(2.5e3);
        case.lx = 1.0;
        let layout = PatchLayout::new(2, 8, 8, 8);
        let mesh = CaseMesh::new(case, RefinementMap::uniform(layout, 0, 3));
        RansSolver::new(
            mesh,
            SolverConfig {
                max_iters: iters,
                ..SolverConfig::default()
            },
        )
    }

    #[test]
    fn residual_decreases_and_stays_finite() {
        let mut s = tiny_channel(400);
        let r0 = s.step();
        let mut r = r0;
        for _ in 0..399 {
            r = s.step();
        }
        assert!(s.state.all_finite(), "state went non-finite");
        assert!(r < r0, "residual did not decrease: {r0} -> {r}");
    }

    #[test]
    fn mass_conservation_trend() {
        // After settling, the outflow flux approaches the inflow flux.
        let mut s = tiny_channel(3000);
        let _ = s.solve_to_convergence();
        let u = &s.state.u;
        let layout = *s.mesh.layout();
        // Column-averaged u at inlet-most and outlet-most columns.
        let col_mean = |px: usize, col: usize| -> f64 {
            let mut acc = 0.0;
            let mut n = 0;
            for py in 0..layout.npy {
                let p = u.patch(py, px);
                for i in 0..p.ny() {
                    acc += p.get(i, col);
                    n += 1;
                }
            }
            acc / n as f64
        };
        let inflow = col_mean(0, 0);
        let outflow = col_mean(layout.npx - 1, s.state.u.patch(0, layout.npx - 1).nx() - 1);
        assert!(
            (inflow - outflow).abs() / inflow.abs() < 0.1,
            "inflow {inflow} vs outflow {outflow}"
        );
    }

    #[test]
    fn channel_develops_wall_shear() {
        let mut s = tiny_channel(3000);
        let _ = s.solve_to_convergence();
        // Near-wall u < centerline u (no-slip walls at top and bottom).
        let p_bottom = s.state.u.patch(0, 4);
        let p_top = s.state.u.patch(1, 4);
        let near_wall = p_bottom.get(0, 4);
        let center = p_bottom.get(p_bottom.ny() - 1, 4);
        assert!(
            near_wall < 0.8 * center,
            "no boundary layer: wall {near_wall} center {center}"
        );
        // Symmetry: top wall profile mirrors bottom.
        let near_top = p_top.get(p_top.ny() - 1, 4);
        assert!((near_wall - near_top).abs() < 0.3 * near_wall.abs().max(1e-12));
    }

    #[test]
    fn solver_runs_on_mixed_refinement_mesh() {
        let mut case = CaseConfig::channel(2.5e3);
        case.lx = 1.0;
        let layout = PatchLayout::new(2, 8, 8, 8);
        // Refine the bottom row of patches only.
        let mut levels = vec![0u8; 16];
        levels[..8].fill(1);
        let map = RefinementMap::from_levels(layout, levels, 3);
        let mesh = CaseMesh::new(case, map);
        let mut s = RansSolver::new(
            mesh,
            SolverConfig {
                max_iters: 300,
                ..SolverConfig::default()
            },
        );
        for _ in 0..300 {
            s.step();
        }
        assert!(s.state.all_finite());
    }

    #[test]
    fn cylinder_flow_stays_finite_and_decelerates_at_body() {
        let layout = PatchLayout::new(2, 8, 8, 8);
        let mesh = CaseMesh::new(
            CaseConfig::cylinder(1e5),
            RefinementMap::uniform(layout, 0, 3),
        );
        let mut s = RansSolver::new(
            mesh,
            SolverConfig {
                max_iters: 500,
                ..SolverConfig::default()
            },
        );
        for _ in 0..500 {
            s.step();
        }
        assert!(s.state.all_finite());
        // Wake cell just behind the body is slower than the freestream.
        let wake = s.state.u.to_uniform(0);
        let (ny, nx) = (wake.ny(), wake.nx());
        // Body center (2,1) in an 8x2 box: j ~ nx/4, i ~ ny/2.
        let behind = wake.get(ny / 2, nx / 4 + nx / 8);
        assert!(behind < s.mesh.case.u_in, "no wake deficit: {behind}");
    }

    #[test]
    fn blended_convection_converges_and_sharpens_profile() {
        let run = |blend: f64| -> (f64, RansSolver) {
            let mut case = CaseConfig::channel(2.5e3);
            case.lx = 1.0;
            let layout = PatchLayout::new(2, 8, 8, 8);
            let mesh = CaseMesh::new(case, RefinementMap::uniform(layout, 0, 3));
            let mut s = RansSolver::new(
                mesh,
                SolverConfig {
                    conv_blend: blend,
                    max_iters: 2000,
                    tol: 1e-9,
                    ..SolverConfig::default()
                },
            );
            let mut r = f64::INFINITY;
            for _ in 0..2000 {
                r = s.step();
            }
            (r, s)
        };
        let (r0, s0) = run(0.0);
        let (r5, s5) = run(0.5);
        assert!(s0.state.all_finite() && s5.state.all_finite());
        assert!(r0.is_finite() && r5.is_finite());
        // Scheme changes the discrete solution (the ablation's point).
        let d = s0.state.distance(&s5.state);
        assert!(d > 1e-9, "blend had no effect: {d}");
    }

    #[test]
    fn divergence_is_detected_not_hidden() {
        // Failure injection: an absurd CFL makes the explicit march blow
        // up; the solver must stop at the non-finite check and report
        // non-convergence rather than spinning to the iteration cap.
        let mut case = CaseConfig::channel(2.5e3);
        case.lx = 0.5;
        let mesh = CaseMesh::new(
            case,
            RefinementMap::uniform(PatchLayout::new(2, 4, 4, 4), 0, 3),
        );
        let mut s = RansSolver::new(
            mesh,
            SolverConfig {
                cfl: 50.0,
                max_iters: 5000,
                tol: 1e-9,
                check_every: 5,
                ..SolverConfig::default()
            },
        );
        let stats = s.solve_to_convergence();
        assert!(!stats.converged);
        assert!(
            stats.iterations < 5000,
            "diverging run was not cut short: {} iterations",
            stats.iterations
        );
        assert!(!stats.final_residual.is_finite() || stats.final_residual > 1.0);
    }

    #[test]
    fn laminar_channel_approaches_parabolic_profile() {
        // With turbulence effectively off (nu_tilde inflow ~ 0) and a low
        // Re, the steady profile tends toward the Poiseuille parabola —
        // fuller than the flat freestream start and symmetric.
        let mut case = CaseConfig::channel(100.0);
        case.lx = 0.4;
        let layout = PatchLayout::new(2, 8, 8, 8);
        let mesh = CaseMesh::new(case, RefinementMap::uniform(layout, 0, 3));
        let mut s = RansSolver::new(
            mesh,
            SolverConfig {
                max_iters: 6000,
                tol: 1e-6,
                ..SolverConfig::default()
            },
        );
        let _ = s.solve_to_convergence();
        let u = s.state.u.to_uniform(0);
        let nx = u.nx();
        // Near the outlet: centerline max, wall rows smallest, symmetric.
        let col = nx - 4;
        let wall_lo = u.get(0, col);
        let wall_hi = u.get(u.ny() - 1, col);
        let center = u.get(u.ny() / 2, col);
        assert!(
            center > 1.3 * wall_lo,
            "profile not developed: {wall_lo} vs {center}"
        );
        assert!(
            (wall_lo - wall_hi).abs() < 0.15 * center.abs().max(1e-12),
            "asymmetric profile: {wall_lo} vs {wall_hi}"
        );
    }

    #[test]
    fn amr_sim_projection_keeps_state_consistent() {
        let mut s = tiny_channel(100);
        for _ in 0..100 {
            s.step();
        }
        let layout = *s.mesh.layout();
        let fine = RefinementMap::uniform(layout, 1, 3);
        s.project_to(&fine);
        assert_eq!(s.state.map(), &fine);
        assert_eq!(s.mesh.map, fine);
        assert!(s.state.all_finite());
        // Can keep stepping after projection.
        let r = s.step();
        assert!(r.is_finite());
    }
}
