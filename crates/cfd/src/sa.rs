//! The Spalart–Allmaras one-equation turbulence model (Eq. 4 of the paper).
//!
//! Standard SA closure with the constants of the original reference
//! (Spalart & Allmaras 1992), as the paper specifies: "The constants of the
//! model are those in its original reference". Trip terms (`ft1`, `ft2`)
//! are omitted, i.e. the fully-turbulent variant that production-grade
//! codes (including OpenFOAM's `SpalartAllmaras`) default to.

/// SA model constants (original 1992 values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConstants {
    /// Production coefficient.
    pub cb1: f64,
    /// Gradient-squared diffusion coefficient.
    pub cb2: f64,
    /// Turbulent Prandtl-like diffusion constant.
    pub sigma: f64,
    /// Von Karman constant.
    pub kappa: f64,
    /// Wall destruction coefficient (derived: `cb1/kappa^2 + (1+cb2)/sigma`).
    pub cw1: f64,
    /// `fw` shape constant.
    pub cw2: f64,
    /// `fw` limit constant.
    pub cw3: f64,
    /// Viscous damping constant.
    pub cv1: f64,
}

impl SaConstants {
    /// The original-reference constants.
    pub const fn standard() -> Self {
        let cb1 = 0.1355;
        let cb2 = 0.622;
        let sigma = 2.0 / 3.0;
        let kappa = 0.41;
        SaConstants {
            cb1,
            cb2,
            sigma,
            kappa,
            cw1: cb1 / (kappa * kappa) + (1.0 + cb2) / sigma,
            cw2: 0.3,
            cw3: 2.0,
            cv1: 7.1,
        }
    }
}

impl Default for SaConstants {
    fn default() -> Self {
        Self::standard()
    }
}

/// Viscous damping function `fv1 = chi^3 / (chi^3 + cv1^3)`, where
/// `chi = nu_tilde / nu`. The eddy viscosity is `nu_t = nu_tilde * fv1`.
#[inline]
pub fn fv1(chi: f64, c: &SaConstants) -> f64 {
    let chi3 = chi * chi * chi;
    chi3 / (chi3 + c.cv1 * c.cv1 * c.cv1)
}

/// Damping function `fv2 = 1 - chi / (1 + chi * fv1)`.
#[inline]
pub fn fv2(chi: f64, c: &SaConstants) -> f64 {
    1.0 - chi / (1.0 + chi * fv1(chi, c))
}

/// Modified vorticity `S_tilde = Omega + nu_tilde/(kappa^2 d^2) * fv2`,
/// clipped below at `0.3 * Omega` (the standard guard against negative
/// `S_tilde` destabilizing `r`).
#[inline]
pub fn s_tilde(omega: f64, nu_tilde: f64, d: f64, chi: f64, c: &SaConstants) -> f64 {
    let s = omega + nu_tilde / (c.kappa * c.kappa * d * d) * fv2(chi, c);
    s.max(0.3 * omega).max(1e-16)
}

/// Wall function `fw(r)` with `r = min(nu_tilde / (S_tilde kappa^2 d^2), 10)`.
#[inline]
pub fn fw(nu_tilde: f64, s_t: f64, d: f64, c: &SaConstants) -> f64 {
    let r = (nu_tilde / (s_t * c.kappa * c.kappa * d * d)).min(10.0);
    let g = r + c.cw2 * (r.powi(6) - r);
    let c6 = c.cw3.powi(6);
    g * ((1.0 + c6) / (g.powi(6) + c6)).powf(1.0 / 6.0)
}

/// Eddy viscosity from the working variable: `nu_t = nu_tilde * fv1(chi)`.
#[inline]
pub fn eddy_viscosity(nu_tilde: f64, nu: f64, c: &SaConstants) -> f64 {
    if nu_tilde <= 0.0 {
        return 0.0;
    }
    nu_tilde * fv1(nu_tilde / nu, c)
}

/// Net local SA source (production minus destruction) per unit volume:
/// `cb1 * S_tilde * nu_tilde - cw1 * fw * (nu_tilde / d)^2`.
///
/// `omega` is the vorticity magnitude, `d` the wall distance (clamped
/// positive by the caller).
#[inline]
pub fn source(nu_tilde: f64, nu: f64, omega: f64, d: f64, c: &SaConstants) -> f64 {
    if nu_tilde <= 0.0 {
        // The working variable is kept non-negative; no source in
        // laminar/zero cells.
        return 0.0;
    }
    let chi = nu_tilde / nu;
    let s_t = s_tilde(omega, nu_tilde, d, chi, c);
    let production = c.cb1 * s_t * nu_tilde;
    let destruction = c.cw1 * fw(nu_tilde, s_t, d, c) * (nu_tilde / d) * (nu_tilde / d);
    production - destruction
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: SaConstants = SaConstants::standard();

    #[test]
    fn cw1_derived_correctly() {
        // cw1 = cb1/kappa^2 + (1 + cb2)/sigma ~ 3.2391
        assert!((C.cw1 - 3.2390678).abs() < 1e-6, "{}", C.cw1);
    }

    #[test]
    fn fv1_limits() {
        // chi -> 0: fv1 -> 0 (laminar); chi -> inf: fv1 -> 1 (fully turbulent).
        assert!(fv1(1e-6, &C) < 1e-12);
        assert!(fv1(1e6, &C) > 1.0 - 1e-12);
        // Known mid value: chi = cv1 gives exactly 0.5.
        assert!((fv1(C.cv1, &C) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fv2_limits() {
        // chi -> 0: fv2 -> 1.
        assert!((fv2(1e-9, &C) - 1.0).abs() < 1e-6);
        // Large chi: fv2 -> 1 - 1/fv1 ~ small negative-to-zero range; just
        // check boundedness.
        let v = fv2(100.0, &C);
        assert!(v > -1.0 && v < 1.0, "{v}");
    }

    #[test]
    fn fw_equilibrium_value() {
        // At r = 1: g = 1, fw = ((1 + cw3^6)/(1 + cw3^6))^(1/6) = 1.
        // Choose inputs that give r = 1: nu_tilde = s_t * kappa^2 * d^2.
        let d = 0.1;
        let s_t = 10.0;
        let nt = s_t * C.kappa * C.kappa * d * d;
        assert!((fw(nt, s_t, d, &C) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fw_monotone_in_r() {
        let d = 0.1;
        let s_t = 10.0;
        let nt1 = 0.5 * s_t * C.kappa * C.kappa * d * d; // r = 0.5
        let nt2 = 2.0 * s_t * C.kappa * C.kappa * d * d; // r = 2
        assert!(fw(nt1, s_t, d, &C) < 1.0);
        assert!(fw(nt2, s_t, d, &C) > 1.0);
    }

    #[test]
    fn source_sign_structure() {
        let nu = 1e-5;
        // High vorticity far from wall: production dominates.
        assert!(source(5.0 * nu, nu, 100.0, 1.0, &C) > 0.0);
        // No vorticity very near a wall: destruction dominates.
        assert!(source(5.0 * nu, nu, 0.0, 1e-3, &C) < 0.0);
        // Zero working variable: no source.
        assert_eq!(source(0.0, nu, 50.0, 0.1, &C), 0.0);
    }

    #[test]
    fn eddy_viscosity_laminar_limit() {
        let nu = 1.5e-5;
        // nu_tilde << nu: nu_t negligible.
        assert!(eddy_viscosity(0.01 * nu, nu, &C) < 1e-3 * nu);
        // nu_tilde >> nu: nu_t ~ nu_tilde.
        let nt = 1000.0 * nu;
        assert!((eddy_viscosity(nt, nu, &C) - nt).abs() / nt < 1e-3);
        assert_eq!(eddy_viscosity(-1.0, nu, &C), 0.0);
    }

    #[test]
    fn s_tilde_clip_guards_small_d() {
        // fv2 can go negative at moderate chi; the clip keeps S_tilde
        // positive and >= 0.3 * Omega.
        let omega = 10.0;
        let v = s_tilde(omega, 1e-3, 1e-4, 20.0, &C);
        assert!(v >= 0.3 * omega);
    }
}
