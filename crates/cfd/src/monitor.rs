//! Convergence monitoring and serializable run reports.
//!
//! The Table 1 accounting (TTC, ITC) needs reliable residual histories;
//! this module wraps the solver's raw `(iteration, residual)` samples into
//! analyzable, exportable form.

use serde::{Deserialize, Serialize};

/// A residual history: `(iteration, normalized momentum residual)`
/// samples in ascending iteration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceHistory {
    /// The samples.
    pub samples: Vec<(u64, f64)>,
}

impl ConvergenceHistory {
    /// Wrap a solver's history.
    pub fn new(samples: Vec<(u64, f64)>) -> ConvergenceHistory {
        ConvergenceHistory { samples }
    }

    /// Iterations needed to first reach `tol`, if ever.
    pub fn iterations_to(&self, tol: f64) -> Option<u64> {
        self.samples
            .iter()
            .find(|(_, r)| *r < tol)
            .map(|(it, _)| *it)
    }

    /// Final residual (NaN if empty).
    pub fn final_residual(&self) -> f64 {
        self.samples.last().map(|(_, r)| *r).unwrap_or(f64::NAN)
    }

    /// Orders of magnitude dropped from the first to the last sample
    /// (log10 ratio; 0 for empty or non-decreasing histories).
    pub fn decades_dropped(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some((_, r0)), Some((_, rn))) if *r0 > 0.0 && *rn > 0.0 && rn < r0 => {
                (r0 / rn).log10()
            }
            _ => 0.0,
        }
    }

    /// True if the tail of the history is non-increasing on average
    /// (simple stall detector: compares the means of the last two
    /// quarters).
    pub fn is_stalled(&self) -> bool {
        let n = self.samples.len();
        if n < 8 {
            return false;
        }
        let q = n / 4;
        let mean = |s: &[(u64, f64)]| s.iter().map(|(_, r)| r).sum::<f64>() / s.len() as f64;
        let third = mean(&self.samples[n - 2 * q..n - q]);
        let fourth = mean(&self.samples[n - q..]);
        fourth >= 0.98 * third
    }

    /// Serialize to a JSON string (for EXPERIMENTS artifacts).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("history serialization cannot fail")
    }
}

/// A serializable summary of one solve, pairing cost with convergence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Case name.
    pub case: String,
    /// Mesh active-cell count.
    pub active_cells: usize,
    /// Iterations performed.
    pub iterations: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Final normalized residual.
    pub final_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decaying(n: usize) -> ConvergenceHistory {
        ConvergenceHistory::new(
            (0..n)
                .map(|i| (i as u64 * 10, 1.0 / (i + 1) as f64))
                .collect(),
        )
    }

    #[test]
    fn iterations_to_tolerance() {
        let h = decaying(100);
        assert_eq!(h.iterations_to(0.05), Some(200)); // 1/21 < 0.05 at i=20
        assert_eq!(h.iterations_to(1e-9), None);
    }

    #[test]
    fn decades_dropped_measures_log_ratio() {
        let h = decaying(100);
        assert!((h.decades_dropped() - 2.0).abs() < 0.01);
        let flat = ConvergenceHistory::new(vec![(0, 1.0), (10, 1.0)]);
        assert_eq!(flat.decades_dropped(), 0.0);
    }

    #[test]
    fn stall_detection() {
        assert!(!decaying(100).is_stalled());
        let stalled = ConvergenceHistory::new(
            (0..40)
                .map(|i| (i as u64, if i < 20 { 1.0 / (i + 1) as f64 } else { 0.05 }))
                .collect(),
        );
        assert!(stalled.is_stalled());
    }

    #[test]
    fn json_roundtrip() {
        let h = decaying(5);
        let back: ConvergenceHistory = serde_json::from_str(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn solver_history_feeds_monitor() {
        use crate::{CaseConfig, CaseMesh, RansSolver, SolverConfig};
        use adarnet_amr::{PatchLayout, RefinementMap};
        let mut case = CaseConfig::channel(2.5e3);
        case.lx = 0.5;
        let mesh = CaseMesh::new(
            case,
            RefinementMap::uniform(PatchLayout::new(2, 4, 4, 4), 0, 3),
        );
        let mut s = RansSolver::new(
            mesh,
            SolverConfig {
                max_iters: 300,
                tol: 1e-12,
                ..SolverConfig::default()
            },
        );
        let _ = s.solve_to_convergence();
        let h = ConvergenceHistory::new(s.history.clone());
        assert!(!h.samples.is_empty());
        assert!(h.final_residual().is_finite());
        assert!(h.decades_dropped() >= 0.0);
    }
}
