//! The four-variable flow state `(U, V, p, nu_tilde)` on a composite mesh,
//! and conversions to/from the NN tensor format.

use adarnet_amr::{CompositeField, RefinementMap};
use adarnet_tensor::{Shape, Tensor};

use crate::mesh::CaseMesh;

/// The RANS + SA state: mean x-velocity, mean y-velocity, kinematic mean
/// pressure, and the SA working variable `nu_tilde` — the paper's four
/// flow variables / image channels (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowState {
    /// Mean x-velocity (m/s).
    pub u: CompositeField,
    /// Mean y-velocity (m/s).
    pub v: CompositeField,
    /// Kinematic mean pressure (m^2/s^2).
    pub p: CompositeField,
    /// SA working variable (m^2/s); eddy viscosity is `nt * fv1`.
    pub nt: CompositeField,
}

impl FlowState {
    /// All-zero state on a mesh.
    pub fn zeros(map: &RefinementMap) -> FlowState {
        FlowState {
            u: CompositeField::zeros(map),
            v: CompositeField::zeros(map),
            p: CompositeField::zeros(map),
            nt: CompositeField::zeros(map),
        }
    }

    /// Freestream initial condition: `u = u_in` in fluid cells (zero in
    /// solid), `v = p = 0`, `nu_tilde` at its inflow value.
    pub fn freestream(mesh: &CaseMesh) -> FlowState {
        let map = &mesh.map;
        let mut s = FlowState {
            u: CompositeField::constant(map, mesh.case.u_in),
            v: CompositeField::zeros(map),
            p: CompositeField::zeros(map),
            nt: CompositeField::constant(map, mesh.case.nu_tilde_inflow()),
        };
        s.enforce_solid(mesh);
        s
    }

    /// Zero out velocity and `nu_tilde` inside solid cells.
    pub fn enforce_solid(&mut self, mesh: &CaseMesh) {
        for idx in 0..mesh.layout().num_patches() {
            let mask = &mesh.solid[idx];
            for (k, &is_solid) in mask.iter().enumerate() {
                if is_solid {
                    self.u.patch_at_mut(idx).as_mut_slice()[k] = 0.0;
                    self.v.patch_at_mut(idx).as_mut_slice()[k] = 0.0;
                    self.nt.patch_at_mut(idx).as_mut_slice()[k] = 0.0;
                }
            }
        }
    }

    /// The mesh this state lives on.
    pub fn map(&self) -> &RefinementMap {
        self.u.map()
    }

    /// Transfer onto a new refinement map (AMR re-meshing / DNN output
    /// adoption).
    pub fn project_to(&self, new_map: &RefinementMap) -> FlowState {
        FlowState {
            u: self.u.project_to(new_map),
            v: self.v.project_to(new_map),
            p: self.p.project_to(new_map),
            nt: self.nt.project_to(new_map),
        }
    }

    /// Sample to a uniform 4-channel `f32` tensor `(4, H, W)` at `level` —
    /// the NN input/label format (channel order U, V, p, nu_tilde).
    pub fn to_tensor(&self, level: u8) -> Tensor<f32> {
        let fields = [&self.u, &self.v, &self.p, &self.nt];
        let grids: Vec<_> = fields.iter().map(|f| f.to_uniform(level)).collect();
        let (h, w) = (grids[0].ny(), grids[0].nx());
        let mut t = Tensor::<f32>::zeros(Shape::d3(4, h, w));
        for (c, g) in grids.iter().enumerate() {
            for i in 0..h {
                for j in 0..w {
                    t.set3(c, i, j, g.get(i, j) as f32);
                }
            }
        }
        t
    }

    /// Build a state from a uniform 4-channel tensor at `uniform_level`,
    /// resampled onto `map`.
    pub fn from_tensor(map: &RefinementMap, t: &Tensor<f32>, uniform_level: u8) -> FlowState {
        assert_eq!(t.dim(0), 4, "expected 4 channels (U, V, p, nu_tilde)");
        let (h, w) = (t.dim(1), t.dim(2));
        let [u, v, p, nt] = [0usize, 1, 2, 3].map(|c| {
            let g = adarnet_tensor::Grid2::from_fn(h, w, |i, j| t.get3(c, i, j) as f64);
            CompositeField::from_uniform(map, &g, uniform_level)
        });
        FlowState { u, v, p, nt }
    }

    /// True if every cell of every field is finite.
    pub fn all_finite(&self) -> bool {
        self.u.all_finite() && self.v.all_finite() && self.p.all_finite() && self.nt.all_finite()
    }

    /// L2 distance to another state on the same mesh (all four fields).
    pub fn distance(&self, other: &FlowState) -> f64 {
        let d = |a: &CompositeField, b: &CompositeField| -> f64 {
            let mut acc = 0.0;
            for idx in 0..a.map().layout().num_patches() {
                for (x, y) in a
                    .patch_at(idx)
                    .as_slice()
                    .iter()
                    .zip(b.patch_at(idx).as_slice())
                {
                    acc += (x - y) * (x - y);
                }
            }
            acc
        };
        (d(&self.u, &other.u)
            + d(&self.v, &other.v)
            + d(&self.p, &other.p)
            + d(&self.nt, &other.nt))
        .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CaseConfig;
    use adarnet_amr::PatchLayout;

    fn mesh() -> CaseMesh {
        let layout = PatchLayout::new(2, 8, 8, 8);
        CaseMesh::new(
            CaseConfig::channel(2.5e3),
            RefinementMap::uniform(layout, 0, 3),
        )
    }

    #[test]
    fn freestream_values() {
        let m = mesh();
        let s = FlowState::freestream(&m);
        assert!((s.u.mean() - 0.25).abs() < 1e-12);
        assert_eq!(s.v.mean(), 0.0);
        assert!((s.nt.mean() - 3e-5).abs() < 1e-15);
    }

    #[test]
    fn solid_cells_zeroed() {
        let layout = PatchLayout::new(2, 8, 8, 8);
        let m = CaseMesh::new(
            CaseConfig::cylinder(1e5),
            RefinementMap::uniform(layout, 1, 3),
        );
        let s = FlowState::freestream(&m);
        for idx in 0..m.layout().num_patches() {
            for (k, &solid) in m.solid[idx].iter().enumerate() {
                if solid {
                    assert_eq!(s.u.patch_at(idx).as_slice()[k], 0.0);
                }
            }
        }
    }

    #[test]
    fn tensor_roundtrip_same_level() {
        let m = mesh();
        let mut s = FlowState::freestream(&m);
        // Perturb a cell so the roundtrip is non-trivial.
        s.p.patch_mut(1, 3).set(2, 2, 0.37);
        let t = s.to_tensor(0);
        assert_eq!(t.shape(), &Shape::d3(4, 16, 64));
        let back = FlowState::from_tensor(s.map(), &t, 0);
        assert!(s.distance(&back) < 1e-5, "{}", s.distance(&back));
    }

    #[test]
    fn project_preserves_freestream() {
        let m = mesh();
        let s = FlowState::freestream(&m);
        let fine = RefinementMap::uniform(*m.layout(), 2, 3);
        let sf = s.project_to(&fine);
        assert!((sf.u.mean() - 0.25).abs() < 1e-12);
        assert!(sf.all_finite());
    }

    #[test]
    fn distance_zero_iff_identical() {
        let m = mesh();
        let s = FlowState::freestream(&m);
        assert_eq!(s.distance(&s), 0.0);
        let mut t = s.clone();
        t.u.patch_mut(0, 0).set(0, 0, 99.0);
        assert!(s.distance(&t) > 1.0);
    }
}
