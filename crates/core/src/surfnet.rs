//! SURFNet-class baseline: **uniform** super-resolution (Obiols-Sales et
//! al., PACT 2021), rebuilt as the comparison target for Table 2 and
//! Figure 1.
//!
//! The baseline upsamples the entire LR field to the target resolution
//! (bicubic), appends global coordinates, and runs a full-resolution
//! convolutional decode — every pixel of the domain pays HR inference
//! cost, which is exactly the inefficiency ADARNet removes. The conv stack
//! reuses the verified [`Decoder`] architecture so the comparison isolates
//! *uniform vs non-uniform* rather than architecture differences.

use adarnet_nn::bicubic_resize3;
use adarnet_tensor::{Shape, Tensor};

use crate::decoder::Decoder;

/// The uniform-SR baseline network.
pub struct SurfNet {
    decoder: Decoder,
    /// Per-side upscale factor (8 for the paper's 64x SR).
    pub scale: usize,
}

impl SurfNet {
    /// Build a SURFNet for `scale`x per-side SR (64x cells at `scale = 8`).
    pub fn new(scale: usize, seed: u64) -> SurfNet {
        assert!(scale >= 1, "scale must be positive");
        // 4 flow channels + 2 coordinate channels.
        SurfNet {
            decoder: Decoder::new(6, seed),
            scale,
        }
    }

    /// Uniform SR of a `(4, H, W)` LR field to `(4, H*scale, W*scale)`.
    pub fn predict(&mut self, lr: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(lr.shape().rank(), 3, "expected (C, H, W)");
        assert_eq!(lr.dim(0), 4, "expected 4 channels");
        let (h, w) = (lr.dim(1), lr.dim(2));
        let (th, tw) = (h * self.scale, w * self.scale);
        let up = bicubic_resize3(lr, th, tw);
        let mut with_coords = Tensor::<f32>::zeros(Shape::d3(6, th, tw));
        with_coords.as_mut_slice()[..4 * th * tw].copy_from_slice(up.as_slice());
        for i in 0..th {
            let yc = (i as f32 + 0.5) / th as f32;
            for j in 0..tw {
                let xc = (j as f32 + 0.5) / tw as f32;
                with_coords.set3(4, i, j, xc);
                with_coords.set3(5, i, j, yc);
            }
        }
        let batch = with_coords.reshape(Shape::d4(1, 6, th, tw));
        let out = self.decoder.forward(&batch);
        out.image(0)
    }

    /// Number of output cells for an `(h, w)` LR input — always the full
    /// uniform HR extent (contrast with ADARNet's active cells).
    pub fn output_cells(&self, h: usize, w: usize) -> usize {
        h * self.scale * w * self.scale
    }

    /// Mutable parameter views (for loading trained weights).
    pub fn params_mut(&mut self) -> Vec<&mut Tensor<f32>> {
        self.decoder.params_mut()
    }

    /// Trainable scalar count.
    pub fn num_params(&self) -> usize {
        self.decoder.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_output_shape() {
        let mut s = SurfNet::new(4, 0);
        let lr = Tensor::<f32>::full(Shape::d3(4, 8, 16), 0.3);
        let hr = s.predict(&lr);
        assert_eq!(hr.shape(), &Shape::d3(4, 32, 64));
        assert_eq!(s.output_cells(8, 16), 32 * 64);
    }

    #[test]
    fn every_pixel_is_hr_no_savings() {
        // The defining property vs ADARNet: output cells = scale^2 * input.
        let s = SurfNet::new(8, 1);
        assert_eq!(s.output_cells(64, 256), 64 * 256 * 64);
    }

    #[test]
    fn output_finite() {
        let mut s = SurfNet::new(2, 2);
        let lr = Tensor::from_vec(
            Shape::d3(4, 8, 8),
            (0..256).map(|i| (i as f32 * 0.05).sin()).collect(),
        );
        assert!(s.predict(&lr).all_finite());
    }
}
