//! Lock-free shared-weight inference entry point, split out of
//! [`crate::framework`].
//!
//! [`run_adarnet_case`](crate::framework::run_adarnet_case) couples one
//! model to one physics solve — the right shape for reproducing the
//! paper's tables, but not for serving, where many threads hold one
//! trained model and submit batches concurrently. [`InferenceEngine`]
//! owns a [`FrozenAdarNet`] — the immutable weight plane, with GEMM
//! A-panels pre-packed and the deconv flip-transpose applied once at
//! construction — plus its normalization, and exposes `&self` batch
//! inference (normalize → score → bin → per-bin decode) with typed
//! errors so a bad request cannot take down a worker.
//!
//! There is no model lock: activations come from the thread-local
//! workspace pool, so any number of threads share one engine (one
//! resident weight copy) and decode concurrently. [`InferenceEngine::replicate`]
//! remains for training-side callers that need an independent mutable
//! copy; serving shares one engine behind an `Arc` (see the
//! `adarnet-serve` crate).

use adarnet_tensor::Tensor;

use crate::checkpoint::{self, ModelCheckpoint};
use crate::loss::NormStats;
use crate::network::{AdarNet, AdarNetConfig, FrozenAdarNet, Prediction};
use crate::ranker::RankerError;

/// Why an inference request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The scorer's output could not be binned (empty grid / NaN scores).
    Ranker(RankerError),
    /// A checkpoint could not be restored into a model.
    Checkpoint(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Ranker(e) => write!(f, "ranker: {e}"),
            EngineError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RankerError> for EngineError {
    fn from(e: RankerError) -> EngineError {
        EngineError::Ranker(e)
    }
}

/// A trained model, frozen for inference, plus its normalization —
/// packaged for concurrent lock-free use. One engine = one resident
/// weight copy shared by every thread that holds it.
pub struct InferenceEngine {
    cfg: AdarNetConfig,
    norm: NormStats,
    frozen: FrozenAdarNet,
    /// Weight snapshot taken at construction; [`InferenceEngine::checkpoint`]
    /// and [`InferenceEngine::replicate`] serve from it without touching
    /// the frozen plane.
    ckpt: ModelCheckpoint,
}

impl InferenceEngine {
    /// Wrap a trained model and its dataset normalization. The model's
    /// weights are snapshotted (for [`InferenceEngine::checkpoint`]) and
    /// frozen: GEMM A-panels pack once here, under the `prepack_ns`
    /// span, and never again on the request path. The resident
    /// frozen-weight footprint is published on the
    /// `engine_weight_bytes` gauge, and whether the vectorized kernel
    /// plane is live on the `engine_backend_simd` gauge (1 = the
    /// AVX2+FMA micro-kernels run, 0 = scalar reference plane).
    pub fn new(model: AdarNet, norm: NormStats) -> InferenceEngine {
        Self::new_with(model, norm, adarnet_nn::Precision::active())
    }

    /// [`InferenceEngine::new`] at an explicit weight-plane
    /// [`adarnet_nn::Precision`] (the default entry point resolves the
    /// `ADARNET_PRECISION` environment knob via
    /// [`adarnet_nn::Precision::active`]). Besides `engine_weight_bytes`
    /// (actual stored bytes: bf16 planes report ~4x fewer), the
    /// `engine_precision` gauge publishes the plane's precision index
    /// (0 = f32, 1 = bf16) and a per-precision
    /// `engine_weight_bytes_<precision>` gauge keeps both planes'
    /// footprints visible when a registry holds one engine of each.
    pub fn new_with(
        model: AdarNet,
        norm: NormStats,
        precision: adarnet_nn::Precision,
    ) -> InferenceEngine {
        let ckpt = checkpoint::snapshot(&model, &norm);
        let frozen = {
            let _span = adarnet_obs::span!("prepack_ns");
            model.freeze_with(precision)
        };
        adarnet_obs::gauge!("engine_weight_bytes").set(frozen.weight_bytes() as f64);
        adarnet_obs::gauge!("engine_precision").set(precision.index() as f64);
        match precision {
            adarnet_nn::Precision::F32 => adarnet_obs::gauge!("engine_weight_bytes_f32"),
            adarnet_nn::Precision::Bf16 => adarnet_obs::gauge!("engine_weight_bytes_bf16"),
        }
        .set(frozen.weight_bytes() as f64);
        adarnet_obs::gauge!("engine_backend_simd").set(if frozen.device().is_simd_active() {
            1.0
        } else {
            0.0
        });
        InferenceEngine {
            cfg: model.cfg,
            norm,
            frozen,
            ckpt,
        }
    }

    /// Restore an engine from a checkpoint at the process-default
    /// precision ([`adarnet_nn::Precision::active`]).
    pub fn from_checkpoint(ckpt: &ModelCheckpoint) -> Result<InferenceEngine, EngineError> {
        Self::from_checkpoint_with(ckpt, adarnet_nn::Precision::active())
    }

    /// Restore an engine from a checkpoint at an explicit weight-plane
    /// precision. Checkpoints are always full-precision f32 — the
    /// narrowing happens at freeze time, so one checkpoint can hydrate
    /// an f32 and a bf16 engine side by side (the serving registry
    /// does exactly that for per-request precision routing).
    pub fn from_checkpoint_with(
        ckpt: &ModelCheckpoint,
        precision: adarnet_nn::Precision,
    ) -> Result<InferenceEngine, EngineError> {
        let (model, norm) = checkpoint::restore(ckpt).map_err(EngineError::Checkpoint)?;
        Ok(InferenceEngine::new_with(model, norm, precision))
    }

    /// The weight snapshot this engine was built from.
    pub fn checkpoint(&self) -> ModelCheckpoint {
        self.ckpt.clone()
    }

    /// Build an independent engine from this one's weights. Serving no
    /// longer needs per-worker replicas (the engine is lock-free and
    /// shared); this remains for training-side callers that want a
    /// private copy. A snapshot of a live engine always restores, so
    /// the error arm is unreachable in practice — but callers propagate
    /// it rather than panicking a worker thread.
    pub fn replicate(&self) -> Result<InferenceEngine, EngineError> {
        InferenceEngine::from_checkpoint_with(&self.ckpt, self.precision())
    }

    /// Static model configuration.
    pub fn config(&self) -> AdarNetConfig {
        self.cfg
    }

    /// The normalization applied to raw LR fields before inference.
    pub fn norm(&self) -> &NormStats {
        &self.norm
    }

    /// The frozen weight plane, for callers that drive the plan/decode
    /// stages themselves (e.g. patch-cached batch inference).
    pub fn frozen(&self) -> &FrozenAdarNet {
        &self.frozen
    }

    /// Resident frozen-weight bytes (scorer + decoder, packed panels
    /// included).
    pub fn weight_bytes(&self) -> usize {
        self.frozen.weight_bytes()
    }

    /// The compute backend the frozen plane is pinned to.
    pub fn device(&self) -> adarnet_nn::Device {
        self.frozen.device()
    }

    /// The weight-plane precision the frozen plane was built at.
    pub fn precision(&self) -> adarnet_nn::Precision {
        self.frozen.precision()
    }

    /// Canonical name of the active backend (`cpu_scalar` /
    /// `cpu_simd`), for stats endpoints and logs.
    pub fn backend_name(&self) -> &'static str {
        self.frozen.device().name()
    }

    /// Infer one raw (physical-units) `(C, H, W)` LR field.
    ///
    /// The returned [`Prediction`] is backed by workspace-pool buffers;
    /// call [`Prediction::recycle`] once it is consumed to keep
    /// steady-state inference loops free of data-plane heap allocation.
    pub fn infer(&self, lr_field: &Tensor<f32>) -> Result<Prediction, EngineError> {
        let normalized = self.norm.normalize(lr_field);
        let pred = self.frozen.try_predict(&normalized);
        normalized.recycle();
        Ok(pred?)
    }

    /// [`InferenceEngine::infer`] under a request trace: the whole
    /// forward pass runs inside an `engine_infer` span with `ctx`
    /// scoped to this thread, so every stage `span!` site it crosses
    /// (`stage_scorer`, `stage_ranker`, per-bin `stage_decoder`)
    /// attaches to the trace as well as to its histogram. The caller
    /// still owns the trace's lifecycle (arena start / finish).
    pub fn infer_traced(
        &self,
        ctx: adarnet_obs::TraceCtx,
        lr_field: &Tensor<f32>,
    ) -> Result<Prediction, EngineError> {
        let pending = adarnet_obs::trace::arena().begin(ctx, "engine_infer");
        let scoped = match &pending {
            Some(p) => ctx.child(p.span_id),
            None => ctx,
        };
        let _scope = adarnet_obs::trace::scope(scoped);
        let started = std::time::Instant::now();
        let result = self.infer(lr_field);
        if let Some(p) = pending {
            adarnet_obs::trace::arena().commit(p, started.elapsed().as_nanos() as u64, "", 0);
        }
        result
    }

    /// Infer a batch of raw LR fields of identical extent: every
    /// `(sample, bin)` pair decodes as an independent parallel work
    /// item over the shared frozen decoder
    /// ([`FrozenAdarNet::try_predict_batch`]), which is the
    /// serving-time payoff of non-uniform SR.
    ///
    /// After warmup, a steady-state loop of `infer_batch` +
    /// [`Prediction::recycle`] performs zero data-plane heap allocations:
    /// every tensor buffer (normalized inputs, scorer/decoder
    /// activations, im2col panels, patch outputs) is drawn from and
    /// returned to the workspace pool (see `adarnet_tensor::workspace`).
    pub fn infer_batch(&self, lr_fields: &[Tensor<f32>]) -> Result<Vec<Prediction>, EngineError> {
        let normalized: Vec<Tensor<f32>> =
            lr_fields.iter().map(|x| self.norm.normalize(x)).collect();
        let preds = self.frozen.try_predict_batch(&normalized);
        for x in normalized {
            x.recycle();
        }
        Ok(preds?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adarnet_tensor::Shape;

    fn sample(h: usize, w: usize, phase: f32) -> Tensor<f32> {
        Tensor::from_vec(
            Shape::d3(4, h, w),
            (0..4 * h * w)
                .map(|i| ((i as f32) * 0.017 + phase).sin())
                .collect(),
        )
    }

    fn tiny_cfg(seed: u64) -> AdarNetConfig {
        AdarNetConfig {
            ph: 8,
            pw: 8,
            seed,
            ..AdarNetConfig::default()
        }
    }

    fn tiny_engine(seed: u64) -> InferenceEngine {
        InferenceEngine::new(AdarNet::new(tiny_cfg(seed)), NormStats::identity())
    }

    #[test]
    fn engine_matches_direct_predict() {
        let engine = tiny_engine(11);
        let x = sample(16, 32, 0.0);
        let via_engine = engine.infer(&x).unwrap();
        // Same seed ⇒ same weights: the mutable model's sequential path
        // must agree bitwise with the engine's frozen parallel path.
        let mut direct_model = AdarNet::new(tiny_cfg(11));
        let direct = direct_model.predict(&x);
        assert_eq!(via_engine.binning.bin_of_patch, direct.binning.bin_of_patch);
        for (a, b) in via_engine.patches.iter().zip(&direct.patches) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn infer_traced_attaches_stage_spans() {
        let engine = tiny_engine(13);
        let ctx = adarnet_obs::TraceCtx::mint();
        assert!(adarnet_obs::trace::arena().start(ctx));
        let pred = engine.infer_traced(ctx, &sample(16, 32, 0.2)).unwrap();
        pred.recycle();
        let t = adarnet_obs::trace::arena()
            .finish(ctx, 1_000, false)
            .expect("trace was in flight");
        assert!(t.is_complete(), "no spans dropped for one inference");
        let root = t
            .spans
            .iter()
            .find(|s| s.name == "engine_infer")
            .expect("engine_infer root span");
        assert_eq!(root.parent, 0);
        for stage in ["stage_scorer", "stage_ranker", "stage_decoder"] {
            let s = t
                .spans
                .iter()
                .find(|s| s.name == stage)
                .unwrap_or_else(|| panic!("{stage} span missing"));
            assert_eq!(s.parent, root.span_id, "{stage} parents under the root");
        }
    }

    #[test]
    fn infer_batch_matches_singles() {
        let engine = tiny_engine(12);
        let a = sample(16, 32, 0.0);
        let b = sample(16, 32, 1.3);
        let batch = engine.infer_batch(&[a.clone(), b.clone()]).unwrap();
        let pa = engine.infer(&a).unwrap();
        let pb = engine.infer(&b).unwrap();
        assert_eq!(batch.len(), 2);
        for (x, y) in batch[0].patches.iter().zip(&pa.patches) {
            assert_eq!(x, y);
        }
        for (x, y) in batch[1].patches.iter().zip(&pb.patches) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn checkpoint_roundtrip_and_replica_are_bitwise_identical() {
        let engine = tiny_engine(13);
        let x = sample(16, 16, 0.4);
        let original = engine.infer(&x).unwrap();
        let restored = InferenceEngine::from_checkpoint(&engine.checkpoint()).unwrap();
        let replica = engine.replicate().unwrap();
        for other in [&restored, &replica] {
            let pred = other.infer(&x).unwrap();
            assert_eq!(pred.binning.bin_of_patch, original.binning.bin_of_patch);
            for (a, b) in pred.patches.iter().zip(&original.patches) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn many_threads_share_one_engine_bitwise() {
        // The tentpole contract: one engine, one weight copy, no lock —
        // every thread gets the same bits as a lone caller.
        let engine = std::sync::Arc::new(tiny_engine(14));
        let x = sample(16, 16, 0.7);
        let want = engine.infer(&x).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let e = engine.clone();
            let xs = x.clone();
            handles.push(std::thread::spawn(move || e.infer(&xs).unwrap()));
        }
        for h in handles {
            let got = h.join().unwrap();
            assert_eq!(got.binning.bin_of_patch, want.binning.bin_of_patch);
            for (a, b) in got.patches.iter().zip(&want.patches) {
                assert_eq!(a, b);
            }
        }
        assert!(engine.weight_bytes() > 0);
    }

    #[test]
    fn nan_input_does_not_panic() {
        // NaN never survives the scorer: ReLU is `x.max(0.0)` and max-pool
        // uses `>` comparisons, both of which drop NaN, so a poisoned field
        // still yields finite patch scores and a well-formed prediction.
        // The non-finite guard itself sits in the ranker (see
        // `ranker::tests::try_bin_scores_rejects_non_finite`); here we pin
        // the engine-level contract: garbage in, typed result out, no panic.
        let engine = tiny_engine(15);
        let mut x = sample(16, 16, 0.0);
        x.as_mut_slice().fill(f32::NAN);
        match engine.infer(&x) {
            Ok(pred) => assert_eq!(pred.binning.bin_of_patch.len(), 2 * 2),
            Err(EngineError::Ranker(_)) => {} // also acceptable: typed, not a panic
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn ranker_errors_convert_to_engine_errors() {
        let e = EngineError::from(RankerError::EmptyScores);
        assert_eq!(e, EngineError::Ranker(RankerError::EmptyScores));
        assert!(e.to_string().contains("ranker"));
    }
}
