//! Thread-safe inference entry point, split out of [`crate::framework`].
//!
//! [`run_adarnet_case`](crate::framework::run_adarnet_case) couples one
//! mutable model to one physics solve — the right shape for
//! reproducing the paper's tables, but not for serving, where many
//! threads hold one trained model and submit batches concurrently.
//! [`InferenceEngine`] owns the model plus its normalization behind a
//! mutex, exposes `&self` batch inference (normalize → score → bin →
//! per-bin decode), and converts ranker failures into typed errors so a
//! bad request cannot take down a worker.
//!
//! The engine is deliberately *per-replica*: one engine = one model
//! copy = one decoder at a time. Serving-level concurrency comes from
//! running several engines (see the `adarnet-serve` crate), not from
//! sharing one decoder across threads — the decoder caches activations
//! between forward passes, so its state is inherently per-call.

use std::sync::Mutex;

use adarnet_tensor::Tensor;

use crate::sync;

use crate::checkpoint::{self, ModelCheckpoint};
use crate::loss::NormStats;
use crate::network::{AdarNet, AdarNetConfig, Prediction};
use crate::ranker::RankerError;

/// Why an inference request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The scorer's output could not be binned (empty grid / NaN scores).
    Ranker(RankerError),
    /// A checkpoint could not be restored into a model.
    Checkpoint(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Ranker(e) => write!(f, "ranker: {e}"),
            EngineError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RankerError> for EngineError {
    fn from(e: RankerError) -> EngineError {
        EngineError::Ranker(e)
    }
}

/// A trained model plus its normalization, packaged for concurrent use.
pub struct InferenceEngine {
    cfg: AdarNetConfig,
    norm: NormStats,
    model: Mutex<AdarNet>,
}

impl InferenceEngine {
    /// Wrap a trained model and its dataset normalization.
    pub fn new(model: AdarNet, norm: NormStats) -> InferenceEngine {
        InferenceEngine {
            cfg: model.cfg,
            norm,
            model: Mutex::new(model),
        }
    }

    /// Restore an engine from a checkpoint.
    pub fn from_checkpoint(ckpt: &ModelCheckpoint) -> Result<InferenceEngine, EngineError> {
        let (model, norm) = checkpoint::restore(ckpt).map_err(EngineError::Checkpoint)?;
        Ok(InferenceEngine::new(model, norm))
    }

    /// Snapshot the wrapped model back into a checkpoint.
    pub fn checkpoint(&self) -> ModelCheckpoint {
        let model = sync::lock(&self.model);
        checkpoint::snapshot(&model, &self.norm)
    }

    /// Clone this engine's weights into an independent replica (one per
    /// worker thread; replicas never contend on the model lock). A
    /// snapshot of a live engine always restores, so the error arm is
    /// unreachable in practice — but serving callers propagate it
    /// rather than panicking a worker thread.
    pub fn replicate(&self) -> Result<InferenceEngine, EngineError> {
        InferenceEngine::from_checkpoint(&self.checkpoint())
    }

    /// Static model configuration.
    pub fn config(&self) -> AdarNetConfig {
        self.cfg
    }

    /// The normalization applied to raw LR fields before inference.
    pub fn norm(&self) -> &NormStats {
        &self.norm
    }

    /// Infer one raw (physical-units) `(C, H, W)` LR field.
    ///
    /// The returned [`Prediction`] is backed by workspace-pool buffers;
    /// call [`Prediction::recycle`] once it is consumed to keep
    /// steady-state inference loops free of data-plane heap allocation.
    pub fn infer(&self, lr_field: &Tensor<f32>) -> Result<Prediction, EngineError> {
        let normalized = self.norm.normalize(lr_field);
        let mut model = sync::lock(&self.model);
        let pred = model.try_predict(&normalized);
        drop(model);
        normalized.recycle();
        Ok(pred?)
    }

    /// Infer a batch of raw LR fields of identical extent: same-bin
    /// patches from *all* samples share decoder batches
    /// ([`AdarNet::predict_batch`]), which is the serving-time payoff of
    /// non-uniform SR.
    ///
    /// After warmup, a steady-state loop of `infer_batch` +
    /// [`Prediction::recycle`] performs zero data-plane heap allocations:
    /// every tensor buffer (normalized inputs, scorer/decoder
    /// activations, im2col panels, patch outputs) is drawn from and
    /// returned to the workspace pool (see `adarnet_tensor::workspace`).
    pub fn infer_batch(&self, lr_fields: &[Tensor<f32>]) -> Result<Vec<Prediction>, EngineError> {
        let normalized: Vec<Tensor<f32>> =
            lr_fields.iter().map(|x| self.norm.normalize(x)).collect();
        let mut model = sync::lock(&self.model);
        let preds = model.try_predict_batch(&normalized);
        drop(model);
        for x in normalized {
            x.recycle();
        }
        Ok(preds?)
    }

    /// Run `f` with exclusive access to the wrapped model (training-time
    /// escape hatch; serving paths should stick to `infer*`).
    pub fn with_model<R>(&self, f: impl FnOnce(&mut AdarNet) -> R) -> R {
        let mut model = sync::lock(&self.model);
        f(&mut model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adarnet_tensor::Shape;

    fn sample(h: usize, w: usize, phase: f32) -> Tensor<f32> {
        Tensor::from_vec(
            Shape::d3(4, h, w),
            (0..4 * h * w)
                .map(|i| ((i as f32) * 0.017 + phase).sin())
                .collect(),
        )
    }

    fn tiny_engine(seed: u64) -> InferenceEngine {
        let model = AdarNet::new(AdarNetConfig {
            ph: 8,
            pw: 8,
            seed,
            ..AdarNetConfig::default()
        });
        InferenceEngine::new(model, NormStats::identity())
    }

    #[test]
    fn engine_matches_direct_predict() {
        let engine = tiny_engine(11);
        let x = sample(16, 32, 0.0);
        let via_engine = engine.infer(&x).unwrap();
        let direct = engine.with_model(|m| m.predict(&x));
        assert_eq!(via_engine.binning.bin_of_patch, direct.binning.bin_of_patch);
        for (a, b) in via_engine.patches.iter().zip(&direct.patches) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn infer_batch_matches_singles() {
        let engine = tiny_engine(12);
        let a = sample(16, 32, 0.0);
        let b = sample(16, 32, 1.3);
        let batch = engine.infer_batch(&[a.clone(), b.clone()]).unwrap();
        let pa = engine.infer(&a).unwrap();
        let pb = engine.infer(&b).unwrap();
        assert_eq!(batch.len(), 2);
        for (x, y) in batch[0].patches.iter().zip(&pa.patches) {
            assert_eq!(x, y);
        }
        for (x, y) in batch[1].patches.iter().zip(&pb.patches) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn checkpoint_roundtrip_and_replica_are_bitwise_identical() {
        let engine = tiny_engine(13);
        let x = sample(16, 16, 0.4);
        let original = engine.infer(&x).unwrap();
        let restored = InferenceEngine::from_checkpoint(&engine.checkpoint()).unwrap();
        let replica = engine.replicate().unwrap();
        for other in [&restored, &replica] {
            let pred = other.infer(&x).unwrap();
            assert_eq!(pred.binning.bin_of_patch, original.binning.bin_of_patch);
            for (a, b) in pred.patches.iter().zip(&original.patches) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = std::sync::Arc::new(tiny_engine(14));
        let mut handles = Vec::new();
        for t in 0..3 {
            let e = engine.clone();
            handles.push(std::thread::spawn(move || {
                let x = sample(16, 16, t as f32);
                e.infer(&x).unwrap().active_cells()
            }));
        }
        for h in handles {
            assert!(h.join().unwrap() >= 16 * 16);
        }
    }

    #[test]
    fn nan_input_does_not_panic() {
        // NaN never survives the scorer: ReLU is `x.max(0.0)` and max-pool
        // uses `>` comparisons, both of which drop NaN, so a poisoned field
        // still yields finite patch scores and a well-formed prediction.
        // The non-finite guard itself sits in the ranker (see
        // `ranker::tests::try_bin_scores_rejects_non_finite`); here we pin
        // the engine-level contract: garbage in, typed result out, no panic.
        let engine = tiny_engine(15);
        let mut x = sample(16, 16, 0.0);
        x.as_mut_slice().fill(f32::NAN);
        match engine.infer(&x) {
            Ok(pred) => assert_eq!(pred.binning.bin_of_patch.len(), 2 * 2),
            Err(EngineError::Ranker(_)) => {} // also acceptable: typed, not a panic
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn ranker_errors_convert_to_engine_errors() {
        let e = EngineError::from(RankerError::EmptyScores);
        assert_eq!(e, EngineError::Ranker(RankerError::EmptyScores));
        assert!(e.to_string().contains("ranker"));
    }
}
